"""Injectors: applying fault descriptors to injection points.

Sec. 3.3: "we propose to add injectors into the DUT and testbench.
These provide an interface to change the stimuli in the testbench or
modify the state or state transitions at different positions in the
DUT.  The stressor uses these injectors to inject faults/errors
according to its formal fault/error description."

This module is that dispatch layer.  Every component model registered
an *injection point* (a kind-tagged handle) during construction; the
functions here translate a :class:`~repro.faults.FaultDescriptor` into
concrete operations on one point, honoring persistence (transient /
intermittent / permanent) by scheduling reverts on the kernel.

Unspecified parameters are drawn from the campaign RNG — a descriptor
saying "a bit flip somewhere in this memory" is completed to a concrete
(address, bit) at injection time, and the completed parameters are
returned for the coverage model and the audit trail.
"""

from __future__ import annotations

import random
import typing as _t

from ..faults import FaultDescriptor, FaultKind, Persistence
from ..kernel import Simulator


class InjectionError(RuntimeError):
    """The descriptor cannot be applied to the given point."""


class AppliedInjection(_t.NamedTuple):
    """Audit record of one performed injection."""

    target_path: str
    descriptor: FaultDescriptor
    time: int
    resolved_params: _t.Dict[str, _t.Any]


def apply_fault(
    descriptor: FaultDescriptor,
    target_path: str,
    point,
    sim: Simulator,
    rng: random.Random,
) -> AppliedInjection:
    """Apply *descriptor* to *point* now.  Returns the audit record.

    For intermittent faults a revert process is spawned on *sim*; for
    permanent faults the state simply stays.
    """
    kind = getattr(point, "kind", None)
    if kind is None or not descriptor.applicable_to(kind):
        raise InjectionError(
            f"{descriptor.name} ({descriptor.kind.value}) is not "
            f"applicable to injection point kind {kind!r}"
        )
    handler = _HANDLERS[kind]
    resolved, revert = handler(descriptor, point, rng)
    if descriptor.persistence is Persistence.INTERMITTENT and revert is not None:
        _schedule_revert(sim, revert, descriptor.duration)
    return AppliedInjection(target_path, descriptor, sim.now, resolved)


def _schedule_revert(sim: Simulator, revert: _t.Callable[[], None], delay: int):
    def deactivate():
        yield delay
        revert()

    sim.spawn(deactivate(), name="injector.revert")  # vp-lint: disable=VP002 - transient revert; reset() discards post-elaboration spawns


# ---------------------------------------------------------------------------
# Per-target-kind handlers: fn(descriptor, point, rng) -> (params, revert)
# ---------------------------------------------------------------------------

def _memory_handler(descriptor, point, rng):
    params = dict(descriptor.params)
    if descriptor.kind is FaultKind.BIT_FLIP:
        address = params.get("address")
        if address is None:
            address = rng.randrange(point.size)
        bit = params.get("bit")
        if bit is None:
            bit = rng.randrange(point.bits)
        point.flip(address, bit)
        return {"address": address, "bit": bit}, None
    if descriptor.kind is FaultKind.WORD_CORRUPTION:
        address = params.get("address")
        if address is None:
            address = rng.randrange(max(point.size - 3, 1))
        pattern = _resolve_pattern(params, rng)
        if pattern:
            width = max((pattern.bit_length() + 7) // 8, 1)
            for i in range(width):
                if address + i >= point.size:
                    break
                byte_pattern = (pattern >> (8 * i)) & 0xFF
                value = point.peek(address + i) ^ byte_pattern
                point.poke(address + i, value)
        return {"address": address, "pattern": pattern}, None
    raise InjectionError(f"memory cannot realise {descriptor.kind}")


def _register_handler(descriptor, point, rng):
    params = dict(descriptor.params)
    offset = params.get("offset")
    if offset is None:
        offset = rng.choice(point.offsets)
    if descriptor.kind is FaultKind.BIT_FLIP:
        bit = params.get("bit", rng.randrange(32))
        point.flip(offset, bit)
        return {"offset": offset, "bit": bit}, None
    if descriptor.kind is FaultKind.STUCK_AT:
        bit = params.get("bit", rng.randrange(32))
        level = params.get("level", rng.randrange(2))
        point.stuck_at(offset, bit, level)
        return (
            {"offset": offset, "bit": bit, "level": level},
            lambda: point.clear_stuck(offset),
        )
    if descriptor.kind is FaultKind.WORD_CORRUPTION:
        pattern = _resolve_pattern(params, rng)
        point.poke(offset, point.peek(offset) ^ pattern)
        return {"offset": offset, "pattern": pattern}, None
    raise InjectionError(f"register file cannot realise {descriptor.kind}")


def _cpu_handler(descriptor, point, rng):
    params = dict(descriptor.params)
    if descriptor.kind is not FaultKind.BIT_FLIP:
        raise InjectionError(f"cpu state cannot realise {descriptor.kind}")
    target = params.get("target")
    if target is None:
        # PC upsets are one architectural word among NUM_REGS+1.
        target = "pc" if rng.randrange(point.num_regs + 1) == 0 else "reg"
    bit = params.get("bit", rng.randrange(32))
    if target == "pc":
        point.flip_pc(bit)
        return {"target": "pc", "bit": bit}, None
    index = params.get("reg", rng.randrange(1, point.num_regs))
    point.flip_reg(index, bit)
    return {"target": "reg", "reg": index, "bit": bit}, None


def _analog_handler(descriptor, point, rng):
    params = dict(descriptor.params)
    kind = descriptor.kind
    if kind is FaultKind.OFFSET_DRIFT:
        offset = params.get("offset", rng.uniform(-1.0, 1.0))
        point.set_offset(offset)
        return {"offset": offset}, point.clear
    if kind is FaultKind.GAIN_DRIFT:
        gain = params.get("gain", rng.uniform(0.5, 1.5))
        point.set_gain(gain)
        return {"gain": gain}, point.clear
    if kind is FaultKind.STUCK_VALUE:
        value = params.get("value", rng.uniform(0.0, 5.0))
        point.stick_at(value)
        return {"value": value}, point.clear
    if kind is FaultKind.OPEN_CIRCUIT:
        point.open_circuit()
        return {}, point.clear
    if kind is FaultKind.SHORT_TO_GROUND:
        point.stick_at(0.0)
        return {"value": 0.0}, point.clear
    if kind is FaultKind.NOISE_BURST:
        sigma = params.get("sigma", rng.uniform(0.1, 1.0))
        # Hand the (seeded) campaign RNG to the front-end so platforms
        # built without one still reproduce noise deterministically.
        point.set_noise(sigma, rng=rng)
        return {"sigma": sigma}, point.clear
    raise InjectionError(f"analog frontend cannot realise {kind}")


def _can_handler(descriptor, point, rng):
    params = dict(descriptor.params)
    kind = descriptor.kind
    one_shot = descriptor.persistence is Persistence.TRANSIENT

    if kind in (FaultKind.MESSAGE_CORRUPTION, FaultKind.MESSAGE_MASQUERADE):
        bits = params.get("bits", 1)
        forge = kind is FaultKind.MESSAGE_MASQUERADE
        state = {"armed": True}

        def corrupt(frame):
            if not state["armed"]:
                return frame
            if frame.data:
                # Distinct bit positions: flips must not cancel out.
                positions = rng.sample(
                    range(len(frame.data) * 8),
                    min(bits, len(frame.data) * 8),
                )
                for position in positions:
                    frame.data[position // 8] ^= 1 << (position % 8)
                if forge:
                    frame.refresh_crc()
                frame.meta.setdefault("injected", []).append(descriptor.name)
            if one_shot:
                state["armed"] = False
                point.remove_interceptor(corrupt)
            return frame

        point.add_interceptor(corrupt)
        return (
            {"bits": bits, "forged_crc": forge},
            lambda: point.remove_interceptor(corrupt),
        )

    if kind is FaultKind.MESSAGE_DROP:
        state = {"armed": True}

        def drop(frame):
            if not state["armed"]:
                return frame
            if one_shot:
                state["armed"] = False
                point.remove_interceptor(drop)
            return None

        point.add_interceptor(drop)
        return {}, lambda: point.remove_interceptor(drop)

    if kind is FaultKind.MESSAGE_DELAY:
        # Realised through the protocol: the frame is suppressed on the
        # wire, the transmitter's retransmission delivers it one frame
        # slot later — a pure delay from the application's view.
        state = {"armed": True}

        def delay(frame):
            if not state["armed"]:
                return frame
            state["armed"] = False
            point.remove_interceptor(delay)
            return None

        point.add_interceptor(delay)
        return {"mechanism": "retransmission"}, (
            lambda: point.remove_interceptor(delay)
        )

    raise InjectionError(f"CAN wire cannot realise {kind}")


def _rtos_handler(descriptor, point, rng):
    params = dict(descriptor.params)
    kind = descriptor.kind
    task = params.get("task")
    if task is None:
        task = rng.choice(point.task_names)
    if kind is FaultKind.EXECUTION_OVERHEAD:
        extra = params.get("extra", rng.randrange(10_000, 1_000_000))
        point.add_overhead(task, extra)
        return {"task": task, "extra": extra}, None
    if kind is FaultKind.TASK_KILL:
        point.kill_task(task)
        return {"task": task}, lambda: point.revive_task(task)
    raise InjectionError(f"scheduler cannot realise {kind}")


def _behavior_handler(descriptor, point, rng):
    """Flip a component into a named misbehavior mode.

    Models runaway software — livelocked control loops, crashing
    firmware — as an injectable fault class; the point's owner decides
    what each mode means.  This is what the fault-tolerance test suite
    uses to hang/kill campaign runs on purpose.
    """
    params = dict(descriptor.params)
    if descriptor.kind is not FaultKind.BEHAVIOR_MODE:
        raise InjectionError(
            f"behavior point cannot realise {descriptor.kind}"
        )
    mode = params.get("mode")
    if mode is None:
        mode = rng.choice(point.modes)
    if mode not in point.modes:
        raise InjectionError(
            f"unknown behavior mode {mode!r}; point offers {point.modes}"
        )
    point.trigger(mode)
    revert = getattr(point, "clear", None)
    return {"mode": mode}, revert


def _resolve_pattern(params: _t.Dict[str, _t.Any], rng: random.Random) -> int:
    """Resolve a word-corruption pattern: explicit, sampled from a
    cross-layer profile, or a single random bit."""
    if "pattern" in params:
        return int(params["pattern"])
    profile = params.get("profile")
    if profile is not None:
        sampled = profile.sample_pattern(rng)
        return 0 if sampled is None else sampled
    return 1 << rng.randrange(32)


_HANDLERS: _t.Dict[str, _t.Callable] = {
    "memory": _memory_handler,
    "register": _register_handler,
    "cpu": _cpu_handler,
    "analog": _analog_handler,
    "can_wire": _can_handler,
    "rtos": _rtos_handler,
    "behavior": _behavior_handler,
}
