"""The serializable planner/executor boundary of the campaign loop.

The Fig. 3 loop is split into three layers (see DESIGN.md, "Campaign
execution backends"):

1. the **planner** turns strategy output into :class:`RunSpec`s —
   self-contained, picklable descriptions of one run (scenario, run
   seed, duration, platform key, golden reference);
2. an **executor** (``repro.core.executors``) runs specs — in-process
   or fanned out to a worker pool — and returns :class:`RunOutcome`s;
3. the aggregation layer folds outcomes back into
   :class:`~repro.core.campaign.CampaignResult`, coverage, and
   strategy feedback.

:func:`execute_runspec` is the single simulation routine both backends
share: build a fresh kernel and platform, arm the stressor, simulate,
observe, classify against the golden reference.  Identical code on
both sides is what makes serial and parallel campaigns bit-equal.
"""

from __future__ import annotations

import dataclasses
import random
import time
import typing as _t

from ..kernel import DeadlineExceeded, Simulator, SnapshotUnsupported
from ..observe import hooks
from ..observe.config import TraceConfig
from ..observe.digest import TraceDigest
from ..observe.runtrace import PrefixDetectionSink, RunTrace, planned_digest
from .classification import Classifier, Outcome, RunObservation
from .scenario import ErrorScenario
from .stressor import Stressor

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Module

#: Version of the serialized :class:`RunOutcome` layout, stamped into
#: checkpoint journal headers.  Bump on any incompatible change to
#: :meth:`RunOutcome.to_jsonable`.  v2 added the optional ``digest``
#: field (absent/None when the run was untraced, so v1 journals load).
OUTCOME_SCHEMA_VERSION = 2


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything one campaign run needs, picklable and self-contained.

    ``platform`` is a key into the :mod:`repro.platforms.registry`;
    worker processes rebuild the prototype from it.  ``golden`` is the
    fault-free reference observation, computed once by the campaign
    and shipped with every spec so no worker ever re-runs (or races
    on) the golden simulation.

    ``deadline_s`` is the per-run wall-clock budget, enforced inside
    the simulation loop (see :class:`~repro.kernel.DeadlineExceeded`);
    ``attempt`` counts prior executions of this spec — zero on the
    first try, bumped by the executor when a worker crash forces a
    redispatch.

    ``trace`` arms per-run propagation observability (see
    :mod:`repro.observe`): when set, ``execute_runspec`` records
    injection/deviation/detection events and attaches a
    :class:`~repro.observe.digest.TraceDigest` to the outcome.  The
    campaign resolves it once (including the golden signal reference)
    and embeds it here so every worker traces identically.

    ``reuse_platform`` lets the executing side keep a warm platform
    between runs when the platform bundle opts in with a ``reset``
    hook; ``False`` forces a fresh build for every run.  Reuse never
    changes simulation content (that equivalence is test-pinned), so
    the flag is not part of the checkpoint identity.

    ``fork`` opts the run into **snapshot-fork execution**: the
    executing side may group specs sharing a platform and earliest
    injection time, simulate the fault-free prefix once, snapshot the
    kernel (:meth:`Simulator.snapshot`), and fork every run in the
    group from the captured state.  Like ``reuse_platform`` it is an
    execution strategy, not simulation content — fork-vs-fresh
    equivalence is test-pinned — so it is likewise excluded from the
    checkpoint identity.  Platforms opt in through the registry
    bundle's ``capture_state``/``restore_state`` hooks; anything else
    silently falls back to per-run execution.
    """

    index: int
    scenario: ErrorScenario
    run_seed: int
    duration: int
    platform: _t.Optional[str] = None
    golden: _t.Optional[RunObservation] = None
    deadline_s: _t.Optional[float] = None
    attempt: int = 0
    trace: _t.Optional[TraceConfig] = None
    reuse_platform: bool = True
    fork: bool = False

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("run duration must be positive")
        if self.index < 0:
            raise ValueError("run index must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("run deadline must be positive")
        if self.attempt < 0:
            raise ValueError("attempt count must be non-negative")

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        """A JSON-serializable dict — the wire form of one run.

        The distributed backend ships specs to remote workers as JSON
        frames (see :mod:`repro.distributed.protocol`), where pickling
        is off the table: frames must be inspectable, versioned, and
        safe to receive from another host.  Everything a spec carries
        is JSON-native already (the golden observation is by the same
        contract the checkpoint journal relies on) except the scenario
        tree and the trace config, which get explicit codecs below.
        """
        return {
            "index": self.index,
            "scenario": _scenario_to_jsonable(self.scenario),
            "run_seed": self.run_seed,
            "duration": self.duration,
            "platform": self.platform,
            "golden": dict(self.golden) if self.golden is not None else None,
            "deadline_s": self.deadline_s,
            "attempt": self.attempt,
            "trace": (
                _trace_to_jsonable(self.trace)
                if self.trace is not None else None
            ),
            "reuse_platform": self.reuse_platform,
            "fork": self.fork,
        }

    @classmethod
    def from_jsonable(cls, payload: _t.Mapping[str, _t.Any]) -> "RunSpec":
        return cls(
            index=payload["index"],
            scenario=_scenario_from_jsonable(payload["scenario"]),
            run_seed=payload["run_seed"],
            duration=payload["duration"],
            platform=payload.get("platform"),
            golden=(
                dict(payload["golden"])
                if payload.get("golden") is not None else None
            ),
            deadline_s=payload.get("deadline_s"),
            attempt=payload.get("attempt", 0),
            trace=(
                _trace_from_jsonable(payload["trace"])
                if payload.get("trace") is not None else None
            ),
            reuse_platform=payload.get("reuse_platform", True),
            fork=payload.get("fork", False),
        )


# -- RunSpec wire codec ------------------------------------------------------
#
# The scenario tree (scenario -> planned injections -> fault
# descriptors, plus the optional operating state) and the trace config
# are plain frozen dataclasses of JSON-native fields; these helpers
# flatten them for the distributed protocol and rebuild them verbatim.
# Enum members travel by value, tuples are restored as tuples, and a
# non-JSON-native descriptor param fails at *encode* time with the run
# named — not as an opaque json.dumps error deep inside a socket write.


def _descriptor_to_jsonable(descriptor) -> _t.Dict[str, _t.Any]:
    params = dict(descriptor.params)
    try:
        import json as _json

        _json.dumps(params)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"fault descriptor {descriptor.name!r} has non-JSON-native "
            f"params and cannot cross the distributed wire: {exc}"
        ) from None
    return {
        "name": descriptor.name,
        "kind": descriptor.kind.value,
        "persistence": descriptor.persistence.value,
        "duration": descriptor.duration,
        "params": params,
        "rate_per_hour": descriptor.rate_per_hour,
    }


def _descriptor_from_jsonable(payload: _t.Mapping[str, _t.Any]):
    from ..faults.models import FaultDescriptor, FaultKind, Persistence

    return FaultDescriptor(
        name=payload["name"],
        kind=FaultKind(payload["kind"]),
        persistence=Persistence(payload["persistence"]),
        duration=payload["duration"],
        params=dict(payload["params"]),
        rate_per_hour=payload["rate_per_hour"],
    )


def _scenario_to_jsonable(scenario: ErrorScenario) -> _t.Dict[str, _t.Any]:
    state = scenario.operating_state
    return {
        "name": scenario.name,
        "injections": [
            {
                "time": planned.time,
                "target_path": planned.target_path,
                "descriptor": _descriptor_to_jsonable(planned.descriptor),
            }
            for planned in scenario.injections
        ],
        "operating_state": (
            {
                "name": state.name,
                "fraction": state.fraction,
                "loads": dict(state.loads),
                "special": state.special,
            }
            if state is not None else None
        ),
        "sampling_weight": scenario.sampling_weight,
    }


def _scenario_from_jsonable(payload: _t.Mapping[str, _t.Any]) -> ErrorScenario:
    from ..mission.profile import OperatingState
    from .scenario import PlannedInjection

    state_payload = payload.get("operating_state")
    state = None
    if state_payload is not None:
        state = OperatingState(
            name=state_payload["name"],
            fraction=state_payload["fraction"],
            loads=dict(state_payload["loads"]),
            special=state_payload["special"],
        )
    return ErrorScenario(
        name=payload["name"],
        injections=tuple(
            PlannedInjection(
                time=planned["time"],
                target_path=planned["target_path"],
                descriptor=_descriptor_from_jsonable(planned["descriptor"]),
            )
            for planned in payload["injections"]
        ),
        operating_state=state,
        sampling_weight=payload.get("sampling_weight", 1.0),
    )


def _trace_to_jsonable(trace: TraceConfig) -> _t.Dict[str, _t.Any]:
    return {
        "mode": trace.mode,
        "ring_capacity": trace.ring_capacity,
        "max_events": trace.max_events,
        "spill_dir": trace.spill_dir,
        "golden_signals": [
            [name, value] for name, value in trace.golden_signals
        ],
    }


def _trace_from_jsonable(payload: _t.Mapping[str, _t.Any]) -> TraceConfig:
    return TraceConfig(
        mode=payload["mode"],
        ring_capacity=payload["ring_capacity"],
        max_events=payload["max_events"],
        spill_dir=payload.get("spill_dir"),
        golden_signals=tuple(
            (name, value) for name, value in payload["golden_signals"]
        ),
    )


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """The compact result an executor returns for one :class:`RunSpec`.

    Deliberately free of live simulation objects: only the
    classification verdict, the probe observation, and the kernel cost
    counters cross the process boundary back to the planner.

    ``failure`` is ``None`` for a conclusive run, or the degradation
    kind — ``"timeout"`` (deadline exceeded in the worker or at the
    pool), ``"crash"`` (worker process died and retries ran out), or
    ``"error"`` (the run raised) — with the detail in ``error``.
    ``attempts`` counts executions including the successful one.

    ``digest`` is the per-run trace digest when the spec was traced
    (``None`` otherwise) — simulation-deterministic content only, so
    it participates in the serial/parallel byte-equality contract
    while ``attempts`` (execution history) does not.
    """

    index: int
    outcome: Outcome
    matched_rules: _t.Tuple[str, ...]
    observation: RunObservation
    injections_applied: int
    kernel_stats: _t.Dict[str, _t.Any]
    stressor_errors: _t.Tuple[str, ...] = ()
    attempts: int = 1
    failure: _t.Optional[str] = None
    error: _t.Optional[str] = None
    digest: _t.Optional[TraceDigest] = None

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        """A JSON-serializable dict (checkpoint journal line).

        Only JSON-native observation values survive the round trip;
        the built-in platforms observe ints, floats, bools, and hex
        strings, which is exactly that set.
        """
        return {
            "index": self.index,
            "outcome": self.outcome.name,
            "matched_rules": list(self.matched_rules),
            "observation": dict(self.observation),
            "injections_applied": self.injections_applied,
            "kernel_stats": dict(self.kernel_stats),
            "stressor_errors": list(self.stressor_errors),
            "attempts": self.attempts,
            "failure": self.failure,
            "error": self.error,
            "digest": (
                self.digest.to_jsonable() if self.digest is not None else None
            ),
        }

    @classmethod
    def from_jsonable(cls, payload: _t.Mapping[str, _t.Any]) -> "RunOutcome":
        return cls(
            index=payload["index"],
            outcome=Outcome[payload["outcome"]],
            matched_rules=tuple(payload["matched_rules"]),
            observation=dict(payload["observation"]),
            injections_applied=payload["injections_applied"],
            kernel_stats=dict(payload["kernel_stats"]),
            stressor_errors=tuple(payload.get("stressor_errors", ())),
            attempts=payload.get("attempts", 1),
            failure=payload.get("failure"),
            error=payload.get("error"),
            digest=(
                TraceDigest.from_jsonable(payload["digest"])
                if payload.get("digest") is not None
                else None
            ),
        )


def failure_outcome(
    spec: RunSpec,
    failure: str,
    error: str,
    attempts: int = 1,
    kernel_stats: _t.Optional[_t.Dict[str, _t.Any]] = None,
    label: _t.Optional[str] = None,
    digest: _t.Optional[TraceDigest] = None,
) -> RunOutcome:
    """Synthesize the terminal :data:`Outcome.TIMEOUT` record for a run
    that could not produce a classification (hang, crash, raise).

    The matched-rule *label* (e.g. ``"timeout:deadline"``,
    ``"crash:worker"``) carries the degradation kind so reports can
    distinguish deadline timeouts from crashed workers without a new
    record field downstream.

    Traced runs still get a digest: the caller passes whatever
    evidence survived (the worker-side deadline path finalizes its
    recorder), and when nothing did — dead or hung worker, raising
    platform — a partial digest is synthesized from the scenario's
    *planned* injections, so even a post-mortem with no worker left
    alive knows which faults were on the table.
    """
    if digest is None and spec.trace is not None:
        digest = planned_digest(
            spec.index,
            spec.run_seed,
            spec.scenario,
            outcome=Outcome.TIMEOUT.name,
        )
    return RunOutcome(
        index=spec.index,
        outcome=Outcome.TIMEOUT,
        matched_rules=(label or failure,),
        observation={},
        injections_applied=0,
        kernel_stats=kernel_stats or {},
        attempts=attempts,
        failure=failure,
        error=error,
        digest=digest,
    )


def _resolve_trace_signals(
    spec: RunSpec,
    root: "Module",
    trace_signals: _t.Optional[_t.Callable] = None,
) -> _t.Mapping[str, _t.Any]:
    """Which kernel signals this run's trace should watch.

    Explicit *trace_signals* (a ``root -> {name: signal}`` callable)
    wins; registry-backed specs fall back to their platform bundle's
    ``trace_signals``; otherwise nothing is watched (the digest still
    carries injections, observation deviations, and detections).
    """
    if trace_signals is not None:
        return trace_signals(root) or {}
    if spec.platform is not None:
        from ..platforms import registry

        bundle = registry.get_platform(spec.platform)
        if bundle.trace_signals is not None:
            return bundle.trace_signals(root) or {}
    return {}


#: Per-process warm-platform cache: platform key -> (kernel, root).
#: Workers keep one elaborated platform per key and return it to its
#: power-on state with ``Simulator.reset()`` + the bundle ``reset``
#: hook instead of re-running elaboration for every spec.
_WARM_PLATFORMS: _t.Dict[str, _t.Tuple[Simulator, "Module"]] = {}


def clear_warm_platforms() -> None:
    """Drop every cached warm platform (tests, defensive teardown)."""
    _WARM_PLATFORMS.clear()


def _acquire_platform(
    spec: RunSpec,
    factory: "_t.Callable[[Simulator], Module]",
    reset: _t.Optional[_t.Callable],
    kernel_factory: _t.Optional[_t.Callable[[], Simulator]] = None,
) -> _t.Tuple[Simulator, "Module", bool]:
    """``(sim, root, warm)`` to run *spec* on.

    The warm path engages only when the spec allows reuse **and** the
    caller supplied the bundle's ``reset`` hook: a cached platform is
    restored to power-on state (kernel first, then module state), a
    cache miss elaborates once and caches.  Everything else builds
    fresh and is discarded after the run.

    A non-default *kernel_factory* (instrumented kernels: the
    order-sensitivity checker's shuffled scheduler) forces the fresh
    path — an instrumented kernel must never be cached as a warm
    platform other runs would silently inherit.
    """
    if (
        kernel_factory is None
        and reset is not None
        and spec.reuse_platform
        and spec.platform
    ):
        cached = _WARM_PLATFORMS.get(spec.platform)
        if cached is not None:
            sim, root = cached
            sim.reset()
            reset(root)
            return sim, root, True
        sim = Simulator()
        root = factory(sim)
        # Pin the elaboration boundary before any per-run scaffolding
        # (stressor, tracer) is armed: reset() replays exactly the
        # pending notifications the factory left behind, so a warm
        # kernel starts from the same state a fresh build would.
        sim.snapshot_elaboration()
        _WARM_PLATFORMS[spec.platform] = (sim, root)
        return sim, root, True
    sim = Simulator() if kernel_factory is None else kernel_factory()
    return sim, factory(sim), False


def execute_runspec(
    spec: RunSpec,
    factory: "_t.Callable[[Simulator], Module]",
    observe: "_t.Callable[[Module], RunObservation]",
    classifier: Classifier,
    golden: _t.Optional[RunObservation] = None,
    trace_signals: _t.Optional[_t.Callable] = None,
    reset: _t.Optional[_t.Callable] = None,
    kernel_factory: _t.Optional[_t.Callable[[], Simulator]] = None,
) -> RunOutcome:
    """Execute one spec and classify the result.

    *kernel_factory* (default: plain :class:`Simulator`) builds the
    kernel for the fresh path — diagnostic harnesses pass an
    instrumented one (e.g. ``Simulator(order_seed=...)`` from the
    order-sensitivity checker); supplying it disables warm reuse for
    this call.

    The golden reference is taken from the spec when present,
    otherwise from the *golden* argument; planners always embed it so
    executors need no shared state.

    *reset* is the platform bundle's warm-reset hook; passing it (for
    a spec that permits ``reuse_platform``) lets this routine keep the
    elaborated platform between calls, resetting instead of
    rebuilding.  Without it every call builds a fresh kernel and
    platform — semantically identical, just slower.

    When ``spec.trace`` is set a :class:`~repro.observe.runtrace.RunTrace`
    is armed alongside the stressor — before simulation starts, so the
    injection window is fully covered — and its digest rides back on
    the outcome.  The recorder is disarmed on every exit path (the
    detection hook bus is process-global; a leaked sink would bleed
    events into the worker's next run).
    """
    reference = spec.golden if spec.golden is not None else golden
    if reference is None:
        raise ValueError(
            f"run {spec.index}: no golden reference (neither embedded "
            f"in the spec nor passed to execute_runspec)"
        )
    wall_start = time.perf_counter()  # vp-lint: disable=VP005 - wall_s accounting, not model behavior
    sim, root, warm = _acquire_platform(spec, factory, reset, kernel_factory)
    stressor = Stressor(
        "stressor", parent=root, platform_root=root,
        rng=random.Random(spec.run_seed),
    )
    stressor.arm(spec.scenario)
    run_trace: _t.Optional[RunTrace] = None
    if spec.trace is not None:
        run_trace = RunTrace(spec.trace, spec.index, spec.run_seed)
        run_trace.arm(sim, _resolve_trace_signals(spec, root, trace_signals))
    try:
        try:
            sim.run(until=spec.duration, deadline_s=spec.deadline_s)
        except DeadlineExceeded as exc:
            # The injected fault hung the DUT (e.g. a livelocked control
            # loop): degrade to one classified-inconclusive record
            # instead of stalling the campaign.  Partial kernel counters
            # still ship so the wasted simulation work is accounted for,
            # and the trace recorded up to the hang survives as a
            # partial digest — the hung-run post-mortem evidence.
            kernel_stats = sim.stats()
            kernel_stats["wall_s"] = time.perf_counter() - wall_start  # vp-lint: disable=VP005 - wall_s accounting, not model behavior
            digest = None
            if run_trace is not None:
                digest = run_trace.finalize(
                    stressor=stressor,
                    outcome=Outcome.TIMEOUT.name,
                    partial=True,
                )
            return failure_outcome(
                spec,
                failure="timeout",
                error=str(exc),
                attempts=spec.attempt + 1,
                kernel_stats=kernel_stats,
                label="timeout:deadline",
                digest=digest,
            )
        observation = observe(root)
        outcome, matched = classifier.classify(observation, reference)
        digest = None
        if run_trace is not None:
            digest = run_trace.finalize(
                stressor=stressor,
                observation=observation,
                golden=reference,
                outcome=outcome.name,
            )
        kernel_stats = sim.stats()
        kernel_stats["wall_s"] = time.perf_counter() - wall_start  # vp-lint: disable=VP005 - wall_s accounting, not model behavior
        return RunOutcome(
            index=spec.index,
            outcome=outcome,
            matched_rules=tuple(matched),
            observation=observation,
            injections_applied=len(stressor.applied),
            kernel_stats=kernel_stats,
            stressor_errors=tuple(stressor.errors),
            attempts=spec.attempt + 1,
            digest=digest,
        )
    except BaseException:
        # Unwinding with the platform in an unknown mid-run state
        # (raising process body, observation/classification bug): drop
        # the warm entry so the next run re-elaborates from scratch
        # rather than trusting the reset protocol to repair it.
        # Deadline timeouts do NOT take this path — they return a
        # record above, and the reset protocol provably restores a
        # merely-interrupted platform (equivalence-test pinned).
        if warm:
            _WARM_PLATFORMS.pop(spec.platform, None)
        raise
    finally:
        # Raising runs reach here with the recorder still armed; the
        # caller (serial executor / tolerant worker wrapper) degrades
        # the exception to a terminal record with a planned digest.
        if run_trace is not None:
            run_trace.disarm()
        if warm:
            # Per-run scaffolding must not accumulate on the reused
            # platform: detach reaps the stressor subtree — kills its
            # injection processes and unregisters anything it created
            # from the kernel — so warm-kernel memory stays flat.
            stressor.detach()


def execute_runspec_from_registry(spec: RunSpec) -> RunOutcome:
    """Worker-side entry point: resolve the platform key, then run.

    Module-level (hence picklable by reference) so process pools can
    ship it; the lazy import keeps ``repro.core`` importable without
    ``repro.platforms`` and triggers built-in registration inside
    freshly spawned workers.
    """
    if spec.platform is None:
        raise ValueError(
            f"run {spec.index}: spec carries no platform key — only "
            f"registry-backed campaigns can execute out of process"
        )
    from ..platforms import registry

    bundle = registry.get_platform(spec.platform)
    classifier = registry.get_classifier(spec.platform)
    return execute_runspec(
        spec, bundle.factory, bundle.observe, classifier,
        reset=bundle.reset,
    )


# -- snapshot-fork execution -------------------------------------------------


class ForkUnsupported(RuntimeError):
    """This group cannot run fork-mode; callers fall back to per-run
    execution (which is always semantically equivalent, just slower)."""


def fork_time(spec: RunSpec) -> _t.Optional[int]:
    """The pre-injection fork point of *spec*, or ``None``.

    A spec can fork when it opted in, carries a platform key, and its
    scenario's earliest injection lands strictly inside the run window
    (``1 <= t1 <= duration``) — the shared prefix is then ``[0, t1-1]``
    and every injector's anchor wait (see ``Stressor._inject_at``)
    crosses the fork boundary identically on forked and fresh runs.
    """
    if not spec.fork or spec.platform is None:
        return None
    if not spec.scenario.injections:
        return None
    t1 = min(planned.time for planned in spec.scenario.injections)
    if t1 < 1 or t1 > spec.duration:
        return None
    return t1


def fork_groups(
    specs: _t.Sequence[RunSpec],
) -> _t.Tuple[
    _t.List[_t.Tuple[_t.Tuple[str, int], _t.List[RunSpec]]],
    _t.List[RunSpec],
]:
    """Partition *specs* into ``(groups, singles)``.

    A group keys on ``(platform, fork_time)`` — the prefix those specs
    share.  Groups of one fall back to ``singles`` (a one-run "group"
    pays the snapshot without amortizing it).  Order within a group and
    among singles follows the input; callers reassemble results by
    spec index.
    """
    buckets: _t.Dict[_t.Tuple[str, int], _t.List[RunSpec]] = {}
    order: _t.List[_t.Tuple[str, int]] = []
    singles: _t.List[RunSpec] = []
    for spec in specs:
        t1 = fork_time(spec)
        if t1 is None:
            singles.append(spec)
            continue
        key = (spec.platform, t1)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(spec)
    groups = []
    for key in order:
        members = buckets[key]
        if len(members) == 1:
            singles.append(members[0])
        else:
            groups.append((key, members))
    return groups, singles


def execute_fork_group(
    specs: _t.Sequence[RunSpec],
    factory: "_t.Callable[[Simulator], Module]",
    observe: "_t.Callable[[Module], RunObservation]",
    classifier: Classifier,
    golden: _t.Optional[RunObservation] = None,
    trace_signals: _t.Optional[_t.Callable] = None,
    capture_state: _t.Optional[_t.Callable] = None,
    restore_state: _t.Optional[_t.Callable] = None,
) -> _t.List[RunOutcome]:
    """Execute a fork group: one shared prefix, N forked runs.

    All *specs* must share a platform and fork time (as produced by
    :func:`fork_groups`).  The fault-free prefix ``[0, t1-1]`` is
    simulated once on a fresh build; :meth:`Simulator.snapshot` plus
    the platform's ``capture_state`` hook then pin the boundary, and
    each spec runs the suffix from a restore of that capture.  Every
    result record — outcome, observation, kernel counters (minus
    wall clock), digest — is byte-identical to per-run execution;
    that equivalence is property-test pinned.

    Raises :class:`ForkUnsupported` when the platform lacks snapshot
    hooks, holds bare-generator processes, or the prefix itself fails —
    callers fall back to per-run execution, which reproduces any
    prefix failure verbatim in each run's own record.
    """
    if capture_state is None or restore_state is None:
        raise ForkUnsupported(
            "platform has no capture_state/restore_state hooks"
        )
    t1 = fork_time(specs[0])
    if t1 is None:
        raise ForkUnsupported("lead spec has no fork point")
    for spec in specs:
        if fork_time(spec) != t1 or spec.platform != specs[0].platform:
            raise ValueError(
                "execute_fork_group requires specs sharing one "
                "(platform, fork_time); use fork_groups() to partition"
            )

    sim = Simulator()
    root = factory(sim)

    # Probe the tie-break counter at the end of delta cycle 0: on a
    # fresh run the stressor's injectors step *last* in that cycle (the
    # stressor is built after the platform), so their wheel entries
    # take the sequence numbers just above this value.  arm_forked
    # re-arms them at fractional offsets above the same base, which
    # reproduces the fresh ordering exactly (see Stressor.arm_forked).
    seq_box: _t.List[int] = []

    def _seq_probe(_sim):
        if not seq_box:
            seq_box.append(sim._seq)

    sim.delta_hooks.append(_seq_probe)

    # Detections fired during the prefix (a watchdog absorbing a glitch,
    # ECC scrubbing) belong to every forked run's trace, exactly as a
    # fresh run's recorder — armed from time zero — would see them.
    prefix_sink: _t.Optional[PrefixDetectionSink] = None
    if any(spec.trace is not None for spec in specs):
        prefix_sink = PrefixDetectionSink()
        hooks.push_sink(prefix_sink)
    try:
        try:
            sim.run(until=t1 - 1, deadline_s=specs[0].deadline_s)
        except Exception as exc:  # vp-lint: disable=VP007 - prefix failure aborts fork mode; the per-run fallback re-raises identically inside each run's own record
            raise ForkUnsupported(
                f"prefix failed: {type(exc).__name__}: {exc}"
            ) from exc
    finally:
        if prefix_sink is not None:
            hooks.pop_sink(prefix_sink)
        sim.delta_hooks.remove(_seq_probe)
    if not seq_box:
        raise ForkUnsupported("prefix executed no delta cycle")
    seq_base = seq_box[0]

    try:
        kernel_state = sim.snapshot()
    except SnapshotUnsupported as exc:
        raise ForkUnsupported(str(exc)) from exc
    module_state = capture_state(root)

    def platform_restore():
        restore_state(root, module_state)

    outcomes: _t.List[RunOutcome] = []
    for position, spec in enumerate(specs):
        wall_start = time.perf_counter()  # vp-lint: disable=VP005 - wall_s accounting, not model behavior
        run_trace: _t.Optional[RunTrace] = None
        stressor = None
        try:
            reference = spec.golden if spec.golden is not None else golden
            if reference is None:
                raise ValueError(
                    f"run {spec.index}: no golden reference (neither "
                    f"embedded in the spec nor passed to "
                    f"execute_fork_group)"
                )
            if position > 0:
                sim.restore(kernel_state, platform_restore=platform_restore)
            # Boundary compensation: resuming run() at t1-1 executes one
            # empty delta cycle a continuous run would not; undo it so
            # forked kernel counters equal fresh ones byte-for-byte.
            sim.delta_cycles_total -= 1
            stressor = Stressor(
                "stressor", parent=root, platform_root=root,
                rng=random.Random(spec.run_seed),
            )
            stressor.arm_forked(spec.scenario, seq_base)
            if spec.trace is not None:
                run_trace = RunTrace(spec.trace, spec.index, spec.run_seed)
                if prefix_sink is not None:
                    run_trace.preload_detections(prefix_sink.detections)
                run_trace.arm(
                    sim, _resolve_trace_signals(spec, root, trace_signals)
                )
            try:
                sim.run(until=spec.duration, deadline_s=spec.deadline_s)
            except DeadlineExceeded as exc:
                kernel_stats = sim.stats()
                kernel_stats["wall_s"] = time.perf_counter() - wall_start  # vp-lint: disable=VP005 - wall_s accounting, not model behavior
                digest = None
                if run_trace is not None:
                    digest = run_trace.finalize(
                        stressor=stressor,
                        outcome=Outcome.TIMEOUT.name,
                        partial=True,
                    )
                outcomes.append(failure_outcome(
                    spec,
                    failure="timeout",
                    error=str(exc),
                    attempts=spec.attempt + 1,
                    kernel_stats=kernel_stats,
                    label="timeout:deadline",
                    digest=digest,
                ))
                continue
            observation = observe(root)
            outcome, matched = classifier.classify(observation, reference)
            digest = None
            if run_trace is not None:
                digest = run_trace.finalize(
                    stressor=stressor,
                    observation=observation,
                    golden=reference,
                    outcome=outcome.name,
                )
            kernel_stats = sim.stats()
            kernel_stats["wall_s"] = time.perf_counter() - wall_start  # vp-lint: disable=VP005 - wall_s accounting, not model behavior
            outcomes.append(RunOutcome(
                index=spec.index,
                outcome=outcome,
                matched_rules=tuple(matched),
                observation=observation,
                injections_applied=len(stressor.applied),
                kernel_stats=kernel_stats,
                stressor_errors=tuple(stressor.errors),
                attempts=spec.attempt + 1,
                digest=digest,
            ))
        except Exception as exc:  # vp-lint: disable=VP007 - degraded to the same terminal record the tolerant per-run path emits; the next iteration restores the snapshot regardless
            outcomes.append(failure_outcome(
                spec,
                failure="error",
                error=f"{type(exc).__name__}: {exc}",
                attempts=spec.attempt + 1,
                label=f"error:{type(exc).__name__}",
            ))
        finally:
            if run_trace is not None:
                run_trace.disarm()
            if stressor is not None:
                # Reap this run's scaffolding before the next restore:
                # detached processes stay dead through restore (the
                # capture predates them), and the parent must not
                # accumulate same-named stressor children.
                stressor.detach()
    return outcomes


def execute_fork_group_from_registry(
    specs: _t.Sequence[RunSpec],
) -> _t.List[RunOutcome]:
    """Worker-side fork-group entry point (picklable by reference)."""
    spec = specs[0]
    if spec.platform is None:
        raise ValueError(
            f"run {spec.index}: spec carries no platform key — only "
            f"registry-backed campaigns can execute out of process"
        )
    from ..platforms import registry

    bundle = registry.get_platform(spec.platform)
    classifier = registry.get_classifier(spec.platform)
    return execute_fork_group(
        specs, bundle.factory, bundle.observe, classifier,
        capture_state=bundle.capture_state,
        restore_state=bundle.restore_state,
    )


def execute_runspec_tolerant(spec: RunSpec) -> RunOutcome:
    """Worker-side entry point that never raises back across the pool.

    Exceptions from the run body (platform bugs, fault-induced process
    errors) are folded into a terminal :data:`Outcome.TIMEOUT` record
    worker-side — remote exceptions often do not survive pickling (a
    :class:`~repro.kernel.ProcessError` holds a live generator), and a
    deterministic raise would fail identically on every retry anyway.
    Worker *crashes* (``os._exit``, OOM kills) cannot be caught here;
    the pool executor sees those as ``BrokenProcessPool`` and handles
    the retry/terminal bookkeeping on the parent side.
    """
    try:
        return execute_runspec_from_registry(spec)
    except Exception as exc:  # noqa: BLE001 - degraded to a record  # vp-lint: disable=VP007 - deadlines degrade to TIMEOUT inside execute_runspec; anything that escapes must become a record, never kill the worker
        return failure_outcome(
            spec,
            failure="error",
            error=f"{type(exc).__name__}: {exc}",
            attempts=spec.attempt + 1,
            label=f"error:{type(exc).__name__}",
        )


def execute_chunk_tolerant(
    specs: _t.Sequence[RunSpec],
) -> _t.List[RunOutcome]:
    """Worker-side entry point for one contiguous chunk of specs.

    Runs each spec through the tolerant per-run path in order, so a
    chunk's records are byte-identical to the same specs dispatched
    one future each — per-run deadlines, degradation labels, and
    digests all come from the same code.  One pickled future per
    *chunk* instead of per *run* is where the dispatch saving comes
    from (and within a chunk, warm-platform reuse never pays the
    pool's pickling round-trip between consecutive runs).

    Worker death mid-chunk surfaces pool-side as a failure of the
    whole chunk's future; the executor then falls back to per-run
    dispatch for exactly these specs (see
    ``ParallelExecutor.run_batch``), which re-derives the crash /
    hang attribution at run granularity.

    Fork-mode specs are grouped *within* the chunk: specs sharing a
    platform and fork time run as one snapshot-fork group, anything
    else (and any group the platform cannot fork) takes the per-run
    path.  Records come back in spec order either way.
    """
    groups, singles = fork_groups(specs)
    done: _t.Dict[int, RunOutcome] = {}
    for _key, members in groups:
        try:
            results = execute_fork_group_from_registry(members)
        except ForkUnsupported:
            results = [execute_runspec_tolerant(spec) for spec in members]
        for spec, outcome in zip(members, results):
            done[spec.index] = outcome
    for spec in singles:
        done[spec.index] = execute_runspec_tolerant(spec)
    return [done[spec.index] for spec in specs]
