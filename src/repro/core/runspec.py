"""The serializable planner/executor boundary of the campaign loop.

The Fig. 3 loop is split into three layers (see DESIGN.md, "Campaign
execution backends"):

1. the **planner** turns strategy output into :class:`RunSpec`s —
   self-contained, picklable descriptions of one run (scenario, run
   seed, duration, platform key, golden reference);
2. an **executor** (``repro.core.executors``) runs specs — in-process
   or fanned out to a worker pool — and returns :class:`RunOutcome`s;
3. the aggregation layer folds outcomes back into
   :class:`~repro.core.campaign.CampaignResult`, coverage, and
   strategy feedback.

:func:`execute_runspec` is the single simulation routine both backends
share: build a fresh kernel and platform, arm the stressor, simulate,
observe, classify against the golden reference.  Identical code on
both sides is what makes serial and parallel campaigns bit-equal.
"""

from __future__ import annotations

import dataclasses
import random
import time
import typing as _t

from ..kernel import Simulator
from .classification import Classifier, Outcome, RunObservation
from .scenario import ErrorScenario
from .stressor import Stressor

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Module


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything one campaign run needs, picklable and self-contained.

    ``platform`` is a key into the :mod:`repro.platforms.registry`;
    worker processes rebuild the prototype from it.  ``golden`` is the
    fault-free reference observation, computed once by the campaign
    and shipped with every spec so no worker ever re-runs (or races
    on) the golden simulation.
    """

    index: int
    scenario: ErrorScenario
    run_seed: int
    duration: int
    platform: _t.Optional[str] = None
    golden: _t.Optional[RunObservation] = None

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("run duration must be positive")
        if self.index < 0:
            raise ValueError("run index must be non-negative")


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """The compact result an executor returns for one :class:`RunSpec`.

    Deliberately free of live simulation objects: only the
    classification verdict, the probe observation, and the kernel cost
    counters cross the process boundary back to the planner.
    """

    index: int
    outcome: Outcome
    matched_rules: _t.Tuple[str, ...]
    observation: RunObservation
    injections_applied: int
    kernel_stats: _t.Dict[str, _t.Any]
    stressor_errors: _t.Tuple[str, ...] = ()


def execute_runspec(
    spec: RunSpec,
    factory: "_t.Callable[[Simulator], Module]",
    observe: "_t.Callable[[Module], RunObservation]",
    classifier: Classifier,
    golden: _t.Optional[RunObservation] = None,
) -> RunOutcome:
    """Execute one spec on a fresh platform and classify the result.

    The golden reference is taken from the spec when present,
    otherwise from the *golden* argument; planners always embed it so
    executors need no shared state.
    """
    reference = spec.golden if spec.golden is not None else golden
    if reference is None:
        raise ValueError(
            f"run {spec.index}: no golden reference (neither embedded "
            f"in the spec nor passed to execute_runspec)"
        )
    wall_start = time.perf_counter()
    sim = Simulator()
    root = factory(sim)
    stressor = Stressor(
        "stressor", parent=root, platform_root=root,
        rng=random.Random(spec.run_seed),
    )
    stressor.arm(spec.scenario)
    sim.run(until=spec.duration)
    observation = observe(root)
    outcome, matched = classifier.classify(observation, reference)
    kernel_stats = sim.stats()
    kernel_stats["wall_s"] = time.perf_counter() - wall_start
    return RunOutcome(
        index=spec.index,
        outcome=outcome,
        matched_rules=tuple(matched),
        observation=observation,
        injections_applied=len(stressor.applied),
        kernel_stats=kernel_stats,
        stressor_errors=tuple(stressor.errors),
    )


def execute_runspec_from_registry(spec: RunSpec) -> RunOutcome:
    """Worker-side entry point: resolve the platform key, then run.

    Module-level (hence picklable by reference) so process pools can
    ship it; the lazy import keeps ``repro.core`` importable without
    ``repro.platforms`` and triggers built-in registration inside
    freshly spawned workers.
    """
    if spec.platform is None:
        raise ValueError(
            f"run {spec.index}: spec carries no platform key — only "
            f"registry-backed campaigns can execute out of process"
        )
    from ..platforms import registry

    bundle = registry.get_platform(spec.platform)
    classifier = registry.get_classifier(spec.platform)
    return execute_runspec(
        spec, bundle.factory, bundle.observe, classifier
    )
