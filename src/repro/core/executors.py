"""Campaign execution backends.

The paper names simulation speed as the limiting factor of
quantitative safety evaluation ("repeated stress tests enable a
quantitative evaluation", Sec. 3.4) — so the campaign loop delegates
the expensive part, running :class:`~repro.core.runspec.RunSpec`
batches, to a swappable :class:`Executor`:

* :class:`SerialExecutor` — runs specs in-process, in order.  With a
  batch size of one this reproduces the historical sequential loop
  byte for byte.
* :class:`ParallelExecutor` — fans specs out to a
  ``concurrent.futures.ProcessPoolExecutor``; each worker rebuilds
  its own platform from the spec's registry key
  (:mod:`repro.platforms.registry`) and returns a compact
  :class:`~repro.core.runspec.RunOutcome`.  Outcomes are re-ordered
  by run index, so aggregation is independent of worker scheduling.

Both backends execute the *same* ``execute_runspec`` routine, which is
what the serial/parallel equivalence tests pin down.
"""

from __future__ import annotations

import os
import typing as _t

from .runspec import (
    RunOutcome,
    RunSpec,
    execute_runspec,
    execute_runspec_from_registry,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Module, Simulator
    from .classification import Classifier, RunObservation


def default_worker_count() -> int:
    """Workers to use when the caller does not say: one per CPU."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class Executor:
    """Runs batches of :class:`RunSpec`; returned outcomes are always
    sorted by run index regardless of completion order."""

    #: Degree of parallelism, used by the planner to size batches.
    workers: int = 1

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process execution — the reference backend.

    Built either from explicit callables (any campaign, including ones
    whose factories are closures) or from a registry key.
    """

    def __init__(
        self,
        factory: "_t.Callable[[Simulator], Module]",
        observe: "_t.Callable[[Module], RunObservation]",
        classifier: "Classifier",
    ):
        self.factory = factory
        self.observe = observe
        self.classifier = classifier

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        return [
            execute_runspec(spec, self.factory, self.observe, self.classifier)
            for spec in specs
        ]


class ParallelExecutor(Executor):
    """Process-pool execution over registry-backed platforms.

    The pool is created lazily on the first batch and reused until
    :meth:`close`, so one campaign pays the worker start-up cost once.
    Specs must carry a ``platform`` registry key — the campaign
    planner embeds it (and the golden observation) in every spec.
    """

    def __init__(
        self,
        platform: _t.Optional[str] = None,
        workers: _t.Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("need at least one worker")
        if platform is not None:
            # Fail fast in the parent on unknown keys instead of
            # surfacing the KeyError from inside a worker.
            from ..platforms import registry

            registry.get_platform(platform)
        self.platform = platform
        self.workers = workers or default_worker_count()
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._pool

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        for spec in specs:
            if spec.platform is None:
                raise ValueError(
                    f"run {spec.index}: spec has no platform registry "
                    f"key; parallel execution requires a campaign "
                    f"built with platform=<name>"
                )
        pool = self._ensure_pool()
        futures = [
            pool.submit(execute_runspec_from_registry, spec)
            for spec in specs
        ]
        outcomes = [future.result() for future in futures]
        return sorted(outcomes, key=lambda outcome: outcome.index)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(
    backend: _t.Union[str, Executor],
    *,
    factory=None,
    observe=None,
    classifier=None,
    platform: _t.Optional[str] = None,
    workers: _t.Optional[int] = None,
) -> _t.Tuple[Executor, bool]:
    """Resolve a backend selector to an executor.

    Returns ``(executor, owned)``: campaigns close executors they
    created but leave caller-provided instances open for reuse.
    """
    if isinstance(backend, Executor):
        return backend, False
    if backend == "serial":
        if factory is None or observe is None or classifier is None:
            raise ValueError("serial backend needs factory/observe/classifier")
        return SerialExecutor(factory, observe, classifier), True
    if backend == "parallel":
        if platform is None:
            raise ValueError(
                "parallel backend requires a registry-backed campaign "
                "(Campaign(platform=<name>, ...)); see "
                "repro.platforms.register_platform"
            )
        return ParallelExecutor(platform, workers=workers), True
    raise ValueError(
        f"unknown backend {backend!r}; expected 'serial', 'parallel', "
        f"or an Executor instance"
    )
