"""Campaign execution backends.

The paper names simulation speed as the limiting factor of
quantitative safety evaluation ("repeated stress tests enable a
quantitative evaluation", Sec. 3.4) — so the campaign loop delegates
the expensive part, running :class:`~repro.core.runspec.RunSpec`
batches, to a swappable :class:`Executor`:

* :class:`SerialExecutor` — runs specs in-process, in order.  With a
  batch size of one this reproduces the historical sequential loop
  byte for byte.
* :class:`ParallelExecutor` — fans specs out to a
  ``concurrent.futures.ProcessPoolExecutor``; each worker rebuilds
  its own platform from the spec's registry key
  (:mod:`repro.platforms.registry`) and returns a compact
  :class:`~repro.core.runspec.RunOutcome`.  Outcomes are re-ordered
  by run index, so aggregation is independent of worker scheduling.

Both backends execute the *same* ``execute_runspec`` routine, which is
what the serial/parallel equivalence tests pin down.

Fault tolerance
---------------

Campaigns inject faults that can hang a DUT or kill a worker, so the
executors degrade instead of aborting:

* a run whose simulation exceeds its ``RunSpec.deadline_s`` wall-clock
  budget comes back as a classified ``Outcome.TIMEOUT`` record
  (``failure="timeout"``, enforced inside the kernel loop);
* a run whose body raises comes back as a terminal
  ``failure="error"`` record — a deterministic raise would fail
  identically on every retry, so none are attempted;
* a run whose *worker process dies* (``BrokenProcessPool`` — e.g. an
  injected ``os._exit``) is retried with deterministic exponential
  backoff up to :attr:`RetryPolicy.max_retries` times on a rebuilt
  pool, then becomes a terminal ``failure="crash"`` record.  Only
  runs that can actually have been executing when the pool broke (the
  first ``workers`` casualties in FIFO dispatch order) are charged a
  retry attempt; co-batched runs that were still queued re-run on the
  rebuilt pool free of charge;
* a run that hangs so hard the worker-side deadline cannot fire (a
  process body that never yields) is caught by the pool-level hard
  timeout; the poisoned pool is killed and rebuilt, and the *hung*
  run is recorded as ``failure="timeout"`` — runs merely queued
  behind it (``Future.cancel()`` succeeds, so they never started)
  re-run on the rebuilt pool instead of being dragged down with it.

Every degradation path yields exactly one ``RunOutcome`` per planned
spec, so ``runs == completed + timed_out + terminally_failed`` always
holds and a poisoned spec can never kill a campaign.
"""

from __future__ import annotations

import dataclasses
import os
import time
import typing as _t

from .runspec import (
    ForkUnsupported,
    RunOutcome,
    RunSpec,
    execute_chunk_tolerant,
    execute_fork_group,
    execute_runspec,
    execute_runspec_tolerant,
    failure_outcome,
    fork_groups,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Module, Simulator
    from .classification import Classifier, RunObservation

#: Pool-level hard-timeout slack on top of the per-run deadline: covers
#: platform construction, observation, pickling, and queueing behind
#: other runs of the same batch on a busy pool.
HARD_TIMEOUT_GRACE = 5.0
HARD_TIMEOUT_FACTOR = 3.0


def default_worker_count() -> int:
    """Workers to use when the caller does not say: one per CPU."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry for worker-crash casualties.

    ``max_retries`` bounds redispatches per spec *beyond* the first
    attempt; ``backoff_s`` seeds the deterministic exponential backoff
    slept before each pool rebuild (no jitter — campaigns must replay
    identically under a fixed seed).
    """

    max_retries: int = 2
    backoff_s: float = 0.05

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("retry budget must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff must be non-negative")

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def backoff_for(self, rebuild: int) -> float:
        """Seconds to sleep before pool rebuild number *rebuild* (1-based)."""
        return self.backoff_s * (2 ** max(rebuild - 1, 0))


class Executor:
    """Runs batches of :class:`RunSpec`; returned outcomes are always
    sorted by run index regardless of completion order.  Implementations
    must return exactly one outcome per spec — degraded runs come back
    as ``Outcome.TIMEOUT`` records, never as exceptions."""

    #: Degree of parallelism, used by the planner to size batches.
    workers: int = 1

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; idempotent, even after a crash."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process execution — the reference backend.

    Built either from explicit callables (any campaign, including ones
    whose factories are closures) or from a registry key.  ``reset``
    is the platform bundle's warm-reset hook; when present, runs that
    permit ``reuse_platform`` execute on one warm platform instead of
    re-elaborating per run.  ``capture_state``/``restore_state`` are
    the bundle's snapshot hooks; fork-mode specs (``RunSpec.fork``)
    sharing a platform and injection time then run as snapshot-fork
    groups — one shared prefix, N forked suffixes — with per-run
    fallback whenever a group cannot fork.
    """

    def __init__(
        self,
        factory: "_t.Callable[[Simulator], Module]",
        observe: "_t.Callable[[Module], RunObservation]",
        classifier: "Classifier",
        reset: _t.Optional[_t.Callable] = None,
        capture_state: _t.Optional[_t.Callable] = None,
        restore_state: _t.Optional[_t.Callable] = None,
    ):
        self.factory = factory
        self.observe = observe
        self.classifier = classifier
        self.reset = reset
        self.capture_state = capture_state
        self.restore_state = restore_state

    def _run_one(self, spec: RunSpec) -> RunOutcome:
        try:
            return execute_runspec(
                spec, self.factory, self.observe, self.classifier,
                reset=self.reset,
            )
        except Exception as exc:  # noqa: BLE001 - degraded to a record  # vp-lint: disable=VP007 - deadlines degrade to TIMEOUT inside execute_runspec; nothing to re-raise here
            return failure_outcome(
                spec,
                failure="error",
                error=f"{type(exc).__name__}: {exc}",
                attempts=spec.attempt + 1,
                label=f"error:{type(exc).__name__}",
            )

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        groups, singles = fork_groups(specs)
        if not groups:
            return [self._run_one(spec) for spec in specs]
        done: _t.Dict[int, RunOutcome] = {}
        for _key, members in groups:
            try:
                results = execute_fork_group(
                    members, self.factory, self.observe, self.classifier,
                    capture_state=self.capture_state,
                    restore_state=self.restore_state,
                )
            except ForkUnsupported:
                results = [self._run_one(spec) for spec in members]
            for spec, outcome in zip(members, results):
                done[spec.index] = outcome
        for spec in singles:
            done[spec.index] = self._run_one(spec)
        return [done[spec.index] for spec in specs]


class ParallelExecutor(Executor):
    """Process-pool execution over registry-backed platforms.

    The pool is created lazily on the first batch and reused until
    :meth:`close`, so one campaign pays the worker start-up cost once.
    Specs must carry a ``platform`` registry key — the campaign
    planner embeds it (and the golden observation) in every spec.

    ``retry`` governs redispatch of runs whose worker died;
    ``hard_timeout_s`` overrides the pool-level backstop timeout
    derived from the specs' deadlines (``None`` + no deadlines =
    wait forever, the legacy behavior).

    ``chunk_size`` controls dispatch granularity: each future carries
    a contiguous slice of that many specs (one
    ``execute_chunk_tolerant`` call) instead of a single run, cutting
    the submit/pickle/collect round-trips per batch by the chunk
    factor.  ``None`` auto-tunes to roughly four chunks per worker;
    ``1`` restores per-run dispatch exactly.  Chunks are an
    *optimistic* fast path: any chunk whose future fails — worker
    death, pool-level hang, pickling trouble — falls back to per-run
    dispatch for precisely its specs, where the PR-2 crash/hang
    attribution (FIFO pigeonholing, innocent re-runs, retry budgets)
    is re-derived at run granularity.  The failed chunk attempt is
    free reconnaissance: fallback runs start at the same attempt
    number per-run dispatch would have used, so outcome records and
    checkpoint journals are byte-identical either way.
    """

    def __init__(
        self,
        platform: _t.Optional[str] = None,
        workers: _t.Optional[int] = None,
        retry: _t.Optional[RetryPolicy] = None,
        hard_timeout_s: _t.Optional[float] = None,
        chunk_size: _t.Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("need at least one worker")
        if hard_timeout_s is not None and hard_timeout_s <= 0:
            raise ValueError("hard timeout must be positive")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk size must be positive")
        if platform is not None:
            # Fail fast in the parent on unknown keys instead of
            # surfacing the KeyError from inside a worker.
            from ..platforms import registry

            registry.get_platform(platform)
        self.platform = platform
        self.workers = workers or default_worker_count()
        self.retry = retry or RetryPolicy()
        self.hard_timeout_s = hard_timeout_s
        self.chunk_size = chunk_size
        self._pool = None
        #: Lifetime counters surfaced through CampaignResult.report().
        self.pool_rebuilds = 0
        self.chunk_fallbacks = 0

    def _ensure_pool(self):
        if self._pool is None:
            import concurrent.futures

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._pool

    def _hard_timeout(self, specs: _t.Sequence[RunSpec]) -> _t.Optional[float]:
        """The pool-level backstop for one batch, or ``None`` to wait."""
        if self.hard_timeout_s is not None:
            return self.hard_timeout_s
        deadlines = [s.deadline_s for s in specs if s.deadline_s is not None]
        if not deadlines:
            return None
        return max(deadlines) * HARD_TIMEOUT_FACTOR + HARD_TIMEOUT_GRACE

    def _kill_pool(self) -> None:
        """Tear down a poisoned pool: terminate workers, drop futures."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.pool_rebuilds += 1
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already-dead workers  # vp-lint: disable=VP007 - pool teardown; deadlines are worker-side
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools may refuse  # vp-lint: disable=VP007 - pool teardown; deadlines are worker-side
            pass

    def _effective_chunk_size(self, batch_size: int) -> int:
        """Chunk granularity for a batch of *batch_size* specs.

        Auto mode targets ~4 chunks per worker: small enough that one
        slow chunk cannot idle the pool for long, large enough that
        dispatch overhead amortizes.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-batch_size // (self.workers * 4)))

    def _chunk_timeout(
        self, chunk: _t.Sequence[RunSpec]
    ) -> _t.Optional[float]:
        """Pool-level backstop for one chunk future (None = wait)."""
        if self.hard_timeout_s is not None:
            return self.hard_timeout_s * len(chunk)
        deadlines = [s.deadline_s for s in chunk if s.deadline_s is not None]
        if len(deadlines) < len(chunk):
            # Any deadline-less run may legitimately take arbitrarily
            # long; a finite chunk backstop would misfire.
            return None
        return (
            max(deadlines) * HARD_TIMEOUT_FACTOR * len(chunk)
            + HARD_TIMEOUT_GRACE
        )

    def _run_chunked(
        self,
        specs: _t.Sequence[RunSpec],
        chunk_size: int,
        done: _t.Dict[int, RunOutcome],
    ) -> _t.List[RunSpec]:
        """Optimistic chunked dispatch; returns specs needing fallback.

        Clean chunks deposit their per-run outcomes into *done*.  A
        chunk whose future fails in any way contributes its specs to
        the returned fallback list — uncharged, since none of its
        outcomes are kept — and poisons the pool, which is killed here
        so the per-run phase starts on a fresh one.
        """
        from concurrent.futures.process import BrokenProcessPool

        chunks = [
            list(specs[start : start + chunk_size])
            for start in range(0, len(specs), chunk_size)
        ]
        fallback: _t.List[RunSpec] = []
        submitted: _t.List[_t.Tuple[_t.List[RunSpec], _t.Any]] = []
        poisoned = False
        pool = self._ensure_pool()
        for chunk in chunks:
            try:
                submitted.append(
                    (chunk, pool.submit(execute_chunk_tolerant, chunk))
                )
            except (BrokenProcessPool, RuntimeError):
                poisoned = True
                fallback.extend(chunk)
        for chunk, future in submitted:
            if poisoned and future.cancel():
                # Queued behind a failed chunk and never started; skip
                # straight to per-run dispatch without burning another
                # backstop window.
                fallback.extend(chunk)
                continue
            try:
                outcomes = future.result(timeout=self._chunk_timeout(chunk))
            except Exception:  # noqa: BLE001 - FutureTimeout,  # vp-lint: disable=VP007 - pool-side plumbing; deadlines are worker-side
                # BrokenProcessPool, unpicklable results: any chunk
                # failure routes its specs to per-run dispatch, which
                # re-derives exact attribution.
                poisoned = True
                fallback.extend(chunk)
            else:
                for outcome in outcomes:
                    done[outcome.index] = outcome
        if poisoned:
            self.chunk_fallbacks += 1
            self._kill_pool()
        return fallback

    def run_batch(self, specs: _t.Sequence[RunSpec]) -> _t.List[RunOutcome]:
        for spec in specs:
            if spec.platform is None:
                raise ValueError(
                    f"run {spec.index}: spec has no platform registry "
                    f"key; parallel execution requires a campaign "
                    f"built with platform=<name>"
                )
        done: _t.Dict[int, RunOutcome] = {}
        remaining: _t.Sequence[RunSpec] = specs
        chunk_size = self._effective_chunk_size(len(specs))
        if chunk_size > 1:
            remaining = self._run_chunked(specs, chunk_size, done)
        if remaining:
            self._run_per_run(remaining, done)
        return [done[spec.index] for spec in specs]

    def _run_per_run(
        self,
        specs: _t.Sequence[RunSpec],
        done: _t.Dict[int, RunOutcome],
    ) -> None:
        """One future per run, with the full retry/attribution logic."""
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        hard_timeout = self._hard_timeout(specs)
        by_index = {spec.index: spec for spec in specs}
        #: spec index -> attempt number currently in flight (1-based).
        pending: _t.Dict[int, int] = {spec.index: 1 for spec in specs}
        rebuilds = 0
        while pending:
            pool = self._ensure_pool()
            futures: _t.Dict[int, _t.Any] = {}
            poisoned = False
            for index in sorted(pending):
                spec = dataclasses.replace(
                    by_index[index], attempt=pending[index] - 1
                )
                try:
                    futures[index] = pool.submit(
                        execute_runspec_tolerant, spec
                    )
                except (BrokenProcessPool, RuntimeError):
                    # Pool already broken (or shut down mid-crash)
                    # before this spec was even accepted: it never ran,
                    # so it stays pending for the rebuilt pool without
                    # being charged a retry attempt.
                    poisoned = True
            #: Futures resolved with BrokenProcessPool, in submission
            #: order.  The pool dispatches work FIFO, so only the first
            #: ``workers`` of these can actually have been running when
            #: the pool broke — the rest were still queued.
            crashed: _t.List[int] = []
            #: Terminal hang records this round.  At most ``workers``
            #: runs can truly be executing, so once this many hangs are
            #: on record, every remaining future without a buffered
            #: result is provably still queued.  (``Future.cancel()``
            #: alone cannot tell: the pool pre-marks call-queue-
            #: buffered items RUNNING before a worker picks them up.)
            hung_slots = 0
            for index, future in futures.items():
                attempt = pending[index]
                if hung_slots and future.cancel():
                    # Queued behind the hung worker and never started:
                    # re-run on the rebuilt pool, free of charge,
                    # without burning another backstop window.
                    poisoned = True
                    continue
                wait = 0 if hung_slots >= self.workers else hard_timeout
                try:
                    outcome = future.result(timeout=wait)
                except FutureTimeout:
                    if future.cancel() or hung_slots >= self.workers:
                        # The backstop fired while this run was still
                        # queued — provably (cancel succeeded) or by
                        # pigeonhole (every worker already accounted
                        # hung) — so it never executed and is not the
                        # hang.  Re-queue at the same attempt count.
                        poisoned = True
                        continue
                    # Hard hang: the worker-side deadline never fired
                    # (non-yielding process body).  Terminal — a rerun
                    # would hang for the full backstop again.
                    done[index] = failure_outcome(
                        by_index[index],
                        failure="timeout",
                        error=(
                            f"no result within the {hard_timeout}s "
                            f"pool-level hard timeout"
                        ),
                        attempts=attempt,
                        label="timeout:pool",
                    )
                    del pending[index]
                    hung_slots += 1
                    poisoned = True
                except BrokenProcessPool:
                    crashed.append(index)
                    poisoned = True
                except Exception as exc:  # noqa: BLE001 - pickling edge  # vp-lint: disable=VP007 - pool-side plumbing; deadlines are worker-side
                    done[index] = failure_outcome(
                        by_index[index],
                        failure="error",
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                        label=f"error:{type(exc).__name__}",
                    )
                    del pending[index]
                else:
                    if outcome.attempts != attempt:
                        outcome = dataclasses.replace(
                            outcome, attempts=attempt
                        )
                    done[index] = outcome
                    del pending[index]
            for position, index in enumerate(crashed):
                if position >= self.workers:
                    # Provably queued when the pool broke (FIFO
                    # dispatch, all workers accounted for above):
                    # re-run free of charge instead of letting a
                    # poison spec burn innocents' retry budgets.
                    continue
                attempt = pending[index]
                if attempt >= self.retry.max_attempts:
                    done[index] = failure_outcome(
                        by_index[index],
                        failure="crash",
                        error=(
                            f"worker process died (BrokenProcessPool); "
                            f"retry budget of {self.retry.max_retries} "
                            f"exhausted"
                        ),
                        attempts=attempt,
                        label="crash:worker",
                    )
                    del pending[index]
                else:
                    pending[index] = attempt + 1
            if poisoned:
                # The pool is poisoned (dead or occupied workers):
                # rebuild before the next round, after a deterministic
                # backoff that lets transient resource pressure clear.
                self._kill_pool()
                if pending:
                    rebuilds += 1
                    backoff = self.retry.backoff_for(rebuilds)
                    if backoff:
                        time.sleep(backoff)

    def close(self) -> None:
        """Idempotent shutdown that survives a broken pool.

        ``ProcessPoolExecutor.shutdown`` can raise once workers have
        been killed out from under it; campaigns must still be able to
        release the executor in their ``finally`` block.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken-pool shutdown  # vp-lint: disable=VP007 - pool teardown; deadlines are worker-side
            for process in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001  # vp-lint: disable=VP007 - pool teardown; deadlines are worker-side
                    pass


# -- backend registry --------------------------------------------------------
#
# Backends plug in by name: a builder takes the full make_executor
# keyword set and returns a ready executor.  The registry is what lets
# repro.distributed (and future backends — campaign-as-a-service
# front-ends, cloud dispatchers) slot in beside serial/parallel
# without make_executor growing another if/elif arm, and what turns a
# typo'd backend= into one clear error naming every registered choice.

#: Backend name -> builder(**kwargs) -> Executor.
_BACKEND_BUILDERS: _t.Dict[str, _t.Callable[..., Executor]] = {}


def register_backend(
    name: str, builder: _t.Callable[..., Executor]
) -> None:
    """Register (or replace) a named executor backend.

    *builder* receives every ``make_executor`` keyword argument and
    returns an :class:`Executor` the campaign will own (and close).
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    _BACKEND_BUILDERS[name] = builder


def registered_backends() -> _t.Tuple[str, ...]:
    """The selectable backend names, sorted."""
    return tuple(sorted(_BACKEND_BUILDERS))


def _build_serial(
    *, factory=None, observe=None, classifier=None, reset=None,
    capture_state=None, restore_state=None, **_unused,
) -> Executor:
    if factory is None or observe is None or classifier is None:
        raise ValueError("serial backend needs factory/observe/classifier")
    return SerialExecutor(
        factory, observe, classifier, reset=reset,
        capture_state=capture_state, restore_state=restore_state,
    )


def _build_parallel(
    *, platform=None, workers=None, retry=None, hard_timeout_s=None,
    chunk_size=None, **_unused,
) -> Executor:
    if platform is None:
        raise ValueError(
            "parallel backend requires a registry-backed campaign "
            "(Campaign(platform=<name>, ...)); see "
            "repro.platforms.register_platform"
        )
    return ParallelExecutor(
        platform,
        workers=workers,
        retry=retry,
        hard_timeout_s=hard_timeout_s,
        chunk_size=chunk_size,
    )


def _build_distributed(
    *, platform=None, workers=None, retry=None, hard_timeout_s=None,
    chunk_size=None, telemetry=None, **_unused,
) -> Executor:
    # Lazy import: repro.core stays importable (and fast) without the
    # socket machinery; the distributed package registers nothing at
    # interpreter start.
    from ..distributed.coordinator import DistributedExecutor

    if platform is None:
        raise ValueError(
            "distributed backend requires a registry-backed campaign "
            "(Campaign(platform=<name>, ...)); workers rebuild the "
            "platform from its registry key on their own host"
        )
    return DistributedExecutor(
        platform,
        workers=workers,
        retry=retry,
        hard_timeout_s=hard_timeout_s,
        chunk_size=chunk_size,
        telemetry=telemetry,
    )


register_backend("serial", _build_serial)
register_backend("parallel", _build_parallel)
register_backend("distributed", _build_distributed)


def make_executor(
    backend: _t.Union[str, Executor],
    *,
    factory=None,
    observe=None,
    classifier=None,
    platform: _t.Optional[str] = None,
    workers: _t.Optional[int] = None,
    retry: _t.Optional[RetryPolicy] = None,
    hard_timeout_s: _t.Optional[float] = None,
    reset=None,
    capture_state=None,
    restore_state=None,
    chunk_size: _t.Optional[int] = None,
    telemetry=None,
) -> _t.Tuple[Executor, bool]:
    """Resolve a backend selector to an executor.

    Returns ``(executor, owned)``: campaigns close executors they
    created but leave caller-provided instances open for reuse (a
    passed-in instance also keeps its own retry/timeout/chunking
    configuration).  String selectors resolve through the backend
    registry (see :func:`register_backend`); an unknown name raises
    immediately, listing every registered backend — a typo must fail
    at the call site, not as a confusing downstream error.
    """
    if isinstance(backend, Executor):
        return backend, False
    if not isinstance(backend, str):
        raise TypeError(
            f"backend must be a name or an Executor instance, "
            f"not {type(backend).__name__}"
        )
    builder = _BACKEND_BUILDERS.get(backend)
    if builder is None:
        names = ", ".join(repr(name) for name in registered_backends())
        raise ValueError(
            f"unknown backend {backend!r}; registered backends: "
            f"{names} (or pass an Executor instance)"
        )
    executor = builder(
        factory=factory,
        observe=observe,
        classifier=classifier,
        platform=platform,
        workers=workers,
        retry=retry,
        hard_timeout_s=hard_timeout_s,
        reset=reset,
        capture_state=capture_state,
        restore_state=restore_state,
        chunk_size=chunk_size,
        telemetry=telemetry,
    )
    return executor, True
