"""Stressor and classification as UVM testbench components.

Sec. 3.3's proposal is specifically *UVM-shaped*: the stressor is "an
additional component of the testbench for fault/error evaluation", and
"methodologies for fault/error classification and fault-error-failure
analysis are required at the monitoring side of the testbench".  This
module packages the campaign machinery in exactly those roles so it
drops into any :mod:`repro.uvm` environment:

* :class:`UvmStressor` — a component owning the injector plumbing; arm
  it with an :class:`~repro.core.scenario.ErrorScenario` before (or
  during) the run phase;
* :class:`FaultClassifierComponent` — a monitor-side component that
  collects observations in ``extract_phase`` and classifies them in
  ``check_phase``/``report_phase`` against a golden observation.
"""

from __future__ import annotations

import random
import typing as _t

from ..kernel import Module
from ..uvm import UvmComponent
from .classification import Classifier, Outcome, RunObservation
from .scenario import ErrorScenario
from .stressor import Stressor


class UvmStressor(UvmComponent):
    """The paper's stressor as a UVM testbench component.

    Scenarios may be armed any time before their first injection time;
    typically the test arms one scenario after elaboration.  Factory
    overrides can swap a nominal (never-arming) stressor for an
    error-injecting one without touching the environment.
    """

    def __init__(
        self,
        name: str,
        parent,
        platform_root: Module,
        rng: _t.Optional[random.Random] = None,
    ):
        super().__init__(name, parent=parent)
        self._impl = Stressor(
            "impl", parent=self, platform_root=platform_root, rng=rng
        )
        self.pending: _t.List[ErrorScenario] = []

    def arm(self, scenario: ErrorScenario) -> None:
        self.pending.append(scenario)

    def run_phase(self):
        for scenario in self.pending:
            self._impl.arm(scenario)
        self.pending = []
        return None  # injections run as their own processes

    @property
    def applied(self):
        return self._impl.applied

    @property
    def injection_errors(self) -> _t.List[str]:
        return self._impl.errors

    def check_phase(self) -> None:
        if self._impl.errors:
            raise AssertionError(
                f"stressor {self.full_name}: injection errors "
                f"{self._impl.errors}"
            )

    def report_phase(self) -> _t.Dict[str, _t.Any]:
        return self._impl.report()


class FaultClassifierComponent(UvmComponent):
    """Monitor-side fault-error-failure classification.

    Parameters
    ----------
    observe:
        ``fn(platform_root) -> RunObservation`` — the probe set.
    classifier:
        The severity-rule classifier.
    golden:
        The fault-free reference observation (from a prior golden run).
    fail_at:
        ``check_phase`` raises when the classified outcome is at least
        this severe (``None`` disables — campaign mode reads the
        outcome from the report instead).
    """

    def __init__(
        self,
        name: str,
        parent,
        platform_root: Module,
        observe: _t.Callable[[Module], RunObservation],
        classifier: Classifier,
        golden: RunObservation,
        fail_at: _t.Optional[Outcome] = Outcome.SDC,
    ):
        super().__init__(name, parent=parent)
        self.platform_root = platform_root
        self.observe = observe
        self.classifier = classifier
        self.golden = golden
        self.fail_at = fail_at
        self.observation: _t.Optional[RunObservation] = None
        self.outcome: _t.Optional[Outcome] = None
        self.matched_rules: _t.List[str] = []

    def extract_phase(self) -> None:
        self.observation = self.observe(self.platform_root)
        self.outcome, self.matched_rules = self.classifier.classify(
            self.observation, self.golden
        )

    def check_phase(self) -> None:
        if self.outcome is None:
            raise AssertionError(
                f"{self.full_name}: extract_phase did not run"
            )
        if self.fail_at is not None and self.outcome >= self.fail_at:
            raise AssertionError(
                f"{self.full_name}: run classified {self.outcome.name} "
                f"({', '.join(self.matched_rules)})"
            )

    def report_phase(self) -> _t.Dict[str, _t.Any]:
        return {
            # NO_EFFECT is falsy (IntEnum 0): test identity, not truth.
            "outcome": self.outcome.name if self.outcome is not None else None,
            "rules": list(self.matched_rules),
        }


class FaultAnalysisEnv(UvmComponent):
    """A ready-made environment bundling stressor + classifier around a
    platform, for single-scenario UVM tests.

    The campaign loop (:class:`~repro.core.campaign.Campaign`) remains
    the tool for bulk statistics; this environment is the interactive /
    regression face of the same machinery: one scenario, one verdict,
    standard UVM phasing.
    """

    def __init__(
        self,
        name: str,
        platform_root: Module,
        observe,
        classifier: Classifier,
        golden: RunObservation,
        fail_at: _t.Optional[Outcome] = Outcome.SDC,
        rng: _t.Optional[random.Random] = None,
    ):
        super().__init__(name, sim=platform_root.sim)
        self.platform_root = platform_root
        self._observe = observe
        self._classifier = classifier
        self._golden = golden
        self._fail_at = fail_at
        self._rng = rng
        self.stressor: _t.Optional[UvmStressor] = None
        self.classifier_component: _t.Optional[FaultClassifierComponent] = None

    def build_phase(self) -> None:
        self.stressor = UvmStressor(
            "stressor", self, self.platform_root, rng=self._rng
        )
        self.classifier_component = FaultClassifierComponent(
            "classifier",
            self,
            self.platform_root,
            self._observe,
            self._classifier,
            self._golden,
            fail_at=self._fail_at,
        )
