"""Append-only campaign checkpoints: journal outcomes, resume campaigns.

Fault-injection campaigns at scale (thousands of runs, hours of wall
clock) must survive interruption — a killed job, a machine reboot, a
poisoned batch — without losing the completed work.  The
:class:`CampaignCheckpoint` journals every completed
:class:`~repro.core.runspec.RunOutcome` as one JSONL line in an
append-only file; on restart, :meth:`Campaign.run(...,
checkpoint=...) <repro.core.campaign.Campaign.run>` replans the same
deterministic spec stream and *skips execution* of every run index
already journaled, so the resumed campaign aggregates to the same
result as an uninterrupted one with the same seed.

File layout (schema version |schema|)::

    {"schema": 1, "key": {"seed": ..., "strategy": ..., "scenario_hash": ...,
                          "batch_size": ..., "run_timeout_s": ...}}
    {"index": 0, "outcome": "MASKED", "matched_rules": [...], ...}
    {"index": 1, ...}

* The **header** pins the journal to one campaign identity — the
  campaign seed, the strategy class, a hash over the scenario set
  (platform key, duration, fault-space pairs, injection window), plus
  the effective batch size and per-run deadline, both of which change
  what a given run index means (see :func:`campaign_key`).  Opening a
  journal written by a different campaign raises
  :class:`CheckpointKeyMismatch`; silently mixing outcomes of two
  campaigns would corrupt both.
* Each **record line** is one ``RunOutcome.to_jsonable()`` dict,
  flushed to disk as soon as its batch completes.
* A **truncated or corrupt trailing line** (the classic kill-during-
  write artifact) is dropped, counted in :attr:`dropped_lines`, and
  the affected run simply re-executes on resume — never fatal.  The
  unterminated tail is repaired *on disk* before the journal goes
  append-ready, so the next record starts on its own line instead of
  concatenating onto the leftover fragment.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import typing as _t

from .runspec import OUTCOME_SCHEMA_VERSION, RunOutcome

if _t.TYPE_CHECKING:  # pragma: no cover
    from .campaign import Campaign
    from .strategies import Strategy


class CheckpointError(RuntimeError):
    """The journal cannot be used (bad header, unsupported schema)."""


class CheckpointKeyMismatch(CheckpointError):
    """The journal belongs to a different (seed, strategy, scenario set)."""


def campaign_key(
    campaign: "Campaign",
    strategy: "Strategy",
    batch_size: int = 1,
    run_timeout_s: _t.Optional[float] = None,
    trace: _t.Optional[_t.Any] = None,
) -> dict:
    """The identity a journal is pinned to.

    Two campaigns share a journal only when replaying one would plan
    the identical spec stream *and* execute it under the same rules:
    same campaign seed, same strategy class and fault budget, the same
    scenario universe (platform, duration, fault-space geometry) — and
    the same effective **batch size** and **per-run deadline**.  The
    batch size is part of the identity because adaptive strategies
    plan batch-shaped streams (coverage striping, feedback between
    batches), and its default is derived from the worker count, i.e.
    from the host's CPU count: resuming on a different machine must
    raise :class:`CheckpointKeyMismatch` rather than silently map
    journaled run indices onto different scenarios.  The deadline is
    included because it changes run *outcomes* (what times out), not
    just their schedule.  Everything beyond seed and strategy name is
    folded into a stable hash.

    A *trace* config (see :class:`~repro.observe.TraceConfig`) joins
    the identity only when tracing is on: journaled records then carry
    digests whose content depends on the trace knobs (ring capacity,
    event budget), so a resume must trace identically.  Untraced
    campaigns keep the exact pre-observability key, and so still
    resume journals written before tracing existed.
    """
    parts = [
        f"duration={campaign.duration}",
        f"platform={campaign.platform}",
        f"faults={getattr(strategy, 'faults_per_scenario', None)}",
    ]
    space = getattr(strategy, "space", None)
    if space is not None:
        parts.append(
            f"window={space.window_start}:{space.window_end}"
            f"/{space.time_bins}"
        )
        parts.extend(
            f"{path}:{descriptor.name}" for path, descriptor in space.pairs
        )
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]
    key = {
        "seed": campaign.seed,
        "strategy": type(strategy).__name__,
        "scenario_hash": digest,
        "batch_size": batch_size,
        "run_timeout_s": run_timeout_s,
    }
    if trace is not None:
        key["trace"] = trace.key()
    return key


class CampaignCheckpoint:
    """An append-only JSONL journal of completed run outcomes.

    Usable directly (``open(key)`` / ``record_batch`` / ``close``) or,
    normally, handed to :meth:`Campaign.run` as ``checkpoint=`` — the
    campaign opens, validates, appends, and closes it.
    """

    def __init__(self, path: _t.Union[str, os.PathLike]):
        self.path = pathlib.Path(path)
        #: Journaled outcomes by run index, populated by :meth:`open`.
        self.outcomes: _t.Dict[int, RunOutcome] = {}
        #: Undecodable journal lines dropped during :meth:`open`.
        self.dropped_lines = 0
        self._key: _t.Optional[dict] = None
        self._file: _t.Optional[_t.IO[str]] = None

    # -- lifecycle ----------------------------------------------------------

    def open(self, key: dict) -> None:
        """Load any existing journal for *key* and go append-ready.

        A fresh path gets a header written immediately; an existing
        journal is validated against *key* and replayed into
        :attr:`outcomes`.
        """
        if self._file is not None:
            return
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load(key)
            self._repair_tail()
        self._key = key
        new_file = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        if new_file:
            header = {"schema": OUTCOME_SCHEMA_VERSION, "key": key}
            self._file.write(
                json.dumps(header, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._flush()

    def _load(self, key: dict) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
            schema = header["schema"]
            found_key = header["key"]
        except (ValueError, KeyError, TypeError):
            raise CheckpointError(
                f"{self.path}: unreadable checkpoint header"
            ) from None
        if schema > OUTCOME_SCHEMA_VERSION:
            raise CheckpointError(
                f"{self.path}: journal schema {schema} is newer than "
                f"supported version {OUTCOME_SCHEMA_VERSION}"
            )
        if found_key != key:
            raise CheckpointKeyMismatch(
                f"{self.path}: journal was written by campaign "
                f"{found_key}, not {key}; resuming would mix outcomes "
                f"of different campaigns"
            )
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                self._remember(RunOutcome.from_jsonable(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                # Truncated trailing write (or bit rot): drop the line;
                # the run re-executes on resume.
                self.dropped_lines += 1

    def _repair_tail(self) -> None:
        """Make the on-disk journal append-safe after a kill mid-write.

        A kill during :meth:`record_batch` can leave the file's final
        line unterminated; opening in append mode would then glue the
        next record onto the fragment, corrupting *that* record too
        (and silently losing it on the following resume).  A tail that
        still parses — the newline itself was the only casualty — is
        completed in place so its outcome is kept; an unparseable tail
        (already dropped by :meth:`_load`) is truncated away.
        """
        with open(self.path, "r+b") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            cut = data.rfind(b"\n") + 1
            tail = data[cut:]
            # cut == 0 means the tail is the header line, which _load
            # already validated; only record lines need a parse check.
            intact = cut == 0
            if not intact:
                try:
                    RunOutcome.from_jsonable(
                        json.loads(tail.decode("utf-8"))
                    )
                    intact = True
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    intact = False
            if intact:
                fh.write(b"\n")
            else:
                fh.seek(cut)
                fh.truncate()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- journaling ---------------------------------------------------------

    def _remember(self, outcome: RunOutcome) -> None:
        self.outcomes[outcome.index] = outcome

    def record_batch(self, outcomes: _t.Iterable[RunOutcome]) -> None:
        """Append *outcomes* and flush so a kill loses at most the
        in-flight line (which :meth:`open` will then drop)."""
        if self._file is None:
            raise CheckpointError("checkpoint is not open")
        wrote = False
        for outcome in outcomes:
            self._file.write(
                json.dumps(
                    outcome.to_jsonable(),
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
            self._remember(outcome)
            wrote = True
        if wrote:
            self._flush()

    def _flush(self) -> None:
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:  # pragma: no cover - fsync-less filesystems
            pass

    def __len__(self) -> int:
        return len(self.outcomes)


# -- shard namespaces and deterministic merge --------------------------------
#
# The distributed backend journals each worker's results into its own
# *shard* — a perfectly ordinary CampaignCheckpoint file named
# ``shard-<worker>.jsonl`` under one shard directory, carrying the
# same campaign-key header the serial journal would.  Shards exist
# because N workers appending to one file would interleave
# nondeterministically (and on separate hosts, not at all); the merge
# below restores the single-journal world deterministically.


def shard_paths_in(
    shard_dir: _t.Union[str, os.PathLike]
) -> _t.List[pathlib.Path]:
    """The shard journals under *shard_dir*, sorted by filename.

    Sorted-by-name is the merge's tie-break order, so it is part of
    the determinism contract: two merges of the same directory always
    see shards in the same sequence.
    """
    return sorted(pathlib.Path(shard_dir).glob("shard-*.jsonl"))


def merge_shards(
    target: _t.Union[str, os.PathLike],
    shards: _t.Iterable[_t.Union[str, os.PathLike]],
    key: dict,
) -> _t.Dict[str, int]:
    """Fold per-worker shard journals into one canonical journal.

    Every shard is opened as a full :class:`CampaignCheckpoint` —
    header validated against *key* (a shard from a different campaign
    raises :class:`CheckpointKeyMismatch`), unterminated tails
    repaired, undecodable lines dropped — then the union of records is
    deduplicated **by run index** and written to *target* in ascending
    index order.  Deduplication keeps the first occurrence in
    sorted-shard order; duplicates are legitimate (a worker declared
    dead on a stale heartbeat may still deliver its result while the
    redispatched copy also completes) and both copies describe the
    same deterministic simulation.

    The result is byte-identical to the journal a serial run of the
    same campaign writes — same header, same compact sorted-key record
    encoding, same order — modulo each record's wall-clock ``wall_s``
    counter, which is execution history, not simulation content.
    ``target`` is itself a valid checkpoint: handing it to
    ``Campaign.run(checkpoint=...)`` resumes the campaign, including
    from a *partial* merge covering only some workers' shards.

    Returns merge statistics: ``shards``, ``records`` (written),
    ``duplicates`` (discarded), ``dropped_lines`` (unparseable).
    """
    merged: _t.Dict[int, RunOutcome] = {}
    stats = {"shards": 0, "records": 0, "duplicates": 0, "dropped_lines": 0}
    for path in sorted(pathlib.Path(p) for p in shards):
        shard = CampaignCheckpoint(path)
        shard.open(key)
        shard.close()
        stats["shards"] += 1
        stats["dropped_lines"] += shard.dropped_lines
        for index in sorted(shard.outcomes):
            if index in merged:
                stats["duplicates"] += 1
            else:
                merged[index] = shard.outcomes[index]
    target_path = pathlib.Path(target)
    if target_path.exists():
        # Re-merging (e.g. after more shards arrived) must not append
        # onto a stale merge: the merge is a pure function of its
        # inputs, so the target is rewritten from scratch.
        target_path.unlink()
    journal = CampaignCheckpoint(target_path)
    journal.open(key)
    try:
        journal.record_batch(
            merged[index] for index in sorted(merged)
        )
    finally:
        journal.close()
    stats["records"] = len(merged)
    return stats
