"""Fault-space coverage: "intelligent coverage models ... to measure
the completeness of the error effect simulation" (Sec. 3.4, Fig. 3).

The model tracks, per (target × descriptor × time-bin) cell of the
:class:`~repro.core.scenario.FaultSpace`:

* how often the cell was injected,
* which outcomes resulted,

and reports structural closure (fraction of cells exercised) plus
outcome-weighted views (e.g. cells whose behaviour is still unknown vs
cells already shown benign).  Strategies consume :meth:`least_covered`
to steer scenario generation toward closure.
"""

from __future__ import annotations

import collections
import typing as _t

from .classification import Outcome
from .scenario import ErrorScenario, FaultSpace


class CellStats:
    __slots__ = ("hits", "outcomes")

    def __init__(self):
        self.hits = 0
        self.outcomes: _t.Counter = collections.Counter()

    def record(self, outcome: Outcome) -> None:
        self.hits += 1
        self.outcomes[outcome] += 1

    @property
    def worst(self) -> _t.Optional[Outcome]:
        return max(self.outcomes) if self.outcomes else None


class FaultSpaceCoverage:
    """Coverage bookkeeping over one fault space."""

    def __init__(self, space: FaultSpace):
        self.space = space
        self._cells: _t.Dict[_t.Tuple[str, str, int], CellStats] = {}
        self.runs_recorded = 0

    # -- recording ----------------------------------------------------------

    def record(self, scenario: ErrorScenario, outcome: Outcome) -> None:
        """Attribute *outcome* to every cell the scenario touched."""
        self.runs_recorded += 1
        for injection in scenario.injections:
            key = (
                injection.target_path,
                injection.descriptor.name,
                self.space.time_bin_of(injection.time),
            )
            self._cells.setdefault(key, CellStats()).record(outcome)

    # -- metrics --------------------------------------------------------------

    @property
    def cells_hit(self) -> int:
        return len(self._cells)

    @property
    def closure(self) -> float:
        """Fraction of fault-space cells exercised at least once."""
        return self.cells_hit / self.space.bin_count

    def pair_closure(self) -> float:
        """Closure ignoring the time axis."""
        pairs_hit = {key[:2] for key in self._cells}
        return len(pairs_hit) / len(self.space.pairs)

    def outcome_histogram(self) -> _t.Counter:
        histogram: _t.Counter = collections.Counter()
        for stats in self._cells.values():
            histogram.update(stats.outcomes)
        return histogram

    def cells_with_outcome(self, outcome: Outcome) -> _t.List[_t.Tuple[str, str, int]]:
        return [
            key
            for key, stats in self._cells.items()
            if outcome in stats.outcomes
        ]

    def hits_of(self, target: str, descriptor_name: str, time_bin: int) -> int:
        stats = self._cells.get((target, descriptor_name, time_bin))
        return stats.hits if stats else 0

    # -- guidance ---------------------------------------------------------------

    def least_covered(
        self, count: int = 1
    ) -> _t.List[_t.Tuple[_t.Tuple[str, _t.Any], int]]:
        """The *count* least-hit (pair, time_bin) combinations.

        Returns [((target, descriptor), time_bin), ...] sorted by hit
        count ascending, unexercised cells first in deterministic pair
        order.
        """
        ranked: _t.List[_t.Tuple[int, int, _t.Tuple, int]] = []
        for pair_pos, (path, descriptor) in enumerate(self.space.pairs):
            for time_bin in range(self.space.time_bins):
                hits = self.hits_of(path, descriptor.name, time_bin)
                ranked.append(
                    (hits, pair_pos * self.space.time_bins + time_bin,
                     (path, descriptor), time_bin)
                )
        ranked.sort(key=lambda row: (row[0], row[1]))
        return [(row[2], row[3]) for row in ranked[:count]]

    def report(self) -> _t.Dict[str, _t.Any]:
        histogram = self.outcome_histogram()
        return {
            "runs": self.runs_recorded,
            "cells_hit": self.cells_hit,
            "total_cells": self.space.bin_count,
            "closure": self.closure,
            "pair_closure": self.pair_closure(),
            "outcomes": {o.name: histogram.get(o, 0) for o in Outcome},
        }
