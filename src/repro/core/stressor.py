"""The stressor: scenario execution inside the testbench.

Fig. 3's loop has the stressor "introduce different errors according to
its error scenarios via the injectors for each simulation".  The
:class:`Stressor` is a testbench component (usable standalone or inside
a UVM environment) that owns the platform's injection points, takes one
:class:`~repro.core.scenario.ErrorScenario` per run, and performs each
planned injection at its scheduled time.
"""

from __future__ import annotations

import random
import typing as _t

from ..kernel import DeadlineExceeded, Module
from .injector import AppliedInjection, apply_fault
from .scenario import ErrorScenario


class Stressor(Module):
    """Executes error scenarios against a platform.

    Parameters
    ----------
    platform_root:
        The module whose subtree is searched for injection points.
    rng:
        Source for completing under-specified descriptor parameters
        (which address, which bit...).  Pass a seeded instance for
        reproducible campaigns, or use *seed* as a shorthand — run
        specs carry exactly such a per-run seed across process
        boundaries.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        platform_root: Module,
        rng: _t.Optional[random.Random] = None,
        seed: _t.Optional[int] = None,
    ):
        super().__init__(name, parent=parent)
        if rng is not None and seed is not None:
            raise ValueError("pass either rng or seed, not both")
        self.platform_root = platform_root
        if rng is None:
            rng = random.Random(0 if seed is None else seed)
        self.rng = rng
        self.applied: _t.List[AppliedInjection] = []
        self.errors: _t.List[str] = []
        self.scenario: _t.Optional[ErrorScenario] = None

    def _resolve(self, scenario: ErrorScenario) -> list:
        """(planned, point) pairs for *scenario*, or KeyError."""
        points = self.platform_root.all_injection_points()
        resolved = []
        for planned in scenario.injections:
            point = points.get(planned.target_path)
            if point is None:
                raise KeyError(
                    f"scenario {scenario.name!r} targets unknown "
                    f"injection point {planned.target_path!r}"
                )
            resolved.append((planned, point))
        return resolved

    def arm(self, scenario: ErrorScenario) -> None:
        """Schedule every injection of *scenario*.

        Must be called before the simulation reaches the injection
        times; each injection gets its own kernel process so scenarios
        may overlap injections arbitrarily.
        """
        self.scenario = scenario
        resolved = self._resolve(scenario)
        anchor = (
            min(planned.time for planned, _point in resolved)
            if resolved else None
        )
        for index, (planned, point) in enumerate(resolved):
            self.process(
                self._inject_at(planned, point, anchor),
                name=f"inject{index}",
            )

    def arm_forked(self, scenario: ErrorScenario, seq_base: int) -> None:
        """Arm *scenario* on a kernel restored from a mid-run snapshot.

        Snapshot-fork execution (see ``execute_fork_group``) resumes
        the simulation one time unit before the scenario's earliest
        injection time — the fork point every injector's first wait
        anchors to.  On a fresh run those injector processes step once
        during delta cycle 0 and park on the wheel with the *last*
        sequence numbers issued in that cycle; here they are primed
        directly and pushed with fractional sequence numbers just
        above *seq_base* (the prefix kernel's counter at end of its
        cycle 0), which reproduces the fresh tie-break order exactly.
        """
        self.scenario = scenario
        resolved = self._resolve(scenario)
        anchor = min(planned.time for planned, _point in resolved)
        count = len(resolved)
        for index, (planned, point) in enumerate(resolved):
            process = self.process(
                self._inject_at(planned, point, anchor),
                name=f"inject{index}",
            )
            self.sim._arm_forked_process(
                process, seq_base + (index + 1) / (count + 1)
            )

    def _inject_at(self, planned, point, anchor=None):
        # The anchor wait is the pre-injection fork point: every
        # injector of a scenario first waits to the scenario's earliest
        # injection time, so a forked run (resuming at anchor-1) and a
        # fresh run produce identical wait sequences from the anchor
        # on.  For the earliest injection the anchor wait IS its
        # injection wait, so single-injection scenarios are unchanged.
        if anchor is not None:
            anchor_delay = anchor - self.sim.now
            if anchor_delay > 0:
                yield anchor_delay
        delay = planned.time - self.sim.now
        if delay > 0:
            yield delay
        try:
            record = apply_fault(
                planned.descriptor,
                planned.target_path,
                point,
                self.sim,
                self.rng,
            )
        except DeadlineExceeded:
            # Never degrade a wall-clock abort into an injection error:
            # the run must end, not limp on with one fault missing.
            raise
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            self.errors.append(
                f"{planned.target_path}/{planned.descriptor.name}: {exc}"
            )
            return
        self.applied.append(record)

    def report(self) -> _t.Dict[str, _t.Any]:
        return {
            "scenario": self.scenario.name if self.scenario else None,
            "applied": len(self.applied),
            "errors": list(self.errors),
        }
