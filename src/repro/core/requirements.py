"""Deriving coverage models from safety requirements (Sec. 3.4).

"It has to be investigated how coverage models can be systematically
derived from safety requirements and Mission Profiles. Then, the
strategy of error injection and stimuli generation should be geared
towards coverage closure."

This module implements one systematic derivation:

* a :class:`SafetyRequirement` names the protected function, the fault
  kinds it must tolerate, and the operating states it applies in;
* :func:`derive_coverage_goals` intersects the requirements with a
  platform's fault space, yielding :class:`CoverageGoal` rows — the
  fault-space cells that *must* be exercised (and with which minimum
  outcome expectations) before the requirement counts as verified;
* :class:`RequirementCoverage` tracks campaign results against the
  goals and reports per-requirement verification status, giving the
  "coverage closure" target that strategies steer toward.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import typing as _t

from ..faults import FaultKind
from .classification import Outcome
from .coverage import FaultSpaceCoverage
from .scenario import FaultSpace


@dataclasses.dataclass(frozen=True)
class SafetyRequirement:
    """One derived safety requirement.

    Parameters
    ----------
    target_glob:
        Injection-point paths this requirement protects (glob).
    fault_kinds:
        The fault classes that must be handled.
    max_acceptable:
        The worst outcome this requirement tolerates for a *single*
        covered fault (e.g. DETECTED_SAFE for an ASIL-D goal: single
        faults may be detected but must never propagate).
    min_injections:
        How many injections per matching cell the verification needs.
    """

    name: str
    statement: str
    target_glob: str
    fault_kinds: _t.FrozenSet[FaultKind]
    max_acceptable: Outcome = Outcome.DETECTED_SAFE
    min_injections: int = 1

    def __post_init__(self):
        if self.min_injections < 1:
            raise ValueError(f"{self.name}: min_injections must be >= 1")


@dataclasses.dataclass(frozen=True)
class CoverageGoal:
    """One cell a requirement obliges the campaign to exercise."""

    requirement: str
    target_path: str
    descriptor_name: str
    time_bin: int
    max_acceptable: Outcome
    min_injections: int


def derive_coverage_goals(
    requirements: _t.Sequence[SafetyRequirement],
    space: FaultSpace,
) -> _t.List[CoverageGoal]:
    """Intersect requirements with the platform fault space."""
    goals: _t.List[CoverageGoal] = []
    for requirement in requirements:
        matched = False
        for path, descriptor in space.pairs:
            if descriptor.kind not in requirement.fault_kinds:
                continue
            if not fnmatch.fnmatch(path, requirement.target_glob):
                continue
            matched = True
            for time_bin in range(space.time_bins):
                goals.append(
                    CoverageGoal(
                        requirement=requirement.name,
                        target_path=path,
                        descriptor_name=descriptor.name,
                        time_bin=time_bin,
                        max_acceptable=requirement.max_acceptable,
                        min_injections=requirement.min_injections,
                    )
                )
        if not matched:
            raise ValueError(
                f"requirement {requirement.name!r} matches nothing in the "
                "fault space — wrong glob, missing descriptor kind, or "
                "missing injection point"
            )
    return goals


class GoalStatus(_t.NamedTuple):
    goal: CoverageGoal
    injections: int
    worst_outcome: _t.Optional[Outcome]
    covered: bool   # exercised often enough
    satisfied: bool  # covered AND nothing worse than acceptable


class RequirementCoverage:
    """Tracks goals against a campaign's fault-space coverage."""

    def __init__(
        self,
        goals: _t.Sequence[CoverageGoal],
        coverage: FaultSpaceCoverage,
    ):
        if not goals:
            raise ValueError("no coverage goals")
        self.goals = list(goals)
        self.coverage = coverage

    def statuses(self) -> _t.List[GoalStatus]:
        statuses: _t.List[GoalStatus] = []
        for goal in self.goals:
            key = (goal.target_path, goal.descriptor_name, goal.time_bin)
            stats = self.coverage._cells.get(key)
            injections = stats.hits if stats else 0
            worst = stats.worst if stats else None
            covered = injections >= goal.min_injections
            satisfied = covered and (
                worst is None or worst <= goal.max_acceptable
            )
            statuses.append(
                GoalStatus(goal, injections, worst, covered, satisfied)
            )
        return statuses

    def requirement_report(self) -> _t.Dict[str, _t.Dict[str, _t.Any]]:
        """Per requirement: goal counts, closure, violations."""
        report: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
        for status in self.statuses():
            entry = report.setdefault(
                status.goal.requirement,
                {"goals": 0, "covered": 0, "satisfied": 0, "violations": []},
            )
            entry["goals"] += 1
            entry["covered"] += int(status.covered)
            entry["satisfied"] += int(status.satisfied)
            if status.covered and not status.satisfied:
                entry["violations"].append(
                    f"{status.goal.target_path}/"
                    f"{status.goal.descriptor_name}"
                    f"@bin{status.goal.time_bin}"
                    f" -> {status.worst_outcome.name}"
                )
        for entry in report.values():
            entry["closure"] = (
                entry["covered"] / entry["goals"] if entry["goals"] else 0.0
            )
            entry["verified"] = (
                entry["satisfied"] == entry["goals"] and entry["goals"] > 0
            )
        return report

    def open_goals(self) -> _t.List[CoverageGoal]:
        """Goals not yet exercised enough — the closure worklist a
        coverage-guided strategy should consume next."""
        return [
            status.goal for status in self.statuses() if not status.covered
        ]

    @property
    def closure(self) -> float:
        statuses = self.statuses()
        return sum(s.covered for s in statuses) / len(statuses)

    @property
    def all_verified(self) -> bool:
        return all(s.satisfied for s in self.statuses())
