"""Fault–error–failure classification.

Sec. 3.3 requires "methodologies for fault/error classification and
fault-error-failure analysis ... at the monitoring side of the
testbench".  The lattice used here is the standard dependability one,
ordered by severity:

``NO_EFFECT < MASKED < DETECTED_SAFE < TIMEOUT < TIMING_FAILURE < SDC
< HAZARDOUS``

* **NO_EFFECT** — the fault never became an error (overwritten, never
  read, logically masked).
* **MASKED** — a protection mechanism absorbed the error transparently
  (ECC correction, TMR out-voting); the system behaved nominally.
* **DETECTED_SAFE** — a mechanism detected the error and the system
  reached its safe state (trap, watchdog reset, CRC rejection).
* **TIMEOUT** — the run itself never produced a verdict: the injected
  fault hung or killed the simulation (livelock past its wall-clock
  deadline, crashed worker).  Inconclusive, not a classified failure —
  it sits below the failure outcomes so campaign stop conditions on
  failures ignore it.  Synthesized by the executor layer, never by
  classifier rules.
* **TIMING_FAILURE** — outputs correct in value but late: deadline
  misses, stale signals ("the right value at the wrong time").
* **SDC** — silent data corruption: wrong outputs, nothing noticed.
* **HAZARDOUS** — the safety goal itself was violated (e.g. spurious
  airbag deployment).

A :class:`RunObservation` is a flat dict of probe values collected from
the platform after a run; the :class:`Classifier` evaluates ordered
predicate rules against the faulty observation and the golden
(fault-free) reference, returning the *most severe* matching outcome.
"""

from __future__ import annotations

import enum
import typing as _t


class Outcome(enum.IntEnum):
    """Run classification, ordered by severity (higher = worse).

    .. warning:: Ordinals encode the *severity order*, not a stable
       wire format.  Inserting :data:`TIMEOUT` between
       :data:`DETECTED_SAFE` and :data:`TIMING_FAILURE` renumbered
       ``TIMING_FAILURE``/``SDC``/``HAZARDOUS`` from 3/4/5 to 4/5/6 —
       a breaking change for anything that persisted raw ``int``
       values.  Everything this repo persists (checkpoint journals,
       ``BENCH_*.json`` reports) stores outcome **names**; external
       consumers must do the same and rehydrate via ``Outcome[name]``,
       never via a stored integer.
    """

    NO_EFFECT = 0
    MASKED = 1
    DETECTED_SAFE = 2
    TIMEOUT = 3
    TIMING_FAILURE = 4
    SDC = 5
    HAZARDOUS = 6

    @property
    def is_failure(self) -> bool:
        """Failures in the dependability sense: service deviated."""
        return self in (Outcome.TIMING_FAILURE, Outcome.SDC, Outcome.HAZARDOUS)

    @property
    def is_dangerous(self) -> bool:
        """Undetected failures that can violate the safety goal."""
        return self in (Outcome.SDC, Outcome.HAZARDOUS)

    @property
    def is_inconclusive(self) -> bool:
        """The run produced no verdict (hung or crashed mid-flight)."""
        return self is Outcome.TIMEOUT


RunObservation = _t.Dict[str, _t.Any]

#: A rule: fn(faulty_observation, golden_observation) -> bool.
Predicate = _t.Callable[[RunObservation, RunObservation], bool]


class Classifier:
    """Ordered severity rules over (faulty, golden) observations."""

    def __init__(self):
        self._rules: _t.List[_t.Tuple[Outcome, Predicate, str]] = []

    def add_rule(
        self, outcome: Outcome, predicate: Predicate, label: str = ""
    ) -> "Classifier":
        self._rules.append((outcome, predicate, label or outcome.name))
        return self

    def classify(
        self, faulty: RunObservation, golden: RunObservation
    ) -> _t.Tuple[Outcome, _t.List[str]]:
        """Most severe matching outcome plus all matched rule labels."""
        matched: _t.List[_t.Tuple[Outcome, str]] = []
        for outcome, predicate, label in self._rules:
            if predicate(faulty, golden):
                matched.append((outcome, label))
        if not matched:
            return Outcome.NO_EFFECT, []
        worst = max(outcome for outcome, _ in matched)
        return worst, [label for _, label in matched]


def build_standard_classifier(
    hazard_keys: _t.Sequence[str] = (),
    value_keys: _t.Sequence[str] = (),
    timing_keys: _t.Sequence[str] = (),
    detection_keys: _t.Sequence[str] = (),
    masking_keys: _t.Sequence[str] = (),
) -> Classifier:
    """A classifier from observation-key conventions.

    * *hazard_keys* — truthy in the faulty run => HAZARDOUS.
    * *value_keys* — differ from golden => SDC.
    * *timing_keys* — counters that exceed golden => TIMING_FAILURE.
    * *detection_keys* — counters that exceed golden => DETECTED_SAFE.
    * *masking_keys* — counters that exceed golden => MASKED.

    The severity lattice resolves overlaps: a run that was detected
    *and* produced a hazard is HAZARDOUS.
    """
    classifier = Classifier()
    for key in hazard_keys:
        classifier.add_rule(
            Outcome.HAZARDOUS,
            lambda f, g, k=key: bool(f.get(k)),
            f"hazard:{key}",
        )
    for key in value_keys:
        classifier.add_rule(
            Outcome.SDC,
            lambda f, g, k=key: f.get(k) != g.get(k),
            f"value:{key}",
        )
    for key in timing_keys:
        classifier.add_rule(
            Outcome.TIMING_FAILURE,
            lambda f, g, k=key: _exceeds(f, g, k),
            f"timing:{key}",
        )
    for key in detection_keys:
        classifier.add_rule(
            Outcome.DETECTED_SAFE,
            lambda f, g, k=key: _exceeds(f, g, k),
            f"detected:{key}",
        )
    for key in masking_keys:
        classifier.add_rule(
            Outcome.MASKED,
            lambda f, g, k=key: _exceeds(f, g, k),
            f"masked:{key}",
        )
    return classifier


def _exceeds(faulty: RunObservation, golden: RunObservation, key: str) -> bool:
    return (faulty.get(key) or 0) > (golden.get(key) or 0)
