"""Campaign post-processing: fault-tree synthesis and FMEDA bridging.

Two of the paper's open methodology questions are answered here:

* "methods for creating FTs from the simulation results ... have to be
  developed" (Sec. 2.1, following [8]) —
  :func:`synthesize_fault_tree` turns the hazardous runs of a campaign
  into minimal cut sets over fault classes and a quantified fault tree.
* Measured diagnostic coverage feeding FMEDA —
  :func:`fmeda_from_campaign` builds an ISO 26262 worksheet whose DC
  values come from injection results instead of expert judgment.
"""

from __future__ import annotations

import typing as _t

from ..faults import FaultDescriptor
from ..mission import probability_of_at_least_one
from ..safety import AndGate, BasicEvent, FailureMode, FaultTree, Fmeda, OrGate
from .campaign import CampaignResult
from .classification import Outcome


def hazard_cut_sets(
    result: CampaignResult,
    at_least: Outcome = Outcome.HAZARDOUS,
) -> _t.List[_t.FrozenSet[str]]:
    """Minimal sets of basic events observed to cause severe outcomes.

    Basic events are ``"target_path:descriptor_name"`` — the same fault
    class on two different components is two different events (a voter
    masks one stuck sensor but not two).  Each qualifying run
    contributes its injected event set; supersets of another observed
    set are dropped (if {A} alone already caused a hazard, {A,B} adds
    no structure).

    Traced campaigns contribute their *observed* propagation evidence:
    a complete run digest (see :mod:`repro.observe`) records which
    injections actually landed, so the cut set uses those applied
    fault sites — a planned injection the stressor never applied (an
    injection point outside the run's reach, a failed resolution)
    cannot then inflate a cut set.  Untraced or partial records fall
    back to the planned scenario, as before.
    """
    raw: _t.Set[_t.FrozenSet[str]] = set()
    for record in result.records:
        if record.outcome >= at_least:
            digest = record.digest
            if (
                digest is not None
                and not digest.partial
                and digest.fault_sites
            ):
                raw.add(frozenset(digest.fault_sites))
            else:
                raw.add(
                    frozenset(
                        f"{inj.target_path}:{inj.descriptor.name}"
                        for inj in record.scenario.injections
                    )
                )
    minimal: _t.List[_t.FrozenSet[str]] = []
    for candidate in sorted(raw, key=lambda s: (len(s), sorted(s))):
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


def synthesize_fault_tree(
    result: CampaignResult,
    descriptors: _t.Mapping[str, FaultDescriptor],
    exposure_hours: float,
    top_name: str = "hazard",
    at_least: Outcome = Outcome.HAZARDOUS,
) -> _t.Optional[FaultTree]:
    """Build a quantified fault tree from campaign evidence.

    Basic-event probabilities are per-mission occurrence probabilities
    of each fault class (Poisson over *exposure_hours* at the
    descriptor's derived rate).  Returns ``None`` when no qualifying
    run exists — no evidence, no tree.
    """
    cut_sets = hazard_cut_sets(result, at_least)
    if not cut_sets:
        return None
    events: _t.Dict[str, BasicEvent] = {}

    def event_for(name: str) -> BasicEvent:
        if name not in events:
            # Events are "target_path:descriptor_name"; the rate comes
            # from the descriptor.
            descriptor_name = name.rsplit(":", 1)[-1]
            descriptor = descriptors[descriptor_name]
            probability = probability_of_at_least_one(
                descriptor.rate_per_hour, exposure_hours
            )
            events[name] = BasicEvent(name, probability)
        return events[name]

    branches: _t.List = []
    for cut_set in cut_sets:
        members = [event_for(name) for name in sorted(cut_set)]
        if len(members) == 1:
            branches.append(members[0])
        else:
            branches.append(
                AndGate("and_" + "_".join(sorted(cut_set)), members)
            )
    top = branches[0] if len(branches) == 1 else OrGate(top_name, branches)
    return FaultTree(top)


def fmeda_from_campaign(
    result: CampaignResult,
    descriptors: _t.Mapping[str, FaultDescriptor],
    name: str = "campaign_fmeda",
    safe_fraction: float = 0.0,
    latent_coverage: float = 0.9,
) -> Fmeda:
    """An FMEDA whose diagnostic coverage is *measured* by injection.

    Every descriptor that caused at least one effect becomes a failure
    mode with its derived rate; DC is the campaign-measured fraction of
    effective injections that were masked or detected.
    """
    fmeda = Fmeda(name)
    measured = result.diagnostic_coverage_by_descriptor()
    for descriptor_name, coverage in sorted(measured.items()):
        descriptor = descriptors[descriptor_name]
        fmeda.add(
            FailureMode(
                component="platform",
                mode=descriptor_name,
                rate_per_hour=descriptor.rate_per_hour,
                safe_fraction=safe_fraction,
                diagnostic_coverage=coverage,
                latent_coverage=latent_coverage,
            )
        )
    return fmeda


def summarize(result: CampaignResult) -> str:
    """A human-readable one-screen campaign summary."""
    lines = [f"campaign: {result.runs} runs"]
    histogram = result.outcome_histogram()
    for outcome in Outcome:
        count = histogram[outcome]
        if result.runs:
            lines.append(
                f"  {outcome.name:<15} {count:>6}  "
                f"({count / result.runs:7.2%})"
            )
    for outcome in (Outcome.HAZARDOUS, Outcome.SDC):
        first = result.first_run_with(outcome)
        if first is not None:
            lines.append(f"  first {outcome.name} at run {first}")
    return "\n".join(lines)
