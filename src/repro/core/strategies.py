"""Injection strategies: how scenarios are chosen run after run.

Sec. 3.4's central argument: "Standard Monte-Carlo techniques may fail
to identify the critical error effects ... a systematic approach is
required that stresses the system at its possible weak spots."  Three
strategies implement the spectrum the benchmark E5 compares:

* :class:`RandomStrategy` — plain Monte Carlo over the fault space
  (optionally rate-weighted toward the realistic fault mix).
* :class:`CoverageGuidedStrategy` — aims at structural closure: always
  injects into the least-covered fault-space cells.
* :class:`WeakSpotStrategy` — adaptive: scores every cell by the
  severity of the outcomes it has produced, preferentially re-samples
  and *combines* promising cells into multi-fault scenarios — the
  systematic search for scenarios that defeat layered protection.

All strategies draw operating states from an optional
:class:`~repro.mission.StressorSpec` (with importance weights recorded
on the scenario) and are fed back each run via :meth:`feedback`.
"""

from __future__ import annotations

import collections
import random
import typing as _t

from ..mission import StressorSpec
from .classification import Outcome
from .coverage import FaultSpaceCoverage
from .scenario import ErrorScenario, FaultSpace, PlannedInjection


class Strategy:
    """Base class: produce scenarios, learn from outcomes."""

    def __init__(
        self,
        space: FaultSpace,
        faults_per_scenario: int = 1,
        spec: _t.Optional[StressorSpec] = None,
    ):
        if faults_per_scenario < 1:
            raise ValueError("need at least one fault per scenario")
        self.space = space
        self.faults_per_scenario = faults_per_scenario
        self.spec = spec
        self.scenario_count = 0

    # -- operating-state sampling ---------------------------------------

    def _draw_state(self, rng: random.Random):
        """Returns (state, importance_weight) or (None, 1.0)."""
        if self.spec is None or not self.spec.state_weights:
            return None, 1.0
        weights = [w.weight for w in self.spec.state_weights]
        chosen = rng.choices(self.spec.state_weights, weights=weights, k=1)[0]
        true_probability = chosen.state.fraction
        sampled_probability = chosen.weight
        if sampled_probability <= 0:
            return chosen.state, 1.0
        return chosen.state, true_probability / sampled_probability

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        raise NotImplementedError

    def feedback(self, scenario: ErrorScenario, outcome: Outcome) -> None:
        """Called after each run; default: no learning."""

    # -- batched planner API --------------------------------------------

    def next_batch(
        self, rng: random.Random, count: int
    ) -> _t.List[ErrorScenario]:
        """Produce *count* scenarios for one executor batch.

        The default wraps the per-run API; batch-aware strategies
        override it to diversify within a batch (they receive no
        feedback until the whole batch has executed).
        """
        return [self.next_scenario(rng) for _ in range(count)]

    def feedback_batch(
        self,
        results: _t.Sequence[_t.Tuple[ErrorScenario, Outcome]],
    ) -> None:
        """Learn from one completed batch, in run order.

        The default replays the per-run :meth:`feedback` hook, so
        adaptive strategies written against the sequential loop keep
        working unchanged under batched/parallel execution — their
        learning granularity just coarsens to the batch size.
        """
        for scenario, outcome in results:
            self.feedback(scenario, outcome)


class RandomStrategy(Strategy):
    """Monte Carlo sampling of the fault space."""

    def __init__(
        self,
        space: FaultSpace,
        faults_per_scenario: int = 1,
        spec: _t.Optional[StressorSpec] = None,
        rate_weighted: bool = False,
    ):
        super().__init__(space, faults_per_scenario, spec)
        self.rate_weighted = rate_weighted

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        self.scenario_count += 1
        state, weight = self._draw_state(rng)
        injections = [
            self.space.sample_injection(rng, rate_weighted=self.rate_weighted)
            for _ in range(self.faults_per_scenario)
        ]
        return ErrorScenario(
            name=f"random-{self.scenario_count}",
            injections=injections,
            operating_state=state,
            sampling_weight=weight,
        )


class CoverageGuidedStrategy(Strategy):
    """Steers injections toward unexercised fault-space cells."""

    def __init__(
        self,
        space: FaultSpace,
        coverage: FaultSpaceCoverage,
        faults_per_scenario: int = 1,
        spec: _t.Optional[StressorSpec] = None,
    ):
        super().__init__(space, faults_per_scenario, spec)
        self.coverage = coverage

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        self.scenario_count += 1
        state, weight = self._draw_state(rng)
        targets = self.coverage.least_covered(self.faults_per_scenario)
        injections = [
            self.space.sample_injection(rng, pair=pair, time_bin=time_bin)
            for pair, time_bin in targets
        ]
        return ErrorScenario(
            name=f"covguided-{self.scenario_count}",
            injections=injections,
            operating_state=state,
            sampling_weight=weight,
        )

    def next_batch(
        self, rng: random.Random, count: int
    ) -> _t.List[ErrorScenario]:
        """Batch-aware planning: spread the batch over the coverage
        frontier.

        Coverage only updates between batches, so the default (call
        :meth:`next_scenario` *count* times) would aim every scenario
        of a batch at the same least-covered cells.  Instead, rank
        enough cells for the whole batch once and stripe them across
        the scenarios; cells wrap around when the frontier is smaller
        than the batch demand.
        """
        if count == 1:
            return [self.next_scenario(rng)]
        per_scenario = self.faults_per_scenario
        targets = self.coverage.least_covered(count * per_scenario)
        scenarios = []
        for offset in range(count):
            self.scenario_count += 1
            state, weight = self._draw_state(rng)
            cells = [
                targets[(offset * per_scenario + i) % len(targets)]
                for i in range(per_scenario)
            ]
            injections = [
                self.space.sample_injection(rng, pair=pair, time_bin=time_bin)
                for pair, time_bin in cells
            ]
            scenarios.append(
                ErrorScenario(
                    name=f"covguided-{self.scenario_count}",
                    injections=injections,
                    operating_state=state,
                    sampling_weight=weight,
                )
            )
        return scenarios


class WeakSpotStrategy(Strategy):
    """Systematic weak-spot identification, then multi-fault escalation.

    Phase 1 — **probing**: every fault-space cell is exercised once
    with a *single*-fault scenario, so the outcome is unambiguously
    attributable to that cell (multi-fault runs would co-credit
    innocent cells).  Outcomes feed a per-cell severity score.

    Phase 2 — **combination**: scenarios combine ``faults_per_scenario``
    *distinct* cells, the first chosen as the current top scorer and
    the rest sampled score-weighted — probing whether faults that the
    protection handles individually defeat it jointly (the
    layered-redundancy bypass of Sec. 3.4).  An ``exploration``
    fraction of runs keeps issuing random probes so late-manifesting
    weak spots still surface.
    """

    #: Score increment per observed outcome.
    SCORE_BY_OUTCOME = {
        Outcome.NO_EFFECT: 0.0,
        Outcome.MASKED: 1.0,
        Outcome.DETECTED_SAFE: 2.0,
        # Inconclusive runs (hung/crashed) teach nothing about the cell.
        Outcome.TIMEOUT: 0.0,
        Outcome.TIMING_FAILURE: 4.0,
        Outcome.SDC: 6.0,
        Outcome.HAZARDOUS: 8.0,
    }

    def __init__(
        self,
        space: FaultSpace,
        faults_per_scenario: int = 2,
        spec: _t.Optional[StressorSpec] = None,
        exploration: float = 0.2,
        static_hints: _t.Optional[_t.Mapping[_t.Tuple[str, str], float]] = None,
    ):
        super().__init__(space, faults_per_scenario, spec)
        if not 0 <= exploration <= 1:
            raise ValueError("exploration out of [0,1]")
        self.exploration = exploration
        self._scores: _t.Dict[_t.Tuple[str, str, int], float] = (
            collections.defaultdict(float)
        )
        # Phase-1 probe queue: every cell once, in deterministic order.
        self._probe_queue: _t.List[_t.Tuple[_t.Tuple, int]] = [
            (pair, time_bin)
            for pair in space.pairs
            for time_bin in range(space.time_bins)
        ]
        # Static hints: architectural analysis can pre-score cells
        # (e.g. every pair touching an unprotected point) and skip
        # their probes.
        if static_hints:
            for (path, descriptor_name), score in static_hints.items():
                for time_bin in range(space.time_bins):
                    self._scores[(path, descriptor_name, time_bin)] = score
            self._probe_queue = [
                (pair, time_bin)
                for pair, time_bin in self._probe_queue
                if (pair[0], pair[1].name) not in static_hints
            ]

    def _cell_key(self, pair, time_bin):
        path, descriptor = pair
        return (path, descriptor.name, time_bin)

    def _pair_scores(self) -> _t.Dict[_t.Tuple[str, str], float]:
        """Per-pair score: the best bin of that (target, descriptor)."""
        scores: _t.Dict[_t.Tuple[str, str], float] = {}
        for pair in self.space.pairs:
            key = (pair[0], pair[1].name)
            scores[key] = max(
                self._scores[self._cell_key(pair, time_bin)]
                for time_bin in range(self.space.time_bins)
            )
        return scores

    def _best_bin(self, pair, rng: random.Random) -> int:
        bins = list(range(self.space.time_bins))
        best = max(
            self._scores[self._cell_key(pair, b)] for b in bins
        )
        candidates = [
            b for b in bins
            if self._scores[self._cell_key(pair, b)] == best
        ]
        return rng.choice(candidates)

    def _probe(self, rng: random.Random, state, weight) -> ErrorScenario:
        if self._probe_queue:
            pair, time_bin = self._probe_queue.pop(0)
            injection = self.space.sample_injection(
                rng, pair=pair, time_bin=time_bin
            )
        else:
            injection = self.space.sample_injection(rng)
        return ErrorScenario(
            name=f"weakspot-probe-{self.scenario_count}",
            injections=[injection],
            operating_state=state,
            sampling_weight=weight,
        )

    def _combine(self, rng: random.Random, state, weight) -> ErrorScenario:
        pair_scores = self._pair_scores()
        ranked = sorted(pair_scores.items(), key=lambda kv: -kv[1])
        top_key = ranked[0][0]
        by_key = {(p[0], p[1].name): p for p in self.space.pairs}
        chosen = [by_key[top_key]]
        remaining = [key for key, _ in ranked[1:]]
        weights = [pair_scores[key] + 1e-6 for key in remaining]
        while remaining and len(chosen) < self.faults_per_scenario:
            picked = rng.choices(
                range(len(remaining)), weights=weights, k=1
            )[0]
            chosen.append(by_key[remaining.pop(picked)])
            weights.pop(picked)
        injections = [
            self.space.sample_injection(
                rng, pair=pair, time_bin=self._best_bin(pair, rng)
            )
            for pair in chosen
        ]
        return ErrorScenario(
            name=f"weakspot-combine-{self.scenario_count}",
            injections=injections,
            operating_state=state,
            sampling_weight=weight,
        )

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        self.scenario_count += 1
        state, weight = self._draw_state(rng)
        if self._probe_queue or rng.random() < self.exploration:
            return self._probe(rng, state, weight)
        return self._combine(rng, state, weight)

    def feedback(self, scenario: ErrorScenario, outcome: Outcome) -> None:
        # Only single-fault scenarios are attributable: crediting every
        # member of a multi-fault scenario would reinforce innocent
        # cells that merely co-occurred with an effective one.
        if len(scenario.injections) != 1:
            return
        increment = self.SCORE_BY_OUTCOME[outcome]
        injection = scenario.injections[0]
        key = (
            injection.target_path,
            injection.descriptor.name,
            self.space.time_bin_of(injection.time),
        )
        self._scores[key] += increment

    def top_cells(self, count: int = 5) -> _t.List[_t.Tuple[_t.Tuple[str, str, int], float]]:
        """The current highest-scoring cells — the found weak spots."""
        ranked = sorted(self._scores.items(), key=lambda kv: -kv[1])
        return ranked[:count]


class RequirementGuidedStrategy(Strategy):
    """Closes the coverage goals derived from safety requirements.

    This is the paper's full sentence made executable: "coverage models
    ... systematically derived from safety requirements and Mission
    Profiles.  Then, the strategy of error injection ... should be
    geared towards coverage closure" (Sec. 3.4).  Each scenario pins
    the next open :class:`~repro.core.requirements.CoverageGoal`
    (single-fault, so the outcome verdict attributes to the goal); once
    every goal is closed the strategy falls back to exploratory
    sampling.
    """

    def __init__(
        self,
        space: FaultSpace,
        tracker,
        spec: _t.Optional[StressorSpec] = None,
    ):
        super().__init__(space, faults_per_scenario=1, spec=spec)
        self.tracker = tracker
        self._by_key = {
            (pair[0], pair[1].name): pair for pair in space.pairs
        }

    @property
    def closed(self) -> bool:
        return not self.tracker.open_goals()

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        self.scenario_count += 1
        state, weight = self._draw_state(rng)
        open_goals = self.tracker.open_goals()
        if open_goals:
            goal = open_goals[0]
            pair = self._by_key[(goal.target_path, goal.descriptor_name)]
            injection = self.space.sample_injection(
                rng, pair=pair, time_bin=goal.time_bin
            )
            name = f"reqguided-{self.scenario_count}-{goal.requirement}"
        else:
            injection = self.space.sample_injection(rng)
            name = f"reqguided-explore-{self.scenario_count}"
        return ErrorScenario(
            name=name,
            injections=[injection],
            operating_state=state,
            sampling_weight=weight,
        )
