"""Error scenarios and the fault space.

An :class:`ErrorScenario` is one run's worth of planned injections —
which descriptors, on which targets, at which times, under which
operating state.  The :class:`FaultSpace` is the universe those
scenarios are drawn from: the cartesian structure (injection points ×
applicable descriptors × time bins) that the coverage model measures
and the injection strategies sample.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from ..faults import FaultDescriptor
from ..kernel import Module
from ..mission import OperatingState


@dataclasses.dataclass(frozen=True)
class PlannedInjection:
    """One (time, target, descriptor) triple of a scenario."""

    time: int
    target_path: str
    descriptor: FaultDescriptor

    def __post_init__(self):
        if self.time < 0:
            raise ValueError("injection time must be non-negative")


@dataclasses.dataclass
class ErrorScenario:
    """A complete error scenario for one simulation run.

    ``sampling_weight`` records the importance-sampling correction
    p_true / p_sampled when a strategy over-samples this scenario class
    (special operating states, suspected weak spots); the rate
    estimators divide it back out.
    """

    name: str
    injections: _t.Sequence[PlannedInjection]
    operating_state: _t.Optional[OperatingState] = None
    sampling_weight: float = 1.0

    def __post_init__(self):
        # Scenarios are frozen into picklable RunSpecs and shipped to
        # executor workers; an immutable injection tuple guarantees the
        # planner's copy cannot drift from what a worker executed.
        self.injections = tuple(self.injections)

    @property
    def fault_count(self) -> int:
        return len(self.injections)

    def bins(self) -> _t.List[_t.Tuple[str, str]]:
        """The (target, descriptor) coverage bins this scenario hits."""
        return [
            (inj.target_path, inj.descriptor.name)
            for inj in self.injections
        ]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ErrorScenario({self.name!r}, {self.fault_count} faults, "
            f"state={self.operating_state.name if self.operating_state else None})"
        )


class FaultSpace:
    """The sampleable universe of single injections.

    Built from a platform's injection points and a descriptor list:
    every (point, descriptor) pair where the descriptor is applicable
    to the point's kind, crossed with ``time_bins`` equal slices of the
    injection window ``[window_start, window_end)``.
    """

    def __init__(
        self,
        root: Module,
        descriptors: _t.Sequence[FaultDescriptor],
        window_start: int,
        window_end: int,
        time_bins: int = 4,
        exclude_paths: _t.Iterable[str] = (),
    ):
        if window_end <= window_start:
            raise ValueError("empty injection window")
        if time_bins < 1:
            raise ValueError("need at least one time bin")
        self.window_start = window_start
        self.window_end = window_end
        self.time_bins = time_bins
        excluded = set(exclude_paths)
        self.points: _t.Dict[str, _t.Any] = {
            path: point
            for path, point in sorted(root.all_injection_points().items())
            if path not in excluded
        }
        if not self.points:
            raise ValueError("platform exposes no injection points")
        self.descriptors = list(descriptors)
        #: All applicable (target_path, descriptor) pairs.
        self.pairs: _t.List[_t.Tuple[str, FaultDescriptor]] = [
            (path, descriptor)
            for path, point in self.points.items()
            for descriptor in self.descriptors
            if descriptor.applicable_to(point.kind)
        ]
        if not self.pairs:
            raise ValueError(
                "no descriptor applies to any platform injection point"
            )

    # -- geometry ----------------------------------------------------------

    @property
    def bin_count(self) -> int:
        """Total (pair × time-bin) coverage bins."""
        return len(self.pairs) * self.time_bins

    def time_bin_of(self, time: int) -> int:
        span = self.window_end - self.window_start
        index = (time - self.window_start) * self.time_bins // span
        return min(max(index, 0), self.time_bins - 1)

    def time_in_bin(self, bin_index: int, rng: random.Random) -> int:
        span = self.window_end - self.window_start
        low = self.window_start + bin_index * span // self.time_bins
        high = self.window_start + (bin_index + 1) * span // self.time_bins
        return rng.randrange(low, max(high, low + 1))

    # -- sampling ------------------------------------------------------------

    def sample_injection(
        self,
        rng: random.Random,
        rate_weighted: bool = False,
        pair: _t.Optional[_t.Tuple[str, FaultDescriptor]] = None,
        time_bin: _t.Optional[int] = None,
    ) -> PlannedInjection:
        """Draw one planned injection.

        ``rate_weighted`` biases descriptor choice by derived rates
        (realistic mix); otherwise uniform over pairs (exploratory
        mix).  A specific *pair* and/or *time_bin* pins those axes —
        the hook coverage-guided strategies use.
        """
        if pair is None:
            if rate_weighted:
                weights = [d.rate_per_hour for _, d in self.pairs]
                if sum(weights) <= 0:
                    pair = rng.choice(self.pairs)
                else:
                    pair = rng.choices(self.pairs, weights=weights, k=1)[0]
            else:
                pair = rng.choice(self.pairs)
        if time_bin is None:
            time_bin = rng.randrange(self.time_bins)
        time = self.time_in_bin(time_bin, rng)
        return PlannedInjection(time, pair[0], pair[1])

    def pair_index(self) -> _t.Dict[_t.Tuple[str, str], int]:
        """(target, descriptor-name) -> position, for coverage arrays."""
        return {
            (path, descriptor.name): i
            for i, (path, descriptor) in enumerate(self.pairs)
        }
