"""The error-effect simulation framework (S14) — the paper's
envisioned methodology: mission-profile-driven stressors, injectors,
closed-loop stress-test campaigns, classification, coverage, and
weak-spot-guided search (Secs. 3.1-3.4, Figs. 2-3).
"""

from .campaign import (
    Campaign,
    CampaignResult,
    ObserveFn,
    PlatformFactory,
    RunRecord,
)
from .checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    CheckpointKeyMismatch,
    campaign_key,
)
from .classification import (
    Classifier,
    Outcome,
    RunObservation,
    build_standard_classifier,
)
from .coverage import FaultSpaceCoverage
from .executors import (
    Executor,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    default_worker_count,
    make_executor,
)
from .runspec import (
    OUTCOME_SCHEMA_VERSION,
    RunOutcome,
    RunSpec,
    execute_runspec,
    execute_runspec_from_registry,
    execute_runspec_tolerant,
    failure_outcome,
)
from .crosslayer import (
    derived_descriptor,
    error_pattern_outcomes,
    measure_word_error_profile,
    naive_descriptor,
    normalize_counts,
    pattern_histogram,
    total_variation_distance,
)
from .injector import AppliedInjection, InjectionError, apply_fault
from .report import (
    fmeda_from_campaign,
    hazard_cut_sets,
    summarize,
    synthesize_fault_tree,
)
from .requirements import (
    CoverageGoal,
    GoalStatus,
    RequirementCoverage,
    SafetyRequirement,
    derive_coverage_goals,
)
from .scenario import ErrorScenario, FaultSpace, PlannedInjection
from .strategies import (
    CoverageGuidedStrategy,
    RandomStrategy,
    RequirementGuidedStrategy,
    Strategy,
    WeakSpotStrategy,
)
from .stressor import Stressor
from ..observe import (
    CampaignTelemetry,
    JsonlTelemetry,
    PropagationGraph,
    TraceConfig,
    TraceDigest,
)
from .uvm_integration import (
    FaultAnalysisEnv,
    FaultClassifierComponent,
    UvmStressor,
)

__all__ = [
    "CoverageGoal",
    "GoalStatus",
    "RequirementCoverage",
    "SafetyRequirement",
    "derive_coverage_goals",
    "FaultAnalysisEnv",
    "FaultClassifierComponent",
    "UvmStressor",
    "Campaign",
    "CampaignResult",
    "ObserveFn",
    "PlatformFactory",
    "RunRecord",
    "Classifier",
    "Outcome",
    "RunObservation",
    "build_standard_classifier",
    "FaultSpaceCoverage",
    "Executor",
    "ParallelExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "default_worker_count",
    "make_executor",
    "CampaignCheckpoint",
    "CheckpointError",
    "CheckpointKeyMismatch",
    "campaign_key",
    "OUTCOME_SCHEMA_VERSION",
    "RunOutcome",
    "RunSpec",
    "execute_runspec",
    "execute_runspec_from_registry",
    "execute_runspec_tolerant",
    "failure_outcome",
    "derived_descriptor",
    "error_pattern_outcomes",
    "measure_word_error_profile",
    "naive_descriptor",
    "normalize_counts",
    "pattern_histogram",
    "total_variation_distance",
    "AppliedInjection",
    "InjectionError",
    "apply_fault",
    "fmeda_from_campaign",
    "hazard_cut_sets",
    "summarize",
    "synthesize_fault_tree",
    "ErrorScenario",
    "FaultSpace",
    "PlannedInjection",
    "CoverageGuidedStrategy",
    "RandomStrategy",
    "RequirementGuidedStrategy",
    "Strategy",
    "WeakSpotStrategy",
    "Stressor",
    "CampaignTelemetry",
    "JsonlTelemetry",
    "PropagationGraph",
    "TraceConfig",
    "TraceDigest",
]
