"""The closed-loop stress-test campaign (Fig. 3).

One :class:`Campaign` object owns the loop the paper draws: build a
fresh virtual prototype, let the strategy pick an error scenario, arm
the stressor, simulate, observe, classify against the golden run,
update coverage, feed the outcome back to the strategy — and repeat.
"Repeated stress tests enable a quantitative evaluation, e.g. to
determine the safety integrity level" (Sec. 3.4): the campaign result
carries exactly those quantities (failure probabilities with exact
confidence intervals, measured diagnostic coverage per fault class).

Since the planner/executor split, the loop is three layers:

* the **planner** (:meth:`Campaign.plan_batch`) asks the strategy for
  a batch of scenarios and freezes each into a picklable
  :class:`~repro.core.runspec.RunSpec` carrying its run seed, the run
  duration, the platform registry key, and the golden observation;
* an **executor** (:mod:`repro.core.executors`) runs the batch —
  serially in-process, or fanned out over a process pool;
* the **aggregation** layer below folds the returned
  :class:`~repro.core.runspec.RunOutcome`s into records, coverage,
  and batched strategy feedback, strictly in run-index order, so the
  result is independent of worker scheduling.
"""

from __future__ import annotations

import os
import random
import time
import typing as _t

from ..kernel import Module, Simulator
from ..observe.config import TraceConfig, resolve_trace
from ..observe.digest import TraceDigest
from ..observe.graph import PropagationGraph
from ..observe.telemetry import CampaignTelemetry
from ..stats import WeightedRateEstimator, clopper_pearson
from .checkpoint import CampaignCheckpoint, campaign_key
from .classification import Classifier, Outcome, RunObservation
from .coverage import FaultSpaceCoverage
from .executors import Executor, RetryPolicy, make_executor
from .runspec import RunOutcome, RunSpec
from .scenario import ErrorScenario, FaultSpace
from .strategies import Strategy
from .stressor import Stressor

#: Builds a fresh platform into the given simulator; returns its root.
PlatformFactory = _t.Callable[[Simulator], Module]
#: Collects probe values after a run.
ObserveFn = _t.Callable[[Module], RunObservation]

#: Kernel counters accumulated across a campaign (see
#: ``Simulator.stats`` plus the executor-measured wall clock).
KERNEL_COUNTER_KEYS = ("events", "process_steps", "delta_cycles", "wall_s")


def _pruned_outcome(spec: RunSpec) -> RunOutcome:
    """The explicit skip record for a statically-dead injection.

    ``NO_EFFECT`` is not a guess: the pruner only fires on scenarios
    whose every injection targets a site with no structural path to
    any detector or observed output, so the run's observation provably
    equals the golden reference.  The ``pruned:unreachable`` tag keeps
    the skip auditable in every record stream (never a silent drop).
    """
    return RunOutcome(
        index=spec.index,
        outcome=Outcome.NO_EFFECT,
        matched_rules=("pruned:unreachable",),
        observation=spec.golden,
        injections_applied=0,
        kernel_stats={},
    )


class RunRecord(_t.NamedTuple):
    """Everything retained about one campaign run.

    ``failure`` is ``None`` for a conclusive run, else the degradation
    kind (``"timeout"`` / ``"crash"`` / ``"error"``, see
    :class:`~repro.core.runspec.RunOutcome`); ``attempts`` counts
    executions including crash-forced redispatches.  ``digest`` is the
    per-run propagation trace when the campaign ran with ``trace=``
    (see :mod:`repro.observe`), ``None`` otherwise.
    """

    index: int
    scenario: ErrorScenario
    outcome: Outcome
    matched_rules: _t.List[str]
    observation: RunObservation
    injections_applied: int
    kernel_stats: _t.Optional[_t.Dict[str, _t.Any]] = None
    attempts: int = 1
    failure: _t.Optional[str] = None
    digest: _t.Optional[TraceDigest] = None


class CampaignResult:
    """Aggregated campaign outcome."""

    def __init__(self, duration: int):
        self.duration = duration
        self.records: _t.List[RunRecord] = []
        self._estimators: _t.Dict[Outcome, WeightedRateEstimator] = {}
        # Incremental per-outcome counters: count()/outcome_histogram()
        # used to rescan every record on every call, which made result
        # queries O(runs * |Outcome|) inside hot campaign loops.
        self._counts: _t.Dict[Outcome, int] = {o: 0 for o in Outcome}
        self.kernel_totals: _t.Dict[str, float] = dict.fromkeys(
            KERNEL_COUNTER_KEYS, 0
        )
        # Fault-tolerance bookkeeping (see report()["robustness"]):
        # every planned run lands in exactly one of completed /
        # timed_out / terminally_failed.
        self.timed_out = 0
        self.terminally_failed = 0
        #: Extra executions beyond each run's first attempt.
        self.retried = 0
        #: Runs restored from a checkpoint journal instead of executed.
        self.resumed = 0
        #: Runs skipped by static reachability pruning (explicit
        #: ``pruned:unreachable`` records, never executed).
        self.pruned = 0

    def append(self, record: RunRecord) -> None:
        self.records.append(record)
        self._counts[record.outcome] += 1
        if record.failure == "timeout":
            self.timed_out += 1
        elif record.failure is not None:
            self.terminally_failed += 1
        self.retried += max(0, record.attempts - 1)
        for outcome in Outcome:
            estimator = self._estimators.setdefault(
                outcome, WeightedRateEstimator()
            )
            estimator.record(
                record.scenario.sampling_weight or 1.0,
                record.outcome is outcome,
            )
        if record.kernel_stats:
            for key in KERNEL_COUNTER_KEYS:
                self.kernel_totals[key] += record.kernel_stats.get(key, 0)

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        """Runs that produced a genuine classification."""
        return self.runs - self.timed_out - self.terminally_failed

    def count(self, outcome: Outcome) -> int:
        return self._counts[outcome]

    def outcome_histogram(self) -> _t.Dict[Outcome, int]:
        return dict(self._counts)

    def probability(self, outcome: Outcome) -> float:
        """Importance-weighted probability of *outcome* per run."""
        estimator = self._estimators.get(outcome)
        if estimator is None or estimator.n == 0:
            raise ValueError("no runs recorded")
        return estimator.estimate

    def confidence_interval(self, outcome: Outcome, confidence: float = 0.95):
        """Exact (unweighted) binomial CI on the outcome frequency."""
        return clopper_pearson(self.count(outcome), self.runs, confidence)

    def first_run_with(self, outcome: Outcome) -> _t.Optional[int]:
        """1-based index of the first run with *outcome* (cost metric)."""
        for record in self.records:
            if record.outcome is outcome:
                return record.index + 1
        return None

    def digests(self) -> _t.List[TraceDigest]:
        """The per-run trace digests, in run order (traced runs only)."""
        return [r.digest for r in self.records if r.digest is not None]

    def propagation(self) -> PropagationGraph:
        """The fault → error → detection/failure propagation graph
        folded from every traced run's digest (empty when the campaign
        ran without ``trace=``)."""
        return PropagationGraph.from_result(self)

    def failures(self) -> _t.List[RunRecord]:
        return [r for r in self.records if r.outcome.is_failure]

    def dangerous(self) -> _t.List[RunRecord]:
        return [r for r in self.records if r.outcome.is_dangerous]

    def diagnostic_coverage_by_descriptor(self) -> _t.Dict[str, float]:
        """Measured DC per fault class: of the runs where this
        descriptor caused *any* effect, the fraction handled safely
        (masked or detected).  This is the number that replaces the
        FMEDA expert estimate (see ``Fmeda.set_measured_coverage``)."""
        effects: _t.Dict[str, int] = {}
        handled: _t.Dict[str, int] = {}
        for record in self.records:
            if record.outcome is Outcome.NO_EFFECT:
                continue
            if record.outcome is Outcome.TIMEOUT:
                # Inconclusive: the run never produced a verdict, so it
                # can neither credit nor debit a protection mechanism.
                continue
            for name in {
                inj.descriptor.name for inj in record.scenario.injections
            }:
                effects[name] = effects.get(name, 0) + 1
                if record.outcome in (Outcome.MASKED, Outcome.DETECTED_SAFE):
                    handled[name] = handled.get(name, 0) + 1
        return {
            name: handled.get(name, 0) / count
            for name, count in effects.items()
        }

    def report(self) -> _t.Dict[str, _t.Any]:
        histogram = self.outcome_histogram()
        report: _t.Dict[str, _t.Any] = {
            "runs": self.runs,
            "outcomes": {o.name: n for o, n in histogram.items()},
            "failure_runs": len(self.failures()),
            "dangerous_runs": len(self.dangerous()),
        }
        wall = self.kernel_totals.get("wall_s", 0)
        if self.runs and wall:
            report["kernel"] = {
                "events": int(self.kernel_totals["events"]),
                "process_steps": int(self.kernel_totals["process_steps"]),
                "delta_cycles": int(self.kernel_totals["delta_cycles"]),
                "sim_wall_s": round(wall, 6),
                "runs_per_s": round(self.runs / wall, 3),
            }
        if self.timed_out or self.terminally_failed or self.retried \
                or self.resumed:
            # Only present when the campaign actually degraded or
            # resumed, so clean-run reports stay byte-identical to the
            # pre-fault-tolerance format (and to each other).
            report["robustness"] = {
                "completed": self.completed,
                "timed_out": self.timed_out,
                "terminally_failed": self.terminally_failed,
                "retried": self.retried,
                "resumed": self.resumed,
            }
        if self.pruned:
            # Present only when a pruner actually skipped something,
            # same conditional-section contract as "robustness".
            report["pruning"] = {
                "pruned": self.pruned,
                "executed": self.runs - self.pruned - self.resumed,
            }
        digests = self.digests()
        if digests:
            # Present only when the campaign was traced, so untraced
            # reports stay byte-identical to the previous format.
            graph = self.propagation()
            report["propagation"] = {
                "traced_runs": len(digests),
                "partial_digests": sum(1 for d in digests if d.partial),
                "nodes": len(graph.nodes),
                "edges": len(graph.edges),
                "top_fault_sites": [
                    {"site": site, "hazard_runs": count}
                    for site, count in graph.top_fault_sites(
                        at_least="HAZARDOUS", limit=5
                    )
                ],
                "detection_latency_median": {
                    mechanism: latency
                    for mechanism, latency
                    in graph.median_detection_latency().items()
                },
            }
        return report


class Campaign:
    """The Fig. 3 loop, parameterised by platform, probes, and strategy.

    Two construction styles:

    * explicit callables (``platform_factory``/``observe``/
      ``classifier``) — serial execution only, since closures do not
      cross process boundaries;
    * a registry key (``platform="airbag-normal"``) — resolves the
      callables from :mod:`repro.platforms.registry` and additionally
      enables the parallel backend, whose workers rebuild the
      platform from the key.
    """

    def __init__(
        self,
        platform_factory: _t.Optional[PlatformFactory] = None,
        observe: _t.Optional[ObserveFn] = None,
        classifier: _t.Optional[Classifier] = None,
        duration: int = 0,
        seed: int = 0,
        platform: _t.Optional[str] = None,
    ):
        if duration <= 0:
            raise ValueError("campaign run duration must be positive")
        reset: _t.Optional[_t.Callable] = None
        capture_state: _t.Optional[_t.Callable] = None
        restore_state: _t.Optional[_t.Callable] = None
        if platform is not None:
            from ..platforms import registry

            bundle = registry.get_platform(platform)
            if platform_factory is None:
                # The warm-reuse reset hook belongs to the bundle's own
                # factory; a caller-supplied factory may build something
                # the hook does not know how to restore.  Same for the
                # snapshot-fork hooks.
                reset = bundle.reset
                capture_state = bundle.capture_state
                restore_state = bundle.restore_state
            platform_factory = platform_factory or bundle.factory
            observe = observe or bundle.observe
            classifier = classifier or bundle.classifier_factory()
        if platform_factory is None or observe is None or classifier is None:
            raise ValueError(
                "campaign needs platform_factory/observe/classifier, "
                "either explicitly or via a platform registry key"
            )
        self.platform_factory = platform_factory
        self.observe = observe
        self.classifier = classifier
        self.reset = reset
        self.capture_state = capture_state
        self.restore_state = restore_state
        self.duration = duration
        self.seed = seed
        self.platform = platform
        self._golden: _t.Optional[RunObservation] = None
        self._golden_signals: _t.Optional[
            _t.Tuple[_t.Tuple[str, _t.Any], ...]
        ] = None

    # -- golden reference -----------------------------------------------------

    def golden(self) -> RunObservation:
        """The fault-free reference observation (cached).

        Platforms must be deterministic without faults, so one golden
        run serves the whole campaign.  :meth:`run` computes it
        eagerly before dispatching any batch and embeds it in every
        :class:`RunSpec`, so parallel workers never race on it.
        """
        if self._golden is None:
            sim = Simulator()
            root = self.platform_factory(sim)
            sim.run(until=self.duration)
            self._golden = self.observe(root)
        return self._golden

    def golden_signals(self) -> _t.Tuple[_t.Tuple[str, _t.Any], ...]:
        """Fault-free final values of the platform's trace signals.

        The reference that per-run signal-deviation events are computed
        against (cached; one extra golden simulation when the platform
        bundle nominates ``trace_signals``, empty otherwise).
        """
        if self._golden_signals is None:
            signals_fn = None
            if self.platform is not None:
                from ..platforms import registry

                signals_fn = registry.get_platform(
                    self.platform
                ).trace_signals
            if signals_fn is None:
                self._golden_signals = ()
            else:
                sim = Simulator()
                root = self.platform_factory(sim)
                sim.run(until=self.duration)
                signals = signals_fn(root) or {}
                self._golden_signals = tuple(
                    (name, signals[name].read())
                    for name in sorted(signals)
                )
        return self._golden_signals

    # -- single run -----------------------------------------------------------

    def execute_scenario(
        self, scenario: ErrorScenario, run_seed: int
    ) -> _t.Tuple[Outcome, _t.List[str], RunObservation, int]:
        """Run one scenario on a fresh platform; classify it."""
        spec = RunSpec(
            index=0,
            scenario=scenario,
            run_seed=run_seed,
            duration=self.duration,
            platform=self.platform,
            golden=self.golden(),
        )
        from .runspec import execute_runspec

        outcome = execute_runspec(
            spec, self.platform_factory, self.observe, self.classifier
        )
        return (
            outcome.outcome,
            list(outcome.matched_rules),
            outcome.observation,
            outcome.injections_applied,
        )

    # -- planning -------------------------------------------------------------

    def plan_batch(
        self,
        strategy: Strategy,
        rng: random.Random,
        count: int,
        start_index: int,
        deadline_s: _t.Optional[float] = None,
        trace: _t.Optional[TraceConfig] = None,
        reuse_platform: bool = True,
        fork: bool = False,
    ) -> _t.List[RunSpec]:
        """Freeze the next *count* runs into self-contained specs.

        Scenarios are drawn first (``Strategy.next_batch``), then one
        run seed per scenario — with a batch size of one this is the
        exact draw order of the historical sequential loop, so legacy
        campaigns replay byte-identically.  Determinism contract: the
        same (campaign seed, strategy, batch size) yields the same
        spec stream on every backend — and on every *restart*, which is
        what lets checkpoint resume skip journaled indices safely.
        """
        golden = self.golden()
        scenarios = strategy.next_batch(rng, count)
        return [
            RunSpec(
                index=start_index + offset,
                scenario=scenario,
                run_seed=rng.randrange(2**31),
                duration=self.duration,
                platform=self.platform,
                golden=golden,
                deadline_s=deadline_s,
                trace=trace,
                reuse_platform=reuse_platform,
                fork=fork,
            )
            for offset, scenario in enumerate(scenarios)
        ]

    # -- the loop -------------------------------------------------------------

    def run(
        self,
        strategy: Strategy,
        runs: int,
        coverage: _t.Optional[FaultSpaceCoverage] = None,
        stop_on: _t.Optional[Outcome] = None,
        backend: _t.Union[str, Executor] = "serial",
        workers: _t.Optional[int] = None,
        batch_size: _t.Optional[int] = None,
        run_timeout_s: _t.Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        hard_timeout_s: _t.Optional[float] = None,
        checkpoint: _t.Union[None, str, _t.Any] = None,
        trace: _t.Union[None, bool, str, TraceConfig] = None,
        telemetry: _t.Optional[CampaignTelemetry] = None,
        reuse_platform: bool = True,
        chunk_size: _t.Optional[int] = None,
        fork: bool = False,
        prune: _t.Optional[_t.Any] = None,
    ) -> CampaignResult:
        """Execute *runs* iterations of the closed loop.

        ``backend`` selects the executor: ``"serial"`` (default, the
        historical in-process loop), ``"parallel"`` (process pool over
        ``workers`` workers; requires a registry-backed campaign),
        ``"distributed"`` (a :mod:`repro.distributed` coordinator
        serving ``workers`` auto-spawned loopback worker processes;
        attach remote hosts by building a
        :class:`~repro.distributed.DistributedExecutor` yourself), any
        other name in the executor backend registry (see
        :func:`~repro.core.executors.register_backend`), or a
        pre-built :class:`Executor` instance.  ``batch_size`` sets
        how many runs are planned between feedback points — the
        default is 1 for serial (legacy-identical) and twice the
        worker count for parallel.  Adaptive strategies receive their
        feedback *between batches*.

        ``stop_on`` ends the campaign early once an outcome at least
        that severe occurs (used by "time to first hazard" metrics);
        runs planned after the triggering index are discarded.
        :data:`Outcome.TIMEOUT` sits below every failure outcome, so
        degraded runs never trip a failure stop condition.

        Fault tolerance: ``run_timeout_s`` is the per-run wall-clock
        deadline embedded in every spec (hangs degrade to ``TIMEOUT``
        records); ``max_retries``/``retry_backoff_s`` configure the
        crash-retry policy of an owned parallel executor; and
        ``hard_timeout_s`` overrides the pool-level backstop.  A
        caller-provided :class:`Executor` instance keeps its own
        policy.

        ``checkpoint`` — a path or a
        :class:`~repro.core.checkpoint.CampaignCheckpoint` — journals
        every completed outcome to an append-only JSONL file and, on
        restart with the same (seed, strategy, scenario set, batch
        size, run timeout), skips execution of already-journaled run
        indices: the resumed result aggregates identically to an
        uninterrupted campaign.  Any of those knobs differing — the
        batch size in particular defaults to twice the host's worker
        count — raises :class:`CheckpointKeyMismatch` instead of
        silently mixing two different spec streams.

        ``trace`` arms per-run propagation observability
        (:mod:`repro.observe`): ``True``/``"digest"`` for compact
        digests on every record, or a
        :class:`~repro.observe.TraceConfig` (``mode="full"`` spills
        complete per-run traces under its ``spill_dir``).  The result
        then answers :meth:`CampaignResult.propagation` queries and
        its report gains a ``"propagation"`` section.

        ``telemetry`` is an opt-in
        :class:`~repro.observe.CampaignTelemetry` observer of
        *execution* progress (throughput, retries, resumes) — wall
        clock, host-specific, and outside every determinism contract.

        ``reuse_platform`` (default True) lets each worker keep one
        warm platform per registry key and restore it between runs via
        the bundle's ``reset`` hook instead of rebuilding — outcomes
        are bit-for-bit identical either way (equivalence-tested), so
        the knob exists only for A/B measurement and debugging.
        ``chunk_size`` overrides the parallel executor's per-future
        batch size (``None`` auto-tunes; serial ignores it).  Neither
        knob is part of the checkpoint identity.

        ``fork`` (default False) opts the campaign into snapshot-fork
        execution: runs sharing a platform and earliest injection time
        are grouped *within each batch*, their fault-free prefix is
        simulated once, and every run in the group forks from a
        mid-run kernel snapshot (:meth:`Simulator.snapshot`).  Requires
        the platform bundle's ``capture_state``/``restore_state``
        hooks; anything ineligible silently takes the per-run path.
        Outcomes are bit-for-bit identical either way
        (equivalence-tested), so like ``reuse_platform`` the knob is
        excluded from the checkpoint identity.  Note the serial
        default ``batch_size=1`` leaves nothing to group — pass an
        explicit batch size to see fork-mode speedups.

        ``prune`` (default None) accepts a
        :class:`~repro.analyze.reach.ReachabilityPruner`: planning is
        untouched (identical spec stream, RNG draws, and run seeds),
        but specs whose injections all target statically-dead fault
        sites are never executed — each becomes an explicit
        ``Outcome.NO_EFFECT`` record tagged ``pruned:unreachable``
        (sound because a dead site provably cannot reach any detector
        or observed output).  Pruned records are excluded from the
        checkpoint journal and from the checkpoint identity — resume
        re-derives them from the same static analysis — so every
        non-pruned record and journal line is byte-identical (modulo
        ``wall_s``) to the unpruned campaign's.  The decision is
        visible in ``report()["pruning"]`` (pruned/executed counters).
        """
        trace_config = resolve_trace(trace)
        if trace_config is not None:
            # Fold the golden signal reference in once; every spec
            # (and so every worker) then traces against the same
            # fault-free final values.
            trace_config = TraceConfig(
                mode=trace_config.mode,
                ring_capacity=trace_config.ring_capacity,
                max_events=trace_config.max_events,
                spill_dir=trace_config.spill_dir,
                golden_signals=self.golden_signals(),
            )
            if trace_config.spill_dir:
                os.makedirs(trace_config.spill_dir, exist_ok=True)
        executor, owned = make_executor(
            backend,
            factory=self.platform_factory,
            observe=self.observe,
            classifier=self.classifier,
            platform=self.platform,
            workers=workers,
            retry=RetryPolicy(max_retries, retry_backoff_s),
            hard_timeout_s=hard_timeout_s,
            reset=self.reset,
            capture_state=self.capture_state,
            restore_state=self.restore_state,
            chunk_size=chunk_size,
            telemetry=telemetry,
        )
        if batch_size is None:
            batch_size = 1 if executor.workers == 1 else 2 * executor.workers
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        if hasattr(executor, "bind_campaign_key"):
            # Shard-journaling backends (repro.distributed) stamp each
            # worker's shard with the same identity the campaign-level
            # journal carries, so merged shards are interchangeable
            # with — and byte-identical to — a serial journal.
            executor.bind_campaign_key(
                campaign_key(
                    self,
                    strategy,
                    batch_size=batch_size,
                    run_timeout_s=run_timeout_s,
                    trace=trace_config,
                )
            )
        journal: _t.Optional[CampaignCheckpoint] = None
        if checkpoint is not None:
            journal = (
                checkpoint
                if isinstance(checkpoint, CampaignCheckpoint)
                else CampaignCheckpoint(checkpoint)
            )
            # The key pins the *effective* batch size and deadline:
            # both change what a journaled run index means (adaptive
            # strategies plan batch-shaped streams; deadlines change
            # outcomes), and the default batch size follows the host's
            # CPU count, so resuming elsewhere must fail loudly.
            journal.open(
                campaign_key(
                    self,
                    strategy,
                    batch_size=batch_size,
                    run_timeout_s=run_timeout_s,
                    trace=trace_config,
                )
            )
        self.golden()  # eager: no executor ever computes it implicitly
        result = CampaignResult(self.duration)
        rng = random.Random(self.seed)
        if telemetry is not None:
            telemetry.on_campaign_start({
                "runs": runs,
                "backend": backend if isinstance(backend, str)
                else type(backend).__name__,
                "workers": executor.workers,
                "batch_size": batch_size,
                "platform": self.platform,
                "traced": trace_config is not None,
                "resuming": bool(journal is not None and journal.outcomes),
            })
        try:
            index = 0
            while index < runs:
                batch_start = time.perf_counter()  # vp-lint: disable=VP005 - campaign throughput accounting, not model behavior
                specs = self.plan_batch(
                    strategy, rng, min(batch_size, runs - index), index,
                    deadline_s=run_timeout_s,
                    trace=trace_config,
                    reuse_platform=reuse_platform,
                    fork=fork,
                )
                index += len(specs)
                if journal is not None:
                    cached = [
                        journal.outcomes[spec.index]
                        for spec in specs
                        if spec.index in journal.outcomes
                    ]
                    fresh = [
                        spec for spec in specs
                        if spec.index not in journal.outcomes
                    ]
                else:
                    cached, fresh = [], specs
                if prune is not None:
                    skipped = [
                        _pruned_outcome(spec) for spec in fresh
                        if prune.is_dead(spec.scenario)
                    ]
                    fresh = [
                        spec for spec in fresh
                        if not prune.is_dead(spec.scenario)
                    ]
                else:
                    skipped = []
                if telemetry is not None:
                    for spec in fresh:
                        telemetry.on_run_start(spec)
                executed = executor.run_batch(fresh) if fresh else []
                if journal is not None and executed:
                    journal.record_batch(executed)
                result.resumed += len(cached)
                result.pruned += len(skipped)
                if telemetry is not None:
                    for outcome in executed:
                        if outcome.attempts > 1:
                            telemetry.on_retry(outcome)
                        telemetry.on_run_end(outcome)
                    for outcome in cached:
                        telemetry.on_resume(outcome)
                stopped = self._aggregate_batch(
                    result, specs, executed + cached + skipped, strategy,
                    coverage, stop_on,
                )
                if telemetry is not None:
                    batch_wall = time.perf_counter() - batch_start  # vp-lint: disable=VP005 - campaign throughput accounting, not model behavior
                    sim_wall = sum(
                        (o.kernel_stats or {}).get("wall_s", 0.0)
                        for o in executed
                    )
                    telemetry.on_batch_end({
                        "batch_runs": len(specs),
                        "executed": len(executed),
                        "resumed": len(cached),
                        "wall_s": round(batch_wall, 6),
                        "runs_per_s": round(
                            len(specs) / batch_wall, 3
                        ) if batch_wall > 0 else None,
                        "worker_utilization": round(
                            sim_wall / (executor.workers * batch_wall), 4
                        ) if batch_wall > 0 else None,
                        "total_runs": result.runs,
                    })
                if stopped:
                    break
        finally:
            if owned:
                executor.close()
            if journal is not None:
                journal.close()
            if telemetry is not None:
                telemetry.on_campaign_end({
                    "runs": result.runs,
                    "completed": result.completed,
                    "timed_out": result.timed_out,
                    "terminally_failed": result.terminally_failed,
                    "retried": result.retried,
                    "resumed": result.resumed,
                })
        return result

    def _aggregate_batch(
        self,
        result: CampaignResult,
        specs: _t.Sequence[RunSpec],
        outcomes: _t.Sequence[RunOutcome],
        strategy: Strategy,
        coverage: _t.Optional[FaultSpaceCoverage],
        stop_on: _t.Optional[Outcome],
    ) -> bool:
        """Fold one completed batch into the result, in index order.

        Returns True when ``stop_on`` triggered; records planned after
        the triggering run are dropped, mirroring the sequential loop
        which would never have executed them.
        """
        by_index = {outcome.index: outcome for outcome in outcomes}
        feedback: _t.List[_t.Tuple[ErrorScenario, Outcome]] = []
        stopped = False
        for spec in specs:
            outcome = by_index[spec.index]
            record = RunRecord(
                spec.index,
                spec.scenario,
                outcome.outcome,
                list(outcome.matched_rules),
                outcome.observation,
                outcome.injections_applied,
                outcome.kernel_stats,
                outcome.attempts,
                outcome.failure,
                outcome.digest,
            )
            result.append(record)
            if coverage is not None:
                coverage.record(spec.scenario, outcome.outcome)
            feedback.append((spec.scenario, outcome.outcome))
            if stop_on is not None and outcome.outcome >= stop_on:
                stopped = True
                break
        strategy.feedback_batch(feedback)
        return stopped
