"""The closed-loop stress-test campaign (Fig. 3).

One :class:`Campaign` object owns the loop the paper draws: build a
fresh virtual prototype, let the strategy pick an error scenario, arm
the stressor, simulate, observe, classify against the golden run,
update coverage, feed the outcome back to the strategy — and repeat.
"Repeated stress tests enable a quantitative evaluation, e.g. to
determine the safety integrity level" (Sec. 3.4): the campaign result
carries exactly those quantities (failure probabilities with exact
confidence intervals, measured diagnostic coverage per fault class).
"""

from __future__ import annotations

import random
import typing as _t

from ..kernel import Module, Simulator
from ..stats import WeightedRateEstimator, clopper_pearson
from .classification import Classifier, Outcome, RunObservation
from .coverage import FaultSpaceCoverage
from .scenario import ErrorScenario, FaultSpace
from .strategies import Strategy
from .stressor import Stressor

#: Builds a fresh platform into the given simulator; returns its root.
PlatformFactory = _t.Callable[[Simulator], Module]
#: Collects probe values after a run.
ObserveFn = _t.Callable[[Module], RunObservation]


class RunRecord(_t.NamedTuple):
    """Everything retained about one campaign run."""

    index: int
    scenario: ErrorScenario
    outcome: Outcome
    matched_rules: _t.List[str]
    observation: RunObservation
    injections_applied: int


class CampaignResult:
    """Aggregated campaign outcome."""

    def __init__(self, duration: int):
        self.duration = duration
        self.records: _t.List[RunRecord] = []
        self._estimators: _t.Dict[Outcome, WeightedRateEstimator] = {}

    def append(self, record: RunRecord) -> None:
        self.records.append(record)
        for outcome in Outcome:
            estimator = self._estimators.setdefault(
                outcome, WeightedRateEstimator()
            )
            estimator.record(
                record.scenario.sampling_weight or 1.0,
                record.outcome is outcome,
            )

    @property
    def runs(self) -> int:
        return len(self.records)

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    def outcome_histogram(self) -> _t.Dict[Outcome, int]:
        return {outcome: self.count(outcome) for outcome in Outcome}

    def probability(self, outcome: Outcome) -> float:
        """Importance-weighted probability of *outcome* per run."""
        estimator = self._estimators.get(outcome)
        if estimator is None or estimator.n == 0:
            raise ValueError("no runs recorded")
        return estimator.estimate

    def confidence_interval(self, outcome: Outcome, confidence: float = 0.95):
        """Exact (unweighted) binomial CI on the outcome frequency."""
        return clopper_pearson(self.count(outcome), self.runs, confidence)

    def first_run_with(self, outcome: Outcome) -> _t.Optional[int]:
        """1-based index of the first run with *outcome* (cost metric)."""
        for record in self.records:
            if record.outcome is outcome:
                return record.index + 1
        return None

    def failures(self) -> _t.List[RunRecord]:
        return [r for r in self.records if r.outcome.is_failure]

    def dangerous(self) -> _t.List[RunRecord]:
        return [r for r in self.records if r.outcome.is_dangerous]

    def diagnostic_coverage_by_descriptor(self) -> _t.Dict[str, float]:
        """Measured DC per fault class: of the runs where this
        descriptor caused *any* effect, the fraction handled safely
        (masked or detected).  This is the number that replaces the
        FMEDA expert estimate (see ``Fmeda.set_measured_coverage``)."""
        effects: _t.Dict[str, int] = {}
        handled: _t.Dict[str, int] = {}
        for record in self.records:
            if record.outcome is Outcome.NO_EFFECT:
                continue
            for name in {
                inj.descriptor.name for inj in record.scenario.injections
            }:
                effects[name] = effects.get(name, 0) + 1
                if record.outcome in (Outcome.MASKED, Outcome.DETECTED_SAFE):
                    handled[name] = handled.get(name, 0) + 1
        return {
            name: handled.get(name, 0) / count
            for name, count in effects.items()
        }

    def report(self) -> _t.Dict[str, _t.Any]:
        histogram = self.outcome_histogram()
        return {
            "runs": self.runs,
            "outcomes": {o.name: n for o, n in histogram.items()},
            "failure_runs": len(self.failures()),
            "dangerous_runs": len(self.dangerous()),
        }


class Campaign:
    """The Fig. 3 loop, parameterised by platform, probes, and strategy."""

    def __init__(
        self,
        platform_factory: PlatformFactory,
        observe: ObserveFn,
        classifier: Classifier,
        duration: int,
        seed: int = 0,
    ):
        if duration <= 0:
            raise ValueError("campaign run duration must be positive")
        self.platform_factory = platform_factory
        self.observe = observe
        self.classifier = classifier
        self.duration = duration
        self.seed = seed
        self._golden: _t.Optional[RunObservation] = None

    # -- golden reference -----------------------------------------------------

    def golden(self) -> RunObservation:
        """The fault-free reference observation (cached).

        Platforms must be deterministic without faults, so one golden
        run serves the whole campaign.
        """
        if self._golden is None:
            sim = Simulator()
            root = self.platform_factory(sim)
            sim.run(until=self.duration)
            self._golden = self.observe(root)
        return self._golden

    # -- single run -------------------------------------------------------------

    def execute_scenario(
        self, scenario: ErrorScenario, run_seed: int
    ) -> _t.Tuple[Outcome, _t.List[str], RunObservation, int]:
        """Run one scenario on a fresh platform; classify it."""
        sim = Simulator()
        root = self.platform_factory(sim)
        stressor = Stressor(
            "stressor", parent=root, platform_root=root,
            rng=random.Random(run_seed),
        )
        stressor.arm(scenario)
        sim.run(until=self.duration)
        observation = self.observe(root)
        outcome, matched = self.classifier.classify(observation, self.golden())
        return outcome, matched, observation, len(stressor.applied)

    # -- the loop -----------------------------------------------------------------

    def run(
        self,
        strategy: Strategy,
        runs: int,
        coverage: _t.Optional[FaultSpaceCoverage] = None,
        stop_on: _t.Optional[Outcome] = None,
    ) -> CampaignResult:
        """Execute *runs* iterations of the closed loop.

        ``stop_on`` ends the campaign early once an outcome at least
        that severe occurs (used by "time to first hazard" metrics).
        """
        result = CampaignResult(self.duration)
        rng = random.Random(self.seed)
        for index in range(runs):
            scenario = strategy.next_scenario(rng)
            outcome, matched, observation, applied = self.execute_scenario(
                scenario, run_seed=rng.randrange(2**31)
            )
            record = RunRecord(
                index, scenario, outcome, matched, observation, applied
            )
            result.append(record)
            if coverage is not None:
                coverage.record(scenario, outcome)
            strategy.feedback(scenario, outcome)
            if stop_on is not None and outcome >= stop_on:
                break
        return result
