"""Cross-layer fault-model derivation.

Sec. 3.4: "faults that lead to possible errors are usually low level
technology-based effects ... Information on the fault must be
propagated to higher levels of abstraction, requiring cross-layer
analysis.  The purpose of such analysis is to derive the fault models
for the high-level stressors, which should ideally capture the effects
resulting from low-level faults to the full extent."

The pipeline:

1. run a gate-level SEU campaign on the real netlist
   (:func:`repro.gate.faults.run_seu_campaign`) to obtain a
   :class:`~repro.gate.faults.WordErrorProfile` — the measured
   distribution of word-level error patterns, including masking;
2. wrap it as a ``WORD_CORRUPTION`` descriptor via
   :func:`derived_descriptor`;
3. TLM-level injectors then sample *patterns* from the profile instead
   of flipping uniform random bits.

The naive single-bit-flip model (:func:`naive_descriptor`) is kept as
the comparison baseline: benchmark E6 shows it misestimates outcome
distributions exactly as Cho et al. [40] reported, while the derived
model tracks the gate-level truth.
"""

from __future__ import annotations

import collections
import random as _random
import typing as _t

from ..faults import FaultDescriptor, FaultKind, Persistence
from ..gate.builder import Circuit
from ..gate.faults import WordErrorProfile, run_campaign


def measure_word_error_profile(
    circuit: Circuit,
    output_bus: str,
    *,
    kinds: _t.Sequence[str] = ("seu",),
    runs_per_site: int = 4,
    settle_cycles: int = 2,
    seed: int = 0,
    rng: _t.Optional[_random.Random] = None,
    engine: str = "vector",
    vector_source: _t.Optional[
        _t.Callable[[_random.Random], _t.Dict[str, int]]
    ] = None,
) -> WordErrorProfile:
    """Step 1 of the Sec. 3.4 pipeline: measure the gate-level truth.

    Enumerates every (net, kind) fault site of *circuit* and runs the
    golden-vs-faulty campaign, returning the measured
    :class:`WordErrorProfile` ready for :func:`derived_descriptor`.
    Defaults to the bit-parallel vector engine — byte-identical to the
    scalar ground truth (pinned by the differential fuzz harness) at a
    fraction of the cost, which is what makes E6-style derivation
    cheap enough to re-run per netlist revision.
    """
    profile, _ = run_campaign(
        circuit,
        output_bus,
        vector_source,
        kinds=kinds,
        runs_per_site=runs_per_site,
        settle_cycles=settle_cycles,
        seed=seed,
        rng=rng,
        engine=engine,
    )
    return profile


def derived_descriptor(
    name: str,
    profile: WordErrorProfile,
    rate_per_hour: float = 0.0,
    address: _t.Optional[int] = None,
) -> FaultDescriptor:
    """A high-level fault descriptor backed by gate-level evidence."""
    if profile.total == 0:
        raise ValueError("cannot derive a model from an empty profile")
    params: _t.Dict[str, _t.Any] = {"profile": profile}
    if address is not None:
        params["address"] = address
    return FaultDescriptor(
        name=name,
        kind=FaultKind.WORD_CORRUPTION,
        persistence=Persistence.TRANSIENT,
        params=params,
        rate_per_hour=rate_per_hour,
    )


def naive_descriptor(
    name: str,
    width: int = 32,
    rate_per_hour: float = 0.0,
    address: _t.Optional[int] = None,
) -> FaultDescriptor:
    """The conventional high-level model: one uniform random bit flip.

    Note what it misses relative to a measured profile: masking (the
    naive model always corrupts) and multi-bit patterns (carry chains,
    decoder faults).
    """
    profile = WordErrorProfile()
    for bit in range(width):
        profile.pattern_counts[1 << bit] = 1
        profile.total += 1
    params: _t.Dict[str, _t.Any] = {"profile": profile}
    if address is not None:
        params["address"] = address
    return FaultDescriptor(
        name=name,
        kind=FaultKind.WORD_CORRUPTION,
        persistence=Persistence.TRANSIENT,
        params=params,
        rate_per_hour=rate_per_hour,
    )


def pattern_histogram(
    profile: WordErrorProfile,
) -> _t.Dict[str, float]:
    """Summarise a profile: masked / single-bit / multi-bit fractions."""
    manifest = sum(profile.pattern_counts.values())
    total = profile.total
    if total == 0:
        return {"masked": 0.0, "single_bit": 0.0, "multi_bit": 0.0}
    single = sum(
        count
        for pattern, count in profile.pattern_counts.items()
        if bin(pattern).count("1") == 1
    )
    multi = manifest - single
    return {
        "masked": profile.masked / total,
        "single_bit": single / total,
        "multi_bit": multi / total,
    }


def total_variation_distance(
    histogram_a: _t.Mapping[_t.Any, float],
    histogram_b: _t.Mapping[_t.Any, float],
) -> float:
    """TV distance between two normalized outcome histograms.

    The accuracy metric of experiment E6: how far a high-level
    campaign's outcome distribution sits from the gate-level truth.
    """
    keys = set(histogram_a) | set(histogram_b)
    return 0.5 * sum(
        abs(histogram_a.get(k, 0.0) - histogram_b.get(k, 0.0)) for k in keys
    )


def normalize_counts(
    counts: _t.Mapping[_t.Any, _t.Union[int, float]],
) -> _t.Dict[_t.Any, float]:
    """Counts -> probability histogram."""
    total = sum(counts.values())
    if total <= 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def error_pattern_outcomes(
    profile: WordErrorProfile,
    checker: _t.Callable[[int], str],
) -> _t.Dict[str, float]:
    """Push every profile pattern through an outcome *checker*.

    ``checker(pattern) -> label`` classifies what a given word-level
    corruption would do to the consuming logic (e.g. "masked",
    "detected", "sdc").  Returns the probability-weighted label
    histogram — the analytic shortcut for comparing fault models
    without running full campaigns.
    """
    counts: _t.Counter = collections.Counter()
    counts["masked"] += profile.masked
    for pattern, count in profile.pattern_counts.items():
        counts[checker(pattern)] += count
    return normalize_counts(counts)
