"""Trace configuration carried inside every RunSpec.

A :class:`TraceConfig` is frozen and picklable because it rides the
planner → executor boundary: the campaign resolves the user's
``Campaign.run(trace=...)`` argument once, folds in the golden
reference values for the platform's watched signals, and embeds the
result in each :class:`~repro.core.runspec.RunSpec`.  Workers then
need nothing but the spec to arm an identical trace — the precondition
for serial/parallel digest equality.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """How a run should be traced.

    * ``mode`` — ``"digest"`` returns only the compact
      :class:`~repro.observe.digest.TraceDigest`; ``"full"``
      additionally spills the complete per-run ring-buffer histories
      as one JSONL file per run under ``spill_dir``.
    * ``ring_capacity`` — per-signal ring buffer depth (bounds memory
      at O(watched signals), not O(simulated activity)).
    * ``max_events`` — cap on digest events; overflow is truncated
      deterministically and counted in ``TraceDigest.dropped_events``.
    * ``spill_dir`` — campaign trace directory, required for
      ``mode="full"``.
    * ``golden_signals`` — sorted ``(name, final_value)`` pairs from
      the golden run, the reference that deviation events are computed
      against.  Filled in by the campaign; empty when tracing a bare
      ``execute_runspec`` without a golden signal reference.
    """

    mode: str = "digest"
    ring_capacity: int = 64
    max_events: int = 256
    spill_dir: _t.Optional[str] = None
    golden_signals: _t.Tuple[_t.Tuple[str, _t.Any], ...] = ()

    def __post_init__(self):
        if self.mode not in ("digest", "full"):
            raise ValueError(f"unknown trace mode {self.mode!r}")
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be positive")
        if self.max_events < 1:
            raise ValueError("max_events must be positive")
        if self.mode == "full" and not self.spill_dir:
            raise ValueError('trace mode "full" requires spill_dir')

    def key(self) -> _t.Dict[str, _t.Any]:
        """Identity contribution for the checkpoint journal key.

        Only knobs that change digest *content* participate; spill_dir
        is a local filesystem detail and golden_signals are derived
        from (seed, platform, duration) already pinned by the key.
        """
        return {
            "mode": self.mode,
            "ring": self.ring_capacity,
            "max_events": self.max_events,
        }


def resolve_trace(
    trace: _t.Union[None, bool, str, TraceConfig]
) -> _t.Optional[TraceConfig]:
    """Normalize the ``Campaign.run(trace=...)`` argument.

    ``None``/``False`` → tracing off; ``True`` or ``"digest"`` → the
    default digest-only config; a :class:`TraceConfig` is used as-is.
    The bare string ``"full"`` is rejected because full mode needs a
    spill directory — pass ``TraceConfig(mode="full", spill_dir=...)``.
    """
    if trace is None or trace is False:
        return None
    if trace is True or trace == "digest":
        return TraceConfig()
    if isinstance(trace, TraceConfig):
        return trace
    if trace == "full":
        raise ValueError(
            'trace="full" needs a spill directory; '
            'pass TraceConfig(mode="full", spill_dir=...)'
        )
    raise TypeError(f"cannot interpret trace={trace!r}")
