"""Campaign-level propagation graph and latency metrics.

Folding every run's :class:`~repro.observe.digest.TraceDigest` into one
:class:`PropagationGraph` answers the questions the paper says virtual
prototypes exist to answer: *which* fault sites propagate, *through*
which signals, *into* which detection mechanism or failure mode, and
*how fast*.  Nodes are namespaced string ids:

* ``fault:<target_path>:<descriptor>`` — an injection site;
* ``dev:<signal-or-probe>`` — an intermediate deviation;
* ``detect:<module>:<mechanism>`` — a protection mechanism that fired;
* ``outcome:<NAME>`` — the run verdict.

Edges follow each run's time-ordered event chain (fault → deviations
in onset order → detections → outcome) with multiplicity counted
across runs.  Latency distributions are sim-time deltas from the first
injection, aggregated per mechanism (fault-to-detection) and per
failure outcome (fault-to-failure).

Construction is pure folding over digests in run-index order, so the
graph — like the digests — is identical for serial, parallel, and
checkpoint-resumed campaigns.
"""

from __future__ import annotations

import statistics
import typing as _t

from .digest import TraceDigest
from .events import CLASSIFICATION, DETECTION, DEVIATION, INJECTION


class PropagationGraph:
    def __init__(self):
        #: node id -> {"kind": ..., "label": ..., "count": ...}
        self.nodes: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
        #: (src id, dst id) -> traversal count
        self.edges: _t.Dict[_t.Tuple[str, str], int] = {}
        #: mechanism -> [fault-to-detection latencies]
        self.detection_latencies: _t.Dict[str, _t.List[int]] = {}
        #: outcome name -> [fault-to-failure latencies]
        self.failure_latencies: _t.Dict[str, _t.List[int]] = {}
        #: fault site -> {outcome name: run count}
        self.site_outcomes: _t.Dict[str, _t.Dict[str, int]] = {}
        #: (site, mechanism, latency) per detected run — the concrete
        #: fault→detection evidence paths.
        self.detection_paths: _t.List[_t.Tuple[str, str, int]] = []
        self.runs = 0
        self.partial_runs = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_digests(
        cls, digests: _t.Iterable[_t.Optional[TraceDigest]]
    ) -> "PropagationGraph":
        graph = cls()
        for digest in digests:
            if digest is not None:
                graph.add_digest(digest)
        return graph

    @classmethod
    def from_result(cls, result) -> "PropagationGraph":
        """Build from a ``CampaignResult`` (records carry digests when
        the campaign ran with ``trace=``)."""
        return cls.from_digests(
            record.digest for record in result.records
        )

    def _node(self, node_id: str, kind: str, label: str) -> str:
        node = self.nodes.setdefault(
            node_id, {"kind": kind, "label": label, "count": 0}
        )
        node["count"] += 1
        return node_id

    def _edge(self, src: str, dst: str) -> None:
        self.edges[(src, dst)] = self.edges.get((src, dst), 0) + 1

    def add_digest(self, digest: TraceDigest) -> None:
        self.runs += 1
        if digest.partial:
            self.partial_runs += 1

        fault_nodes: _t.List[str] = []
        sites: _t.List[str] = []
        first_injection: _t.Optional[int] = None
        for event in digest.events:
            if event.kind != INJECTION:
                continue
            site = f"{event.source}:{event.label}"
            node_id = self._node(f"fault:{site}", "fault", site)
            if node_id not in fault_nodes:
                fault_nodes.append(node_id)
                sites.append(site)
            if first_injection is None or event.time < first_injection:
                first_injection = event.time

        # Chain faults through deviations in event (onset) order.
        frontier = list(fault_nodes)
        for event in digest.events:
            if event.kind != DEVIATION:
                continue
            node_id = self._node(f"dev:{event.source}", "deviation", event.source)
            for src in frontier:
                self._edge(src, node_id)
            frontier = [node_id]

        sinks: _t.List[str] = []
        for event in digest.events:
            if event.kind != DETECTION:
                continue
            mechanism = event.label.split(":", 1)[0]
            node_id = self._node(
                f"detect:{event.source}:{mechanism}",
                "detection",
                f"{event.source}:{mechanism}",
            )
            if node_id not in sinks:
                sinks.append(node_id)

        outcome_name = digest.outcome
        if outcome_name is None:
            for event in digest.events:
                if event.kind == CLASSIFICATION:
                    outcome_name = event.label
                    break
        outcome_node: _t.Optional[str] = None
        if outcome_name is not None:
            outcome_node = self._node(
                f"outcome:{outcome_name}", "outcome", outcome_name
            )

        for sink in sinks:
            for src in frontier:
                self._edge(src, sink)
            if outcome_node is not None:
                self._edge(sink, outcome_node)
        if not sinks and outcome_node is not None:
            for src in frontier:
                self._edge(src, outcome_node)

        # Latency distributions, measured from the first injection.
        if first_injection is not None:
            seen_mechanisms: _t.Set[str] = set()
            for event in digest.events:
                if event.kind != DETECTION:
                    continue
                mechanism = event.label.split(":", 1)[0]
                if mechanism in seen_mechanisms:
                    continue
                seen_mechanisms.add(mechanism)
                latency = event.time - first_injection
                self.detection_latencies.setdefault(mechanism, []).append(
                    latency
                )
                for site in sites:
                    self.detection_paths.append((site, mechanism, latency))
            if outcome_name is not None:
                self._record_failure_latency(
                    digest, outcome_name, first_injection
                )

        if outcome_name is not None:
            for site in sites:
                per_site = self.site_outcomes.setdefault(site, {})
                per_site[outcome_name] = per_site.get(outcome_name, 0) + 1

    def _record_failure_latency(
        self, digest: TraceDigest, outcome_name: str, first_injection: int
    ) -> None:
        from ..core.classification import Outcome  # local: avoid cycle

        try:
            outcome = Outcome[outcome_name]
        except KeyError:
            return
        if not outcome.is_failure:
            return
        # Failure onset: the first deviation, else the verdict time.
        onset: _t.Optional[int] = None
        for event in digest.events:
            if event.kind == DEVIATION:
                onset = event.time
                break
        if onset is None:
            for event in digest.events:
                if event.kind == CLASSIFICATION:
                    onset = event.time
                    break
        if onset is not None:
            self.failure_latencies.setdefault(outcome_name, []).append(
                onset - first_injection
            )

    # -- queries ------------------------------------------------------------

    def median_detection_latency(self) -> _t.Dict[str, float]:
        """Median fault-to-detection sim-time latency per mechanism."""
        return {
            mechanism: statistics.median(latencies)
            for mechanism, latencies in sorted(self.detection_latencies.items())
            if latencies
        }

    def detection_latency_percentiles(
        self, percentiles: _t.Sequence[float] = (50.0, 90.0, 99.0)
    ) -> _t.Dict[str, _t.Dict[str, float]]:
        """Fault-to-detection latency percentiles per mechanism.

        Deterministic nearest-rank-with-interpolation quantiles (the
        same linear rule as ``statistics.quantiles(method=...)`` at the
        requested points) over each mechanism's sim-time latency list —
        the "p99 detection latency" row a risk report needs.  Keys are
        ``"p50"``-style labels; mechanisms with no samples are absent.
        """
        result: _t.Dict[str, _t.Dict[str, float]] = {}
        for mechanism, latencies in sorted(self.detection_latencies.items()):
            if not latencies:
                continue
            ordered = sorted(latencies)
            row: _t.Dict[str, float] = {}
            for p in percentiles:
                if not 0.0 <= p <= 100.0:
                    raise ValueError(f"percentile {p} out of [0, 100]")
                rank = (len(ordered) - 1) * p / 100.0
                low = int(rank)
                high = min(low + 1, len(ordered) - 1)
                fraction = rank - low
                value = (
                    ordered[low] * (1.0 - fraction) + ordered[high] * fraction
                )
                label = f"p{p:g}"
                row[label] = float(value)
            result[mechanism] = row
        return result

    def top_fault_sites(
        self, at_least: str = "HAZARDOUS", limit: int = 5
    ) -> _t.List[_t.Tuple[str, int]]:
        """Fault sites ranked by runs reaching *at_least* severity."""
        from ..core.classification import Outcome  # local: avoid cycle

        threshold = Outcome[at_least]
        ranked: _t.List[_t.Tuple[str, int]] = []
        for site, outcomes in self.site_outcomes.items():
            count = 0
            for name, runs in outcomes.items():
                try:
                    if Outcome[name] >= threshold:
                        count += runs
                except KeyError:
                    continue
            if count:
                ranked.append((site, count))
        ranked.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranked[:limit]

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        """Canonical JSON view (used by the resume-determinism tests)."""
        return {
            "runs": self.runs,
            "partial_runs": self.partial_runs,
            "nodes": {
                node_id: dict(node)
                for node_id, node in sorted(self.nodes.items())
            },
            "edges": [
                [src, dst, count]
                for (src, dst), count in sorted(self.edges.items())
            ],
            "detection_latencies": {
                mechanism: list(latencies)
                for mechanism, latencies in sorted(
                    self.detection_latencies.items()
                )
            },
            "failure_latencies": {
                name: list(latencies)
                for name, latencies in sorted(self.failure_latencies.items())
            },
            "site_outcomes": {
                site: dict(sorted(outcomes.items()))
                for site, outcomes in sorted(self.site_outcomes.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PropagationGraph(runs={self.runs}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )
