"""Propagation observability: per-run traces, digests, graphs, telemetry.

The subsystem that turns every campaign run into *evidence* instead of
just a verdict (the paper's Sec. 1 claim that VPs make it "much easier
to observe the impact of the error ... and track the error
propagation"):

* :mod:`~repro.observe.hooks` — the detection-event bus hw/ protection
  models publish on;
* :mod:`~repro.observe.runtrace` — the per-run recorder
  ``execute_runspec`` arms alongside the stressor;
* :mod:`~repro.observe.digest` — the compact, schema-versioned,
  picklable per-run result that crosses the process-pool boundary;
* :mod:`~repro.observe.graph` — campaign-level fault → error →
  detection/failure propagation graph and latency distributions;
* :mod:`~repro.observe.telemetry` — opt-in wall-clock execution
  telemetry (throughput, retries, utilization) with a JSONL emitter.
"""

from .config import TraceConfig, resolve_trace
from .digest import TraceDigest
from .events import TRACE_SCHEMA_VERSION, TraceEvent, sort_events
from .graph import PropagationGraph
from .hooks import emit_detection, pop_sink, push_sink
from .runtrace import RunTrace, planned_digest
from .telemetry import CampaignTelemetry, JsonlTelemetry

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "CampaignTelemetry",
    "JsonlTelemetry",
    "PropagationGraph",
    "RunTrace",
    "TraceConfig",
    "TraceDigest",
    "TraceEvent",
    "emit_detection",
    "planned_digest",
    "pop_sink",
    "push_sink",
    "resolve_trace",
    "sort_events",
]
