"""The trace event vocabulary.

A run's story is told as a flat, time-ordered sequence of four event
kinds mirroring the paper's fault → error → failure chain:

* ``injection`` — the stressor perturbed state (the *fault*);
* ``deviation`` — a watched signal or observation probe diverged from
  the golden reference (the *error* becoming visible);
* ``detection`` — a protection mechanism noticed or absorbed the error
  (watchdog bite, ECC correction, lockstep mismatch);
* ``classification`` — the run's final verdict (the *failure* level).

Events are plain value tuples so they pickle compactly across the
process-pool boundary and serialize to JSON as 4-element lists.  The
sort key is total and content-only — ``(time, kind order, source,
label)`` — which is what makes serial and parallel digests
byte-identical for the same seed.
"""

from __future__ import annotations

import typing as _t

#: Bump when the event/digest wire format changes shape.
TRACE_SCHEMA_VERSION = 1

INJECTION = "injection"
DEVIATION = "deviation"
DETECTION = "detection"
CLASSIFICATION = "classification"

#: Causal order used to break timestamp ties: a fault precedes the
#: error it causes, which precedes its detection, which precedes the
#: verdict — even when they land in the same delta cycle.
_KIND_ORDER: _t.Dict[str, int] = {
    INJECTION: 0,
    DEVIATION: 1,
    DETECTION: 2,
    CLASSIFICATION: 3,
}


class TraceEvent(_t.NamedTuple):
    time: int
    kind: str
    source: str
    label: str

    def sort_key(self) -> _t.Tuple[int, int, str, str]:
        return (self.time, _KIND_ORDER.get(self.kind, 9), self.source, self.label)

    def to_jsonable(self) -> _t.List[_t.Any]:
        return [self.time, self.kind, self.source, self.label]

    @classmethod
    def from_jsonable(cls, data: _t.Sequence[_t.Any]) -> "TraceEvent":
        time, kind, source, label = data
        return cls(int(time), str(kind), str(source), str(label))


def sort_events(events: _t.Iterable[TraceEvent]) -> _t.List[TraceEvent]:
    """Deterministic total order over a run's events."""
    return sorted(events, key=TraceEvent.sort_key)
