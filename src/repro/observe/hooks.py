"""Detection-event hook bus for protection mechanisms.

Hardware protection models (watchdog, ECC, lockstep, TMR) announce
"I detected/absorbed an error" through :func:`emit_detection`.  When no
sink is armed — the common case: golden runs, untraced campaigns —
the call is a list-truthiness check and returns immediately, so the
hook costs nothing on the hot path.

The sink stack is process-global per design: ``execute_runspec`` runs
exactly one simulation at a time per process (the parallel executor
gets isolation from separate worker *processes*, not threads), so a
simple LIFO stack is race-free and keeps the hw/ modules free of any
plumbing — they never see the tracer object, only this module.

This module imports nothing from the rest of the package so ``hw/``
can depend on it without cycles.
"""

from __future__ import annotations

import typing as _t

#: Armed sinks; each must expose
#: ``record_detection(time, source, mechanism, label)``.
_SINKS: _t.List[_t.Any] = []


def emit_detection(module, mechanism: str, label: str = "") -> None:
    """Announce that *module* detected or absorbed an error *now*.

    ``module`` is a kernel :class:`~repro.kernel.module.Module`; its
    ``full_name`` becomes the event source and its ``sim.now`` the
    timestamp.  No-op unless a sink is armed.
    """
    if not _SINKS:
        return
    time = module.sim.now
    source = module.full_name
    for sink in _SINKS:
        sink.record_detection(time, source, mechanism, label)


def push_sink(sink) -> None:
    """Arm *sink* to receive detection events."""
    _SINKS.append(sink)


def pop_sink(sink) -> None:
    """Disarm *sink*; tolerates a sink that was never armed."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def active_sinks() -> _t.Tuple[_t.Any, ...]:
    """Snapshot of armed sinks (for tests)."""
    return tuple(_SINKS)
