"""Live campaign telemetry hooks.

Where digests describe *simulated* behaviour (deterministic, sim-time),
telemetry describes *execution* behaviour: throughput, batch wall
times, retries, resumes, worker utilization.  The two never mix — a
telemetry stream is wall-clock, host-specific, and explicitly outside
the byte-equality contract.

:class:`CampaignTelemetry` is the hook API ``Campaign.run(telemetry=)``
drives; subclass and override what you need (every hook is a no-op by
default, and the campaign never depends on return values).
:class:`JsonlTelemetry` is the bundled emitter: one JSON object per
line, the substrate a dashboard or service front-end tails.
"""

from __future__ import annotations

import json
import time as _time
import typing as _t


class CampaignTelemetry:
    """Opt-in observer of campaign execution progress.

    Hook order per campaign: ``on_campaign_start``; per batch any mix
    of ``on_resume`` (journal replays), ``on_run_start``/``on_run_end``
    (live runs; ``on_retry`` between attempts), then ``on_batch_end``;
    finally ``on_campaign_end`` (also on error/interrupt).
    """

    def on_campaign_start(self, info: _t.Dict[str, _t.Any]) -> None:
        """Campaign begins: backend, workers, batch_size, planned runs."""

    def on_run_start(self, spec) -> None:
        """A RunSpec is about to be dispatched to the executor."""

    def on_run_end(self, outcome) -> None:
        """A RunOutcome came back (terminal failures included)."""

    def on_retry(self, outcome) -> None:
        """A run needed more than one attempt (outcome.attempts > 1)."""

    def on_resume(self, outcome) -> None:
        """A journaled RunOutcome was replayed instead of re-executed."""

    def on_batch_end(self, stats: _t.Dict[str, _t.Any]) -> None:
        """A batch finished; stats carry wall time and throughput."""

    def on_campaign_end(self, info: _t.Dict[str, _t.Any]) -> None:
        """Campaign finished (normally or not); final counters."""

    # -- distributed execution (repro.distributed) ----------------------

    def on_worker_join(self, info: _t.Dict[str, _t.Any]) -> None:
        """A distributed worker registered with the coordinator."""

    def on_worker_leave(self, info: _t.Dict[str, _t.Any]) -> None:
        """A distributed worker said a clean goodbye."""

    def on_worker_dead(self, info: _t.Dict[str, _t.Any]) -> None:
        """A distributed worker was declared dead (EOF, stale
        heartbeat, or hung lease); ``info`` carries the reason and how
        many leased runs were requeued."""

    def on_worker_result(self, worker: str, outcome) -> None:
        """A RunOutcome arrived from a named distributed worker — the
        per-worker attribution stream (which worker executed which
        run), distinct from :meth:`on_run_end`'s campaign-order view."""


class JsonlTelemetry(CampaignTelemetry):
    """Append telemetry as JSON lines to *path*.

    ``clock`` is injectable for tests; defaults to wall clock.
    """

    def __init__(self, path: str, clock: _t.Callable[[], float] = _time.time):
        self.path = path
        self._clock = clock
        self._handle = open(path, "a")
        self.counters = {
            "runs": 0,
            "retries": 0,
            "timeouts": 0,
            "terminal_failures": 0,
            "resumed": 0,
            "batches": 0,
            "workers_joined": 0,
            "workers_lost": 0,
        }
        #: Runs completed per distributed worker name (attribution).
        self.worker_runs: _t.Dict[str, int] = {}

    def _emit(self, kind: str, payload: _t.Dict[str, _t.Any]) -> None:
        record = {"t": self._clock(), "event": kind}
        record.update(payload)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def on_campaign_start(self, info):
        self._emit("campaign_start", info)
        self._handle.flush()

    def on_run_start(self, spec):
        self._emit(
            "run_start",
            {"index": spec.index, "scenario": spec.scenario.name},
        )

    def on_run_end(self, outcome):
        self.counters["runs"] += 1
        if outcome.failure == "timeout":
            self.counters["timeouts"] += 1
        elif outcome.failure is not None:
            self.counters["terminal_failures"] += 1
        self._emit(
            "run_end",
            {
                "index": outcome.index,
                "outcome": outcome.outcome.name,
                "attempts": outcome.attempts,
                "failure": outcome.failure,
                "partial_digest": bool(
                    outcome.digest is not None and outcome.digest.partial
                ),
            },
        )

    def on_retry(self, outcome):
        self.counters["retries"] += outcome.attempts - 1
        self._emit(
            "retry",
            {
                "index": outcome.index,
                "attempts": outcome.attempts,
                "failure": outcome.failure,
            },
        )

    def on_resume(self, outcome):
        self.counters["resumed"] += 1
        self._emit(
            "resume",
            {"index": outcome.index, "outcome": outcome.outcome.name},
        )

    def on_batch_end(self, stats):
        self.counters["batches"] += 1
        self._emit("batch_end", stats)
        self._handle.flush()

    def on_worker_join(self, info):
        self.counters["workers_joined"] += 1
        self._emit("worker_join", dict(info))
        self._handle.flush()

    def on_worker_leave(self, info):
        self._emit("worker_leave", dict(info))
        self._handle.flush()

    def on_worker_dead(self, info):
        self.counters["workers_lost"] += 1
        self._emit("worker_dead", dict(info))
        self._handle.flush()

    def on_worker_result(self, worker, outcome):
        self.worker_runs[worker] = self.worker_runs.get(worker, 0) + 1
        self._emit(
            "worker_result",
            {
                "worker": worker,
                "index": outcome.index,
                "outcome": outcome.outcome.name,
            },
        )

    def on_campaign_end(self, info):
        payload = dict(info)
        payload["counters"] = dict(self.counters)
        if self.worker_runs:
            payload["worker_runs"] = dict(sorted(self.worker_runs.items()))
        self._emit("campaign_end", payload)
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
