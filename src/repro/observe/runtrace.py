"""Per-run trace recorder armed by ``execute_runspec``.

A :class:`RunTrace` lives for exactly one simulated run, on whichever
process executes it.  While armed it:

* watches the platform's nominated signals through a bounded
  :class:`~repro.kernel.trace.Tracer` (ring buffers, so a livelocked
  run cannot grow memory without bound);
* sits on the detection hook bus (:mod:`repro.observe.hooks`)
  collecting watchdog/ECC/lockstep events, capped at the configured
  event budget — overflow is counted, not silently lost.

``finalize`` then folds in the stressor's applied-injection log and
the faulty-vs-golden comparison and produces the picklable
:class:`~repro.observe.digest.TraceDigest`; in ``full`` mode it also
spills the complete ring histories to one JSONL file per run.
Everything recorded is keyed to *simulation* time — never wall clock —
so digests are reproducible across backends.
"""

from __future__ import annotations

import json
import os
import typing as _t

from ..kernel.trace import Tracer
from . import hooks
from .config import TraceConfig
from .digest import TraceDigest
from .events import (
    CLASSIFICATION,
    DETECTION,
    DEVIATION,
    INJECTION,
    TraceEvent,
    sort_events,
)


class RunTrace:
    def __init__(self, config: TraceConfig, index: int, seed: int):
        self.config = config
        self.index = index
        self.seed = seed
        self.tracer: _t.Optional[Tracer] = None
        self._sim = None
        self._armed = False
        self._detections: _t.List[TraceEvent] = []
        self._dropped = 0

    # -- lifecycle ----------------------------------------------------------

    def arm(self, sim, signals: _t.Mapping[str, _t.Any]) -> None:
        """Start recording: watch *signals* and join the detection bus.

        *signals* maps signal name -> kernel signal; iteration order is
        normalized by sorting so every backend watches identically.
        """
        self._sim = sim
        self.tracer = Tracer(capacity=self.config.ring_capacity)
        for name in sorted(signals):
            self.tracer.watch(signals[name])
        hooks.push_sink(self)
        self._armed = True

    def disarm(self) -> None:
        """Stop recording; safe to call more than once."""
        if not self._armed:
            return
        self._armed = False
        hooks.pop_sink(self)
        if self.tracer is not None:
            self.tracer.close()

    # -- hook-bus sink protocol ---------------------------------------------

    def record_detection(
        self, time: int, source: str, mechanism: str, label: str = ""
    ) -> None:
        if len(self._detections) >= self.config.max_events:
            self._dropped += 1
            return
        full_label = f"{mechanism}:{label}" if label else mechanism
        self._detections.append(TraceEvent(time, DETECTION, source, full_label))

    def preload_detections(
        self, detections: _t.Iterable[_t.Tuple[int, str, str, str]]
    ) -> None:
        """Replay detections recorded *before* this trace was armed.

        Snapshot-fork execution simulates the shared pre-injection
        prefix once, with a :class:`PrefixDetectionSink` on the hook
        bus; each forked run replays the collected prefix detections
        through :meth:`record_detection` before arming, so the event
        budget and ordering behave exactly as if this recorder had been
        listening from time zero (as it is on a fresh run).
        """
        for time, source, mechanism, label in detections:
            self.record_detection(time, source, mechanism, label)

    # -- digest assembly ----------------------------------------------------

    def finalize(
        self,
        stressor=None,
        observation: _t.Optional[_t.Mapping[str, _t.Any]] = None,
        golden: _t.Optional[_t.Mapping[str, _t.Any]] = None,
        outcome: _t.Optional[str] = None,
        partial: bool = False,
    ) -> TraceDigest:
        """Assemble the digest; the recorder is disarmed as a side
        effect."""
        self.disarm()
        end_time = self._sim.now if self._sim is not None else 0
        events: _t.List[TraceEvent] = []

        first_injection: _t.Optional[int] = None
        if stressor is not None:
            for applied in stressor.applied:
                events.append(
                    TraceEvent(
                        applied.time,
                        INJECTION,
                        applied.target_path,
                        applied.descriptor.name,
                    )
                )
                if first_injection is None or applied.time < first_injection:
                    first_injection = applied.time

        events.extend(self._signal_deviations(first_injection, end_time))
        events.extend(
            self._observation_deviations(observation, golden, end_time)
        )
        events.extend(self._detections)
        if outcome is not None and not partial:
            events.append(TraceEvent(end_time, CLASSIFICATION, "run", outcome))

        ordered = sort_events(events)
        dropped = self._dropped
        if len(ordered) > self.config.max_events:
            dropped += len(ordered) - self.config.max_events
            ordered = ordered[: self.config.max_events]

        digest = TraceDigest(
            index=self.index,
            seed=self.seed,
            events=tuple(ordered),
            outcome=outcome,
            partial=partial,
            dropped_events=dropped,
        )
        if self.config.mode == "full" and self.config.spill_dir:
            self._spill(digest)
        return digest

    def _signal_deviations(
        self, first_injection: _t.Optional[int], end_time: int
    ) -> _t.List[TraceEvent]:
        """Watched signals whose final value differs from golden.

        The deviation is stamped at its *onset*: the first recorded
        change at or after the first injection that moved the signal
        away from the golden final value (falling back to the run end
        when the ring already overflowed past the onset).
        """
        if self.tracer is None:
            return []
        golden_finals = dict(self.config.golden_signals)
        deviations: _t.List[TraceEvent] = []
        for name in self.tracer.names:
            if name not in golden_finals:
                continue
            history = self.tracer.history(name)
            if not history:
                continue
            final = history[-1].value
            expected = golden_finals[name]
            if final == expected:
                continue
            onset = end_time
            for change in history:
                if first_injection is not None and change.time < first_injection:
                    continue
                if change.value != expected:
                    onset = change.time
                    break
            deviations.append(
                TraceEvent(
                    onset, DEVIATION, name, f"{expected!r}->{final!r}"
                )
            )
        return deviations

    @staticmethod
    def _observation_deviations(
        observation: _t.Optional[_t.Mapping[str, _t.Any]],
        golden: _t.Optional[_t.Mapping[str, _t.Any]],
        end_time: int,
    ) -> _t.List[TraceEvent]:
        """Observation probes that differ from golden, stamped at run
        end (probes are sampled post-run, they carry no onset time)."""
        if observation is None or golden is None:
            return []
        deviations = []
        for key in sorted(golden):
            faulty_value = observation.get(key)
            golden_value = golden.get(key)
            if faulty_value != golden_value:
                deviations.append(
                    TraceEvent(
                        end_time,
                        DEVIATION,
                        f"obs:{key}",
                        f"{golden_value!r}->{faulty_value!r}",
                    )
                )
        return deviations

    def _spill(self, digest: TraceDigest) -> None:
        """Write the full trace (ring histories + events) as one JSONL
        file per run under the campaign trace directory."""
        os.makedirs(self.config.spill_dir, exist_ok=True)
        path = os.path.join(
            self.config.spill_dir, f"run-{self.index:06d}.jsonl"
        )
        with open(path, "w") as handle:
            meta = {
                "type": "meta",
                "schema": digest.schema,
                "index": digest.index,
                "seed": digest.seed,
                "outcome": digest.outcome,
                "partial": digest.partial,
            }
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            if self.tracer is not None:
                for name in self.tracer.names:
                    line = {
                        "type": "signal",
                        "name": name,
                        "dropped": self.tracer.dropped(name),
                        "changes": [
                            [change.time, _jsonable_value(change.value)]
                            for change in self.tracer.history(name)
                        ],
                    }
                    handle.write(json.dumps(line, sort_keys=True) + "\n")
            for event in digest.events:
                handle.write(
                    json.dumps(
                        {"type": "event", "event": event.to_jsonable()},
                        sort_keys=True,
                    )
                    + "\n"
                )


class PrefixDetectionSink:
    """Hook-bus sink that buffers raw detections for later replay.

    Armed around the shared prefix of a snapshot-fork group; the
    collected tuples seed every forked run's :class:`RunTrace` via
    :meth:`RunTrace.preload_detections`.  Unbounded on purpose — the
    per-run event budget is applied at replay time, where it matches
    the fresh-run accounting.
    """

    def __init__(self):
        self.detections: _t.List[_t.Tuple[int, str, str, str]] = []

    def record_detection(
        self, time: int, source: str, mechanism: str, label: str = ""
    ) -> None:
        self.detections.append((time, source, mechanism, label))


def _jsonable_value(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def planned_digest(
    index: int,
    seed: int,
    scenario,
    outcome: _t.Optional[str] = None,
) -> TraceDigest:
    """A partial digest synthesized from the *plan* alone.

    Used by the parent process when a worker died or hung before it
    could report: the injections the scenario *would* apply (at their
    scheduled times) are the only evidence left, so record those and
    mark the digest partial.
    """
    events = [
        TraceEvent(
            injection.time, INJECTION, injection.target_path,
            injection.descriptor.name,
        )
        for injection in scenario.injections
    ]
    return TraceDigest(
        index=index,
        seed=seed,
        events=tuple(sort_events(events)),
        outcome=outcome,
        partial=True,
    )
