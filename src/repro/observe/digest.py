"""The compact per-run trace that crosses the pickle boundary.

A :class:`TraceDigest` is what a worker process sends home: the
time-ordered event sequence (injections, deviations, detections,
classification) plus just enough identity (run index, seed) to join it
back to its :class:`~repro.core.runspec.RunSpec`.  It deliberately
contains **no wall-clock data and no attempt counts** — only
simulation-deterministic content — so the same seed produces the same
digest bytes whether the run executed serially, in a pool worker, on a
retry after a sibling crashed, or was replayed from a checkpoint.

``partial=True`` marks digests from runs that never reached a clean
verdict (deadline timeouts, raising platforms, crashed workers): the
events up to the interruption are kept — a hung-run post-mortem has
evidence, not a hole.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from .events import TRACE_SCHEMA_VERSION, INJECTION, DEVIATION, DETECTION, TraceEvent


@dataclasses.dataclass(frozen=True)
class TraceDigest:
    index: int
    seed: int
    events: _t.Tuple[TraceEvent, ...] = ()
    outcome: _t.Optional[str] = None  # Outcome name, never its ordinal
    partial: bool = False
    dropped_events: int = 0
    schema: int = TRACE_SCHEMA_VERSION

    # -- derived views ------------------------------------------------------

    def _of_kind(self, kind: str) -> _t.List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    @property
    def injections(self) -> _t.List[TraceEvent]:
        return self._of_kind(INJECTION)

    @property
    def deviations(self) -> _t.List[TraceEvent]:
        return self._of_kind(DEVIATION)

    @property
    def detections(self) -> _t.List[TraceEvent]:
        return self._of_kind(DETECTION)

    @property
    def fault_sites(self) -> _t.List[str]:
        """Unique ``target_path:descriptor`` sites, injection order.

        Matches the basic-event naming of
        :func:`repro.core.report.hazard_cut_sets`, so digests feed the
        fault-tree synthesis directly.
        """
        seen: _t.Dict[str, None] = {}
        for event in self.injections:
            seen.setdefault(f"{event.source}:{event.label}", None)
        return list(seen)

    @property
    def first_injection_time(self) -> _t.Optional[int]:
        times = [event.time for event in self.injections]
        return min(times) if times else None

    @property
    def first_detection_time(self) -> _t.Optional[int]:
        times = [event.time for event in self.detections]
        return min(times) if times else None

    @property
    def detection_latency(self) -> _t.Optional[int]:
        """Sim-time from first injection to first detection, if both
        happened."""
        injected = self.first_injection_time
        detected = self.first_detection_time
        if injected is None or detected is None:
            return None
        return detected - injected

    # -- serialization ------------------------------------------------------

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "schema": self.schema,
            "index": self.index,
            "seed": self.seed,
            "events": [event.to_jsonable() for event in self.events],
            "outcome": self.outcome,
            "partial": self.partial,
            "dropped_events": self.dropped_events,
        }

    @classmethod
    def from_jsonable(cls, data: _t.Dict[str, _t.Any]) -> "TraceDigest":
        schema = data.get("schema", 1)
        if schema > TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace digest schema {schema} is newer than supported "
                f"{TRACE_SCHEMA_VERSION}"
            )
        return cls(
            index=data["index"],
            seed=data["seed"],
            events=tuple(
                TraceEvent.from_jsonable(event) for event in data["events"]
            ),
            outcome=data.get("outcome"),
            partial=bool(data.get("partial", False)),
            dropped_events=int(data.get("dropped_events", 0)),
            schema=schema,
        )

    def canonical(self) -> str:
        """Canonical JSON encoding — the byte-equality currency of the
        serial-vs-parallel equivalence tests."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )
