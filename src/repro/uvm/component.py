"""UVM-style component hierarchy and phasing.

The paper builds its fault-analysis methodology on UVM testbenches
(Sec. 3.3): reusable agents, monitors, and scoreboards around a DUT,
extended with a *stressor* and *injectors*.  This module provides the
component base and the phase engine; the concrete testbench roles live
in sibling modules.

Phases, in order (mirroring UVM's common phases):

1. ``build_phase``    — construct children (top-down).
2. ``connect_phase``  — bind ports/sockets (bottom-up).
3. ``run_phase``      — optional generator, spawned as a kernel
   process; all run phases execute concurrently in simulated time.
4. ``extract_phase``  — collect results (bottom-up).
5. ``check_phase``    — self-checks; failures raise (bottom-up).
6. ``report_phase``   — produce a report dict (bottom-up).
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module, Simulator


class UvmComponent(Module):
    """Base class for every testbench component."""

    def __init__(self, name: str, parent=None, sim=None):
        super().__init__(name, parent=parent, sim=sim)
        self._run_process = None

    # -- phase hooks (override as needed) -----------------------------------

    def build_phase(self) -> None:
        """Construct child components."""

    def connect_phase(self) -> None:
        """Bind ports, sockets, and analysis connections."""

    def run_phase(self) -> _t.Optional[_t.Generator]:
        """Return a generator to be run as this component's process."""
        return None

    def extract_phase(self) -> None:
        """Collect data from the DUT and testbench after run."""

    def check_phase(self) -> None:
        """Raise on inconsistencies."""

    def report_phase(self) -> _t.Dict[str, _t.Any]:
        """Return this component's report contribution."""
        return {}

    # -- traversal helpers ------------------------------------------------------

    def uvm_children(self) -> _t.List["UvmComponent"]:
        return [c for c in self.children if isinstance(c, UvmComponent)]


class PhaseRunner:
    """Executes the UVM phase schedule on a component tree."""

    def __init__(self, top: UvmComponent):
        self.top = top
        self.sim: Simulator = top.sim
        self.reports: _t.Dict[str, _t.Dict] = {}

    def _top_down(self) -> _t.Iterator[UvmComponent]:
        stack = [self.top]
        while stack:
            component = stack.pop(0)
            yield component
            stack = component.uvm_children() + stack

    def _bottom_up(self) -> _t.Iterator[UvmComponent]:
        return reversed(list(self._top_down()))

    def elaborate(self) -> None:
        """Run build (top-down, re-walking for freshly built children)
        and connect (bottom-up)."""
        built: _t.Set[int] = set()
        # Building creates new children, so iterate to a fixpoint.
        while True:
            pending = [
                c for c in self._top_down() if id(c) not in built
            ]
            if not pending:
                break
            for component in pending:
                component.build_phase()
                built.add(id(component))
        for component in self._bottom_up():
            component.connect_phase()

    def start_run_phases(self) -> None:
        for component in self._top_down():
            body = component.run_phase()
            if body is not None:
                component._run_process = component.process(
                    body, name="run_phase"
                )

    def finish(self) -> _t.Dict[str, _t.Dict]:
        """Extract, check, and report; returns reports by full name."""
        for component in self._bottom_up():
            component.extract_phase()
        for component in self._bottom_up():
            component.check_phase()
        for component in self._bottom_up():
            report = component.report_phase()
            if report:
                self.reports[component.full_name] = report
        return self.reports


def run_test(
    top: UvmComponent, duration: _t.Optional[int] = None
) -> _t.Dict[str, _t.Dict]:
    """The ``run_test()`` entry point: elaborate, simulate, report."""
    runner = PhaseRunner(top)
    runner.elaborate()
    runner.start_run_phases()
    top.sim.run(until=duration)
    return runner.finish()
