"""UVM-style testbench library (substrate S6)."""

from .agent import AnalysisPort, UvmAgent, UvmDriver, UvmMonitor
from .can_agent import (
    BabblingDriver,
    CanAgent,
    CanDriver,
    CanFrameItem,
    CanRxMonitor,
    PeriodicBroadcastSequence,
)
from .component import PhaseRunner, UvmComponent, run_test
from .config_db import ConfigDb, config_db
from .coverage import Bin, Covergroup, Coverpoint, Cross, range_bins
from .factory import UvmFactory, factory
from .scoreboard import Mismatch, UvmScoreboard
from .sequence import Sequence, SequenceItem, Sequencer

__all__ = [
    "AnalysisPort",
    "BabblingDriver",
    "CanAgent",
    "CanDriver",
    "CanFrameItem",
    "CanRxMonitor",
    "PeriodicBroadcastSequence",
    "UvmAgent",
    "UvmDriver",
    "UvmMonitor",
    "PhaseRunner",
    "UvmComponent",
    "run_test",
    "ConfigDb",
    "config_db",
    "Bin",
    "Covergroup",
    "Coverpoint",
    "Cross",
    "range_bins",
    "UvmFactory",
    "factory",
    "Mismatch",
    "UvmScoreboard",
    "Sequence",
    "SequenceItem",
    "Sequencer",
]
