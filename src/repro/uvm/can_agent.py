"""A reusable UVM agent for the CAN interface.

The concrete demonstration of Sec. 2.3's reuse story: sequences,
driver, and monitor for CAN traffic packaged once and reused across
environments — and of Sec. 3.3's extension hook: the same agent serves
nominal verification and fault campaigns, because wire-level injectors
attach to the bus without touching the agent.

Components:

* :class:`CanFrameItem` — the sequence item (id, payload).
* :class:`CanDriver` — pulls items, sends them through a
  :class:`~repro.hw.can.CanNode`, and paces by the frame's wire time.
* :class:`CanRxMonitor` — republishes every frame its node receives on
  an analysis port.
* :class:`CanAgentPkg.register` — factory registration so environments
  can override the driver (e.g. with a babbling-idiot variant) by name.
"""

from __future__ import annotations

import typing as _t

from ..hw.can import CanBus, CanFrame, CanNode
from .agent import UvmAgent, UvmDriver, UvmMonitor
from .factory import UvmFactory, factory as default_factory
from .sequence import Sequence, SequenceItem


class CanFrameItem(SequenceItem):
    """One frame to transmit."""

    def __init__(self, can_id: int, data: bytes):
        super().__init__("can_frame")
        self.can_id = can_id
        self.data = bytes(data)


class PeriodicBroadcastSequence(Sequence):
    """N frames of one message id with a payload counter and a gap."""

    def __init__(self, can_id: int, count: int, gap: int):
        super().__init__(f"broadcast_{can_id:#x}")
        self.can_id = can_id
        self.count = count
        self.gap = gap

    def body(self):
        for index in range(self.count):
            yield CanFrameItem(self.can_id, bytes([index & 0xFF]))
            yield self.gap


class CanDriver(UvmDriver):
    """Sends sequence items through the agent's node."""

    def __init__(self, name: str, parent, node: CanNode):
        super().__init__(name, parent)
        self.node = node

    def drive_item(self, item: CanFrameItem):
        frame = CanFrame(item.can_id, item.data)
        self.node.send(frame)
        # Pace at least one frame time so the queue reflects the wire.
        yield frame.bit_length * self.node.bus.bit_time


class BabblingDriver(CanDriver):
    """A faulty driver override: repeats every frame three times.

    Swapping this in via a factory override turns a nominal testbench
    into a babbling-node stress test without editing the environment —
    the UVM reuse mechanism the paper leans on.
    """

    def drive_item(self, item: CanFrameItem):
        for _ in range(3):
            yield from super().drive_item(item)


class CanRxMonitor(UvmMonitor):
    """Publishes every received frame as a :class:`CanFrameItem`."""

    def __init__(self, name: str, parent, node: CanNode):
        super().__init__(name, parent)
        self.node = node
        node.on_receive.append(self._observed)
        self.frames_observed = 0

    def _observed(self, frame: CanFrame) -> None:
        self.frames_observed += 1
        item = CanFrameItem(frame.can_id, bytes(frame.data))
        item.timestamp = frame.timestamp
        self.analysis_port.write(item)


class CanAgent(UvmAgent):
    """Sequencer + (factory-created) driver + monitor on one node.

    ``driver_type`` names the registered driver class, so tests swap
    implementations with ``factory.set_type_override``.
    """

    def __init__(
        self,
        name: str,
        parent,
        bus: CanBus,
        active: bool = True,
        accept: _t.Optional[_t.Callable[[int], bool]] = None,
        driver_type: str = "CanDriver",
        factory: _t.Optional[UvmFactory] = None,
    ):
        super().__init__(name, parent, active=active)
        self.bus = bus
        self.accept = accept
        self.driver_type = driver_type
        self.factory = factory if factory is not None else default_factory
        self.node: _t.Optional[CanNode] = None

    def build_phase(self) -> None:
        super().build_phase()
        self.node = CanNode(
            "node", parent=self, bus=self.bus, accept=self.accept
        )
        self.monitor = CanRxMonitor("monitor", self, self.node)
        if self.active:
            self.driver = self.factory.create(
                self.driver_type,
                "driver",
                self,
                self.node,
                instance_path=self.full_name,
            )


def register(factory: UvmFactory) -> None:
    """Register the CAN agent components with *factory*."""
    for cls in (CanDriver, BabblingDriver):
        if not factory.is_registered(cls.__name__):
            factory.register(cls)
