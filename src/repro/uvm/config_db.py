"""Hierarchical configuration database (``uvm_config_db`` equivalent).

Entries are keyed by (path glob, field name); lookups resolve against a
component's full hierarchical name, most-specific (longest glob) match
winning.  The stress-test campaigns use this to parameterise stressors
per environment instance without plumbing constructor arguments.
"""

from __future__ import annotations

import fnmatch
import typing as _t


class ConfigDb:
    """A (glob path, field) -> value store."""

    def __init__(self):
        self._entries: _t.List[_t.Tuple[str, str, _t.Any]] = []

    def set(self, path_glob: str, field: str, value: _t.Any) -> None:
        self._entries.append((path_glob, field, value))

    def get(
        self, path: str, field: str, default: _t.Any = None
    ) -> _t.Any:
        """Most-specific match for (path, field); *default* if none."""
        best: _t.Optional[_t.Tuple[int, int, _t.Any]] = None
        for index, (glob, entry_field, value) in enumerate(self._entries):
            if entry_field != field:
                continue
            if not fnmatch.fnmatch(path, glob):
                continue
            specificity = len(glob.replace("*", ""))
            candidate = (specificity, index, value)
            if best is None or candidate[:2] >= best[:2]:
                best = candidate
        if best is None:
            return default
        return best[2]

    def exists(self, path: str, field: str) -> bool:
        sentinel = object()
        return self.get(path, field, sentinel) is not sentinel

    def clear(self) -> None:
        self._entries.clear()


#: The default database, like UVM's singleton.
config_db = ConfigDb()
