"""Functional coverage: covergroups, coverpoints, bins, crosses.

Sec. 3.4 makes coverage the steering wheel of error-effect simulation:
"intelligent coverage models are required to measure the completeness
of the error effect simulation", and injection strategy "should be
geared towards coverage closure".  These are plain-Python equivalents
of SystemVerilog covergroups, shared by functional testbenches and the
fault-space coverage model in :mod:`repro.core.coverage`.
"""

from __future__ import annotations

import typing as _t


class Bin:
    """One named bin: an explicit value set or an inclusive range."""

    def __init__(
        self,
        name: str,
        values: _t.Optional[_t.Iterable] = None,
        low: _t.Optional[float] = None,
        high: _t.Optional[float] = None,
    ):
        if values is None and low is None and high is None:
            raise ValueError(f"bin {name!r} needs values or a range")
        self.name = name
        self.values = frozenset(values) if values is not None else None
        self.low = low
        self.high = high
        self.hits = 0

    def matches(self, value) -> bool:
        if self.values is not None:
            return value in self.values
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    @property
    def covered(self) -> bool:
        return self.hits > 0


class Coverpoint:
    """Samples one expression into bins."""

    def __init__(
        self,
        name: str,
        bins: _t.Sequence[Bin],
        extract: _t.Optional[_t.Callable[[_t.Any], _t.Any]] = None,
    ):
        if not bins:
            raise ValueError(f"coverpoint {name!r} needs bins")
        names = [b.name for b in bins]
        if len(set(names)) != len(names):
            raise ValueError(f"coverpoint {name!r} has duplicate bin names")
        self.name = name
        self.bins = list(bins)
        self.extract = extract
        self.samples = 0
        self.misses = 0  # samples matching no bin

    def sample(self, subject) -> None:
        value = self.extract(subject) if self.extract else subject
        self.samples += 1
        hit_any = False
        for bin_ in self.bins:
            if bin_.matches(value):
                bin_.hits += 1
                hit_any = True
        if not hit_any:
            self.misses += 1

    @property
    def coverage(self) -> float:
        covered = sum(1 for b in self.bins if b.covered)
        return covered / len(self.bins)

    def uncovered_bins(self) -> _t.List[str]:
        return [b.name for b in self.bins if not b.covered]


class Cross:
    """Cross coverage of two or more coverpoints.

    Tracks which *tuples of bin names* have been hit together.  The
    goal is the full cartesian product of the member points' bins.
    """

    def __init__(self, name: str, points: _t.Sequence[Coverpoint]):
        if len(points) < 2:
            raise ValueError("a cross needs at least two coverpoints")
        self.name = name
        self.points = list(points)
        self.hit_tuples: _t.Set[_t.Tuple[str, ...]] = set()

    def sample(self, subjects: _t.Sequence) -> None:
        """Sample all member points with their subjects and record the
        cross tuple(s) hit."""
        if len(subjects) != len(self.points):
            raise ValueError("one subject per coverpoint required")
        names: _t.List[_t.List[str]] = []
        for point, subject in zip(self.points, subjects):
            point.sample(subject)
            value = point.extract(subject) if point.extract else subject
            names.append(
                [b.name for b in point.bins if b.matches(value)]
            )
        # Cartesian product of simultaneously-hit bins.
        tuples: _t.List[_t.Tuple[str, ...]] = [()]
        for options in names:
            tuples = [t + (o,) for t in tuples for o in options]
        self.hit_tuples.update(tuples)

    @property
    def goal_size(self) -> int:
        size = 1
        for point in self.points:
            size *= len(point.bins)
        return size

    @property
    def coverage(self) -> float:
        return len(self.hit_tuples) / self.goal_size


class Covergroup:
    """A named collection of coverpoints and crosses."""

    def __init__(self, name: str):
        self.name = name
        self.coverpoints: _t.Dict[str, Coverpoint] = {}
        self.crosses: _t.Dict[str, Cross] = {}

    def add_coverpoint(self, point: Coverpoint) -> Coverpoint:
        if point.name in self.coverpoints:
            raise ValueError(f"duplicate coverpoint {point.name!r}")
        self.coverpoints[point.name] = point
        return point

    def add_cross(self, cross: Cross) -> Cross:
        if cross.name in self.crosses:
            raise ValueError(f"duplicate cross {cross.name!r}")
        self.crosses[cross.name] = cross
        return cross

    def sample(self, **subjects) -> None:
        """Sample named coverpoints: ``group.sample(addr=..., cmd=...)``."""
        for name, subject in subjects.items():
            self.coverpoints[name].sample(subject)

    @property
    def coverage(self) -> float:
        """Mean coverage over all points and crosses."""
        parts = [p.coverage for p in self.coverpoints.values()]
        parts += [c.coverage for c in self.crosses.values()]
        return sum(parts) / len(parts) if parts else 0.0

    def report(self) -> _t.Dict[str, float]:
        report = {
            f"coverpoint.{name}": point.coverage
            for name, point in self.coverpoints.items()
        }
        report.update(
            {
                f"cross.{name}": cross.coverage
                for name, cross in self.crosses.items()
            }
        )
        report["total"] = self.coverage
        return report


def range_bins(
    name_prefix: str, low: int, high: int, count: int
) -> _t.List[Bin]:
    """*count* equal-width range bins spanning [low, high]."""
    if count < 1 or high <= low:
        raise ValueError("need a positive bin count and non-empty range")
    width = (high - low) / count
    bins = []
    for i in range(count):
        lo = low + i * width
        hi = high if i == count - 1 else low + (i + 1) * width - 1e-12
        bins.append(Bin(f"{name_prefix}{i}", low=lo, high=hi))
    return bins
