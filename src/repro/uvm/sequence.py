"""Sequences, sequence items, and the sequencer.

Stimulus in UVM flows as *sequence items* pulled by a driver from a
*sequencer*, which arbitrates among running *sequences*.  The stressor
of Sec. 3.3 slots into exactly this machinery: it is a sequence (or a
driver override) whose items carry fault directives alongside nominal
stimulus.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Event


class SequenceItem:
    """Base class for stimulus items.

    Items are plain data records; subclasses add fields.  ``fields()``
    supports generic printing/comparison in scoreboards.
    """

    def __init__(self, name: str = "item"):
        self.name = name

    def fields(self) -> _t.Dict[str, _t.Any]:
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields().items())
        return f"{type(self).__name__}({inner})"


class Sequence:
    """A stream of sequence items.

    Subclasses override :meth:`body`, a generator yielding items::

        class WriteBurst(Sequence):
            def body(self):
                for address in range(0, 64, 4):
                    yield BusItem(command="write", address=address, data=...)

    Bodies may also yield integers/None to consume simulated time
    between items — the sequencer passes those through to the kernel.
    """

    def __init__(self, name: str = "seq"):
        self.name = name
        self.items_generated = 0

    def body(self) -> _t.Generator:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r})"


class Sequencer:
    """Arbitrates sequences and hands items to the driver.

    Drivers call ``yield from sequencer.get_next_item()`` inside their
    run phase; the call suspends until an item is available.  Sequences
    are executed in start order (no interleaving within one sequencer —
    the common automotive-testbench configuration).
    """

    def __init__(self, sim, name: str = "sequencer"):
        self.sim = sim
        self.name = name
        self._queue: _t.List[Sequence] = []
        self._active: _t.Optional[_t.Generator] = None
        self._active_seq: _t.Optional[Sequence] = None
        self._work = Event(sim, f"{name}.work")
        self._done_events: _t.Dict[int, Event] = {}
        self.items_issued = 0

    # -- sequence side ------------------------------------------------------

    def start_sequence(self, sequence: Sequence) -> Event:
        """Queue *sequence*; returns an event notified at completion."""
        self._queue.append(sequence)
        done = Event(self.sim, f"{self.name}.{sequence.name}.done")
        self._done_events[id(sequence)] = done
        self._work.notify(0)
        return done

    @property
    def idle(self) -> bool:
        return self._active is None and not self._queue

    # -- driver side ------------------------------------------------------------

    def get_next_item(self):
        """Generator: resolves to the next item (drive with yield from)."""
        while True:
            if self._active is None:
                if not self._queue:
                    yield self._work
                    continue
                self._active_seq = self._queue.pop(0)
                self._active = self._active_seq.body()
            try:
                produced = next(self._active)
            except StopIteration:
                done = self._done_events.pop(id(self._active_seq), None)
                if done is not None:
                    done.notify(0)
                self._active = None
                self._active_seq = None
                continue
            if isinstance(produced, SequenceItem):
                self._active_seq.items_generated += 1
                self.items_issued += 1
                return produced
            # Anything else is a wait condition from the sequence body
            # (inter-item delay); forward it to the kernel.
            yield produced

    def item_done(self) -> None:
        """Driver acknowledgement (kept for UVM API parity)."""
