"""The UVM factory: registered types with override support.

The factory is what gives UVM testbenches their "high reconfiguration
and reuse potential" (Sec. 2.3): a stress test replaces a nominal
driver with an error-injecting one by *override*, without touching the
environment that instantiates it.  Overrides may be global (by type) or
scoped to an instance path.
"""

from __future__ import annotations

import fnmatch
import typing as _t


class UvmFactory:
    """A registry of constructable testbench types."""

    def __init__(self):
        self._types: _t.Dict[str, type] = {}
        self._type_overrides: _t.Dict[str, str] = {}
        self._instance_overrides: _t.List[_t.Tuple[str, str, str]] = []

    # -- registration ------------------------------------------------------

    def register(self, cls: type, name: _t.Optional[str] = None) -> type:
        """Register *cls*; usable as a decorator."""
        key = name or cls.__name__
        self._types[key] = cls
        return cls

    def is_registered(self, name: str) -> bool:
        return name in self._types

    # -- overrides ----------------------------------------------------------

    def set_type_override(self, original: str, replacement: str) -> None:
        self._require(original)
        self._require(replacement)
        self._type_overrides[original] = replacement

    def set_instance_override(
        self, original: str, replacement: str, path_glob: str
    ) -> None:
        """Override only for instances whose full name matches the glob."""
        self._require(original)
        self._require(replacement)
        self._instance_overrides.append((original, replacement, path_glob))

    def clear_overrides(self) -> None:
        self._type_overrides.clear()
        self._instance_overrides.clear()

    def _require(self, name: str) -> None:
        if name not in self._types:
            raise KeyError(f"type {name!r} is not registered")

    # -- creation --------------------------------------------------------------

    def resolve(self, name: str, instance_path: str = "") -> type:
        """The type that *name* currently maps to at *instance_path*."""
        self._require(name)
        for original, replacement, glob in self._instance_overrides:
            if original == name and fnmatch.fnmatch(instance_path, glob):
                return self._types[replacement]
        seen = {name}
        while name in self._type_overrides:
            name = self._type_overrides[name]
            if name in seen:
                raise RuntimeError(f"override cycle at {name!r}")
            seen.add(name)
        return self._types[name]

    def create(
        self, name: str, *args, instance_path: str = "", **kwargs
    ):
        """Construct the (possibly overridden) type."""
        return self.resolve(name, instance_path)(*args, **kwargs)


#: The default factory, like UVM's singleton.
factory = UvmFactory()
