"""Drivers, monitors, agents, and analysis ports.

An *agent* bundles the three per-interface roles: the sequencer
(stimulus arbitration), the driver (sequence items -> DUT pin/socket
activity), and the monitor (DUT activity -> analysis items).  Monitors
publish through :class:`AnalysisPort`, to which scoreboards and
coverage collectors subscribe — the paper additionally hangs the
fault-error-failure classifier there (Sec. 3.3: "methodologies for
fault/error classification ... are required at the monitoring side of
the testbench").
"""

from __future__ import annotations

import typing as _t

from .component import UvmComponent
from .sequence import SequenceItem, Sequencer


class AnalysisPort:
    """Broadcast port: every written item reaches all subscribers."""

    def __init__(self, name: str = "ap"):
        self.name = name
        self._subscribers: _t.List[_t.Callable[[SequenceItem], None]] = []
        self.items_written = 0

    def connect(self, subscriber: _t.Callable[[SequenceItem], None]) -> None:
        self._subscribers.append(subscriber)

    def write(self, item) -> None:
        self.items_written += 1
        for subscriber in self._subscribers:
            subscriber(item)


class UvmDriver(UvmComponent):
    """Pulls items from a sequencer and drives the DUT.

    Subclasses override :meth:`drive_item`, a generator converting one
    item into DUT activity (socket calls, signal wiggles, waits).
    """

    def __init__(self, name: str, parent):
        super().__init__(name, parent=parent)
        self.sequencer: _t.Optional[Sequencer] = None
        self.items_driven = 0

    def drive_item(self, item: SequenceItem) -> _t.Generator:
        raise NotImplementedError

    def run_phase(self):
        if self.sequencer is None:
            raise RuntimeError(f"driver {self.full_name!r} has no sequencer")
        while True:
            item = yield from self.sequencer.get_next_item()
            yield from self.drive_item(item)
            self.items_driven += 1
            self.sequencer.item_done()


class UvmMonitor(UvmComponent):
    """Observes DUT activity and publishes analysis items."""

    def __init__(self, name: str, parent):
        super().__init__(name, parent=parent)
        self.analysis_port = AnalysisPort(f"{name}.ap")


class UvmAgent(UvmComponent):
    """Sequencer + driver + monitor for one interface.

    Subclasses override :meth:`build_phase` to construct their concrete
    driver/monitor types (usually through the factory) and
    :meth:`connect_phase` to bind them to the DUT.
    """

    def __init__(self, name: str, parent, active: bool = True):
        super().__init__(name, parent=parent)
        self.active = active
        self.sequencer: _t.Optional[Sequencer] = None
        self.driver: _t.Optional[UvmDriver] = None
        self.monitor: _t.Optional[UvmMonitor] = None

    def build_phase(self) -> None:
        if self.active and self.sequencer is None:
            self.sequencer = Sequencer(self.sim, f"{self.full_name}.sequencer")

    def connect_phase(self) -> None:
        if self.active and self.driver is not None:
            self.driver.sequencer = self.sequencer
