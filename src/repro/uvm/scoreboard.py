"""Scoreboards: reference-model comparison at the analysis layer.

The scoreboard receives *expected* items (from a reference model or the
stimulus side) and *actual* items (from a DUT monitor) and matches them
in order.  Mismatches and leftovers are the raw material of the
fault-effect classification: a corrupted-but-delivered transaction is a
value mismatch, a missing one a timeout/omission.
"""

from __future__ import annotations

import typing as _t

from .component import UvmComponent
from .sequence import SequenceItem


class Mismatch(_t.NamedTuple):
    expected: _t.Any
    actual: _t.Any
    detail: str


class UvmScoreboard(UvmComponent):
    """In-order compare of expected vs actual item streams.

    ``compare_fn(expected, actual) -> bool`` defaults to field-dict
    equality for :class:`SequenceItem` and plain ``==`` otherwise.
    ``strict_check`` makes :meth:`check_phase` raise on any mismatch or
    leftover — nominal regression behaviour; campaigns run non-strict
    and read the counters instead.
    """

    def __init__(
        self,
        name: str,
        parent,
        compare_fn: _t.Optional[_t.Callable[[_t.Any, _t.Any], bool]] = None,
        strict_check: bool = True,
    ):
        super().__init__(name, parent=parent)
        self.compare_fn = compare_fn or self._default_compare
        self.strict_check = strict_check
        self._expected: _t.List[_t.Any] = []
        self._actual: _t.List[_t.Any] = []
        self.matches = 0
        self.mismatches: _t.List[Mismatch] = []

    @staticmethod
    def _default_compare(expected, actual) -> bool:
        if isinstance(expected, SequenceItem) and isinstance(
            actual, SequenceItem
        ):
            return expected.fields() == actual.fields()
        return expected == actual

    # -- feeding ------------------------------------------------------------

    def write_expected(self, item) -> None:
        self._expected.append(item)
        self._try_match()

    def write_actual(self, item) -> None:
        self._actual.append(item)
        self._try_match()

    def _try_match(self) -> None:
        while self._expected and self._actual:
            expected = self._expected.pop(0)
            actual = self._actual.pop(0)
            if self.compare_fn(expected, actual):
                self.matches += 1
            else:
                self.mismatches.append(
                    Mismatch(expected, actual, "value mismatch")
                )

    # -- results ----------------------------------------------------------------

    @property
    def pending_expected(self) -> int:
        """Expected items never seen at the DUT (omissions)."""
        return len(self._expected)

    @property
    def pending_actual(self) -> int:
        """Actual items never predicted (commissions/spurious)."""
        return len(self._actual)

    @property
    def clean(self) -> bool:
        return (
            not self.mismatches
            and not self._expected
            and not self._actual
        )

    def check_phase(self) -> None:
        if self.strict_check and not self.clean:
            raise AssertionError(
                f"scoreboard {self.full_name}: "
                f"{len(self.mismatches)} mismatches, "
                f"{self.pending_expected} missing, "
                f"{self.pending_actual} spurious"
            )

    def report_phase(self) -> _t.Dict[str, _t.Any]:
        return {
            "matches": self.matches,
            "mismatches": len(self.mismatches),
            "missing": self.pending_expected,
            "spurious": self.pending_actual,
        }
