"""TLM-2.0-style generic payload.

The generic payload is the lingua franca of the virtual prototype: every
bus transaction — CPU load/store, DMA, CAN register access — travels as a
:class:`GenericPayload`.  Keeping the attribute set close to IEEE 1666
(command, address, data, byte enables, response status, DMI hint,
extensions) means models written against this layer translate directly
to/from real SystemC ones.

Fault relevance: transaction interceptors (``repro.core.injector``)
corrupt payloads in flight, so the payload also records an
``injected`` audit trail used by error-propagation tracking.
"""

from __future__ import annotations

import enum
import typing as _t


class Command(enum.Enum):
    """Transaction direction."""

    READ = "read"
    WRITE = "write"
    IGNORE = "ignore"


class Response(enum.Enum):
    """Transaction completion status, ordered roughly by severity."""

    INCOMPLETE = "incomplete"
    OK = "ok"
    ADDRESS_ERROR = "address_error"
    COMMAND_ERROR = "command_error"
    BURST_ERROR = "burst_error"
    BYTE_ENABLE_ERROR = "byte_enable_error"
    GENERIC_ERROR = "generic_error"

    @property
    def is_error(self) -> bool:
        return self not in (Response.OK, Response.INCOMPLETE)


class GenericPayload:
    """A memory-mapped bus transaction.

    ``data`` is a :class:`bytearray` so targets can fill read responses
    in place.  ``extensions`` carries protocol- or tool-specific side
    information (the CAN model and the fault tracker both use it).
    """

    __slots__ = (
        "command",
        "address",
        "data",
        "byte_enable",
        "streaming_width",
        "response",
        "dmi_allowed",
        "extensions",
        "injected",
    )

    def __init__(
        self,
        command: Command = Command.IGNORE,
        address: int = 0,
        data: _t.Optional[bytearray] = None,
        byte_enable: _t.Optional[bytes] = None,
        streaming_width: int = 0,
    ):
        self.command = command
        self.address = address
        self.data = bytearray() if data is None else data
        self.byte_enable = byte_enable
        self.streaming_width = streaming_width or len(self.data)
        self.response = Response.INCOMPLETE
        self.dmi_allowed = False
        self.extensions: dict = {}
        #: Names of injectors that touched this transaction (audit trail).
        self.injected: list = []

    # -- constructors ---------------------------------------------------

    @classmethod
    def read(cls, address: int, length: int) -> "GenericPayload":
        """A read request for *length* bytes at *address*."""
        return cls(Command.READ, address, bytearray(length))

    @classmethod
    def write(cls, address: int, data: _t.Union[bytes, bytearray]) -> "GenericPayload":
        """A write request carrying *data* to *address*."""
        return cls(Command.WRITE, address, bytearray(data))

    # -- word helpers (little-endian, as the ISS expects) ----------------

    @classmethod
    def read_word(cls, address: int, width: int = 4) -> "GenericPayload":
        return cls.read(address, width)

    @classmethod
    def write_word(cls, address: int, value: int, width: int = 4) -> "GenericPayload":
        return cls.write(address, value.to_bytes(width, "little"))

    @property
    def word(self) -> int:
        """The data interpreted as a little-endian unsigned integer."""
        return int.from_bytes(self.data, "little")

    @word.setter
    def word(self, value: int) -> None:
        self.data[:] = value.to_bytes(len(self.data), "little")

    # -- status helpers ---------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.response is Response.OK

    def set_ok(self) -> None:
        self.response = Response.OK

    def set_error(self, response: Response = Response.GENERIC_ERROR) -> None:
        if not response.is_error:
            raise ValueError(f"{response} is not an error response")
        self.response = response

    def clone(self) -> "GenericPayload":
        """Deep-enough copy for monitors (data buffer is copied)."""
        copy = GenericPayload(
            self.command,
            self.address,
            bytearray(self.data),
            self.byte_enable,
            self.streaming_width,
        )
        copy.response = self.response
        copy.dmi_allowed = self.dmi_allowed
        copy.extensions = dict(self.extensions)
        copy.injected = list(self.injected)
        return copy

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GenericPayload({self.command.value} @0x{self.address:x} "
            f"len={len(self.data)} {self.response.value})"
        )
