"""Initiator/target sockets and transport interfaces.

Two timing styles are supported, mirroring TLM-2.0 coding styles:

* **Loosely timed (LT)** — ``b_transport(payload, delay) -> delay``: a
  plain synchronous call chain from initiator through interconnect to
  target.  The returned *delay* is the accumulated transaction latency;
  the initiator accounts for it in its quantum keeper.  This is the fast
  path that makes long mission-profile campaigns feasible (Sec. 3.4).

* **Approximately timed (AT)** — ``at_transport(payload)``: a generator
  the initiator drives with ``yield from``; request and response phases
  each consume kernel time, so contention and interleaving are visible.

Sockets also carry *interceptor* chains — the hook the paper's injector
concept (Sec. 3.3) plugs into: a fault injector registers a callable
that may corrupt the payload without any change to initiator or target
model code.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from .payload import GenericPayload, Response


class DmiRegion:
    """A direct-memory-interface grant.

    Exposes the target's backing store for a address range so initiators
    can bypass transport calls entirely (the biggest LT speed lever).
    """

    __slots__ = ("start", "end", "store", "read_latency", "write_latency")

    def __init__(
        self,
        start: int,
        end: int,
        store: bytearray,
        read_latency: int = 0,
        write_latency: int = 0,
    ):
        if end <= start:
            raise ValueError("empty DMI region")
        self.start = start
        self.end = end
        self.store = store
        self.read_latency = read_latency
        self.write_latency = write_latency

    def contains(self, address: int, length: int = 1) -> bool:
        return self.start <= address and address + length <= self.end


class TargetSocket:
    """The target-side binding point.

    The owning model passes itself as *target*; it must implement
    ``b_transport(payload, delay) -> int`` and may implement
    ``at_latency(payload) -> (accept_delay, response_delay)`` and
    ``get_dmi(payload) -> DmiRegion | None``.
    """

    def __init__(self, owner: Module, name: str, target):
        self.owner = owner
        self.name = name
        self.target = target
        #: Callables fn(payload) applied to every inbound transaction.
        self.interceptors: list = []
        self.transaction_count = 0

    def deliver(self, payload: GenericPayload, delay: int) -> int:
        """Run interceptors then the target's blocking transport."""
        self.transaction_count += 1
        for interceptor in self.interceptors:
            interceptor(payload)
        return self.target.b_transport(payload, delay)

    def dmi(self, payload: GenericPayload) -> _t.Optional[DmiRegion]:
        get_dmi = getattr(self.target, "get_dmi", None)
        if get_dmi is None:
            return None
        return get_dmi(payload)

    def at_latency(self, payload: GenericPayload) -> _t.Tuple[int, int]:
        fn = getattr(self.target, "at_latency", None)
        if fn is None:
            return (0, 0)
        return fn(payload)


class InitiatorSocket:
    """The initiator-side binding point.

    Bound to exactly one :class:`TargetSocket` (typically a router's).
    """

    def __init__(self, owner: Module, name: str):
        self.owner = owner
        self.name = name
        self._peer: _t.Optional[TargetSocket] = None
        #: Callables fn(payload) applied to every outbound transaction
        #: before it leaves the initiator (external-fault injection).
        self.interceptors: list = []

    def bind(self, peer: TargetSocket) -> None:
        if self._peer is not None:
            raise RuntimeError(
                f"socket {self.owner.full_name}.{self.name} already bound"
            )
        self._peer = peer

    @property
    def bound(self) -> bool:
        return self._peer is not None

    # -- loosely timed ----------------------------------------------------

    def b_transport(self, payload: GenericPayload, delay: int = 0) -> int:
        """Forward *payload*; returns the accumulated latency."""
        if self._peer is None:
            raise RuntimeError(
                f"socket {self.owner.full_name}.{self.name} is unbound"
            )
        for interceptor in self.interceptors:
            interceptor(payload)
        return self._peer.deliver(payload, delay)

    def get_dmi(self, payload: GenericPayload) -> _t.Optional[DmiRegion]:
        """Request a DMI grant for the payload's address."""
        if self._peer is None:
            raise RuntimeError("unbound socket")
        return self._peer.dmi(payload)

    # -- approximately timed ------------------------------------------------

    def at_transport(self, payload: GenericPayload):
        """Generator: two-phase transaction with explicit kernel waits.

        Drive with ``yield from socket.at_transport(payload)`` inside a
        process.  Request-accept and response latencies come from the
        target's ``at_latency`` hook, so bus and target occupancy show up
        on the kernel timeline (contention-accurate, slower).
        """
        if self._peer is None:
            raise RuntimeError("unbound socket")
        for interceptor in self.interceptors:
            interceptor(payload)
        accept_delay, response_delay = self._peer.at_latency(payload)
        if accept_delay:
            yield accept_delay
        self._peer.deliver(payload, 0)
        if response_delay:
            yield response_delay
        if payload.response is Response.INCOMPLETE:
            payload.set_error(Response.GENERIC_ERROR)


class SimpleTarget:
    """Mixin giving targets a bound :class:`TargetSocket` in one line."""

    def make_target_socket(self, owner: Module, name: str = "tsock") -> TargetSocket:
        socket = TargetSocket(owner, name, self)
        return socket
