"""Address-decoding interconnect.

The :class:`Router` is the bus fabric of the virtual prototype: it owns
an address map of ``(base, size) -> TargetSocket`` entries, decodes each
inbound transaction, rebases the address, adds a per-hop latency, and
forwards.  Unmapped accesses complete with ``ADDRESS_ERROR`` — which the
error-effect classification treats as a *detected* fault, because real
buses raise precise aborts for them.
"""

from __future__ import annotations

import typing as _t

from ..kernel import Module
from .payload import GenericPayload, Response
from .sockets import DmiRegion, TargetSocket


class MapEntry:
    __slots__ = ("base", "size", "socket", "name")

    def __init__(self, base: int, size: int, socket: TargetSocket, name: str):
        self.base = base
        self.size = size
        self.socket = socket
        self.name = name

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class Router(Module):
    """A latency-annotated, address-decoding bus model.

    The router is itself a TLM target (exposes ``tsock``), so routers
    nest: an ECU-local bus can hang off a vehicle-level backbone.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        hop_latency: int = 10,
    ):
        super().__init__(name, parent=parent)
        self.hop_latency = hop_latency
        self._map: _t.List[MapEntry] = []
        self.tsock = TargetSocket(self, "tsock", self)
        self.decode_errors = 0
        self.forwarded = 0

    # -- construction -----------------------------------------------------

    def map_target(
        self, base: int, size: int, socket: TargetSocket, name: str = ""
    ) -> None:
        """Map ``[base, base+size)`` to *socket*; overlaps are rejected."""
        if size <= 0:
            raise ValueError("mapping size must be positive")
        entry = MapEntry(base, size, socket, name or socket.owner.full_name)
        for existing in self._map:
            if entry.base < existing.end and existing.base < entry.end:
                raise ValueError(
                    f"mapping {entry.name!r} [{base:#x},{base + size:#x}) "
                    f"overlaps {existing.name!r}"
                )
        self._map.append(entry)
        self._map.sort(key=lambda e: e.base)

    def decode(self, address: int) -> _t.Optional[MapEntry]:
        for entry in self._map:
            if entry.contains(address):
                return entry
        return None

    @property
    def address_map(self) -> _t.List[_t.Tuple[int, int, str]]:
        """The (base, size, name) rows of the decode table."""
        return [(e.base, e.size, e.name) for e in self._map]

    # -- TLM target interface ------------------------------------------------

    def b_transport(self, payload: GenericPayload, delay: int) -> int:
        entry = self.decode(payload.address)
        if entry is None or not entry.contains(
            payload.address + max(len(payload.data), 1) - 1
        ):
            self.decode_errors += 1
            payload.set_error(Response.ADDRESS_ERROR)
            return delay + self.hop_latency
        self.forwarded += 1
        original = payload.address
        payload.address -= entry.base
        try:
            return entry.socket.deliver(payload, delay + self.hop_latency)
        finally:
            payload.address = original

    def at_latency(self, payload: GenericPayload) -> _t.Tuple[int, int]:
        entry = self.decode(payload.address)
        if entry is None:
            return (self.hop_latency, 0)
        original = payload.address
        payload.address -= entry.base
        try:
            accept, resp = entry.socket.at_latency(payload)
        finally:
            payload.address = original
        return (accept + self.hop_latency, resp)

    def get_dmi(self, payload: GenericPayload) -> _t.Optional[DmiRegion]:
        entry = self.decode(payload.address)
        if entry is None:
            return None
        rebased = payload.clone()
        rebased.address -= entry.base
        region = entry.socket.dmi(rebased)
        if region is None:
            return None
        # Translate the grant back into the initiator's address space.
        return DmiRegion(
            region.start + entry.base,
            min(region.end + entry.base, entry.end),
            region.store,
            region.read_latency,
            region.write_latency,
        )
