"""Transaction-level modeling layer (substrate S2), TLM-2.0 style."""

from .payload import Command, GenericPayload, Response
from .router import MapEntry, Router
from .sockets import DmiRegion, InitiatorSocket, SimpleTarget, TargetSocket

__all__ = [
    "Command",
    "GenericPayload",
    "Response",
    "MapEntry",
    "Router",
    "DmiRegion",
    "InitiatorSocket",
    "SimpleTarget",
    "TargetSocket",
]
