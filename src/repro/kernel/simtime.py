"""Simulation time representation.

The kernel keeps time as a plain integer number of *time units*.  Like
SystemC's ``sc_time`` with a fixed resolution, this avoids any floating
point drift during long campaigns and makes event ordering exactly
reproducible.  The canonical resolution is one nanosecond; the helpers
below convert human-friendly quantities into kernel units.

Example::

    from repro.kernel import simtime as st

    deadline = st.ms(5)          # 5 milliseconds in kernel units
    st.format_time(deadline)     # '5ms'
"""

from __future__ import annotations

# One kernel time unit equals one nanosecond.
NS_PER_UNIT = 1

#: Largest representable time; used as an "infinite" horizon.
TIME_MAX = 2**63 - 1


def ns(value: float) -> int:
    """Convert *value* nanoseconds to kernel time units."""
    return round(value * NS_PER_UNIT)


def us(value: float) -> int:
    """Convert *value* microseconds to kernel time units."""
    return round(value * 1_000 * NS_PER_UNIT)


def ms(value: float) -> int:
    """Convert *value* milliseconds to kernel time units."""
    return round(value * 1_000_000 * NS_PER_UNIT)


def s(value: float) -> int:
    """Convert *value* seconds to kernel time units."""
    return round(value * 1_000_000_000 * NS_PER_UNIT)


def to_seconds(units: int) -> float:
    """Convert kernel time units back to seconds."""
    return units / (1_000_000_000 * NS_PER_UNIT)


_SCALES = (
    (1_000_000_000, "s"),
    (1_000_000, "ms"),
    (1_000, "us"),
    (1, "ns"),
)


def format_time(units: int) -> str:
    """Render kernel time units as the shortest exact human string.

    >>> format_time(5_000_000)
    '5ms'
    >>> format_time(1500)
    '1500ns'
    """
    if units == 0:
        return "0ns"
    for scale, suffix in _SCALES:
        if units % scale == 0:
            return f"{units // scale}{suffix}"
    return f"{units}ns"
