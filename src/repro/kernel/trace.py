"""Signal tracing and VCD export.

The paper's first advantage of VPs is observability: "in a VP it is
much easier to observe the impact of the error on the system and track
the error propagation" (Sec. 1).  The :class:`Tracer` makes that
concrete: it subscribes to any set of kernel signals, records every
committed value change with its timestamp, and can export the standard
VCD (value change dump) format any waveform viewer opens — so the
propagation of an injected error can literally be watched.
"""

from __future__ import annotations

import io
import typing as _t

from .signal import SignalBase


class Change(_t.NamedTuple):
    time: int
    value: _t.Any


class Tracer:
    """Records value changes of subscribed signals."""

    def __init__(self):
        self._signals: _t.List[SignalBase] = []
        self._changes: _t.Dict[str, _t.List[Change]] = {}

    def watch(self, signal: SignalBase) -> SignalBase:
        """Start tracing *signal* (its current value is the t=now
        baseline)."""
        if signal.name in self._changes:
            raise ValueError(f"already tracing {signal.name!r}")
        self._signals.append(signal)
        history = [Change(signal.sim.now, signal.read())]
        self._changes[signal.name] = history
        signal.observers.append(
            lambda sig, old, new: history.append(Change(sig.sim.now, new))
        )
        return signal

    def history(self, name: str) -> _t.List[Change]:
        return list(self._changes[name])

    def value_at(self, name: str, time: int):
        """The signal's value as of *time* (last change at or before)."""
        value = None
        for change in self._changes[name]:
            if change.time > time:
                break
            value = change.value
        return value

    @property
    def names(self) -> _t.List[str]:
        return [signal.name for signal in self._signals]

    # -- VCD export ---------------------------------------------------------

    @staticmethod
    def _vcd_value(value, identifier: str) -> str:
        if isinstance(value, bool):
            return f"{int(value)}{identifier}"
        if isinstance(value, int):
            return f"b{bin(value & (2**64 - 1))[2:]} {identifier}"
        if isinstance(value, float):
            return f"r{value} {identifier}"
        # Fallback: hash-stable scalar encoding for arbitrary objects.
        return f"s{str(value).replace(' ', '_')} {identifier}"

    def to_vcd(self, timescale: str = "1ns", comment: str = "vpsafe") -> str:
        """Render all traced signals as a VCD document."""
        out = io.StringIO()
        out.write(f"$comment {comment} $end\n")
        out.write(f"$timescale {timescale} $end\n")
        out.write("$scope module top $end\n")
        identifiers: _t.Dict[str, str] = {}
        for index, signal in enumerate(self._signals):
            identifier = self._identifier(index)
            identifiers[signal.name] = identifier
            kind = (
                "wire 1"
                if isinstance(signal.read(), bool)
                else "wire 64"
            )
            safe_name = signal.name.replace(" ", "_")
            out.write(f"$var {kind} {identifier} {safe_name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        events: _t.List[_t.Tuple[int, str]] = []
        for name, changes in self._changes.items():
            identifier = identifiers[name]
            for change in changes:
                events.append(
                    (change.time, self._vcd_value(change.value, identifier))
                )
        events.sort(key=lambda pair: pair[0])
        current_time: _t.Optional[int] = None
        for time, line in events:
            if time != current_time:
                out.write(f"#{time}\n")
                current_time = time
            out.write(f"{line}\n")
        return out.getvalue()

    @staticmethod
    def _identifier(index: int) -> str:
        # Printable VCD identifier characters: '!' (33) .. '~' (126).
        alphabet_size = 94
        chars = []
        index += 1
        while index:
            index, digit = divmod(index - 1, alphabet_size)
            chars.append(chr(33 + digit))
        return "".join(reversed(chars))

    def write_vcd(self, path: str, **kwargs) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_vcd(**kwargs))
