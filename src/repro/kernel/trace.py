"""Signal tracing and VCD export.

The paper's first advantage of VPs is observability: "in a VP it is
much easier to observe the impact of the error on the system and track
the error propagation" (Sec. 1).  The :class:`Tracer` makes that
concrete: it subscribes to any set of kernel signals, records every
committed value change with its timestamp, and can export the standard
VCD (value change dump) format any waveform viewer opens — so the
propagation of an injected error can literally be watched.

Two usage profiles share this machinery:

* **unbounded** (``capacity=None``, the default) — interactive debug
  and the integration tests: keep every change, export a full VCD;
* **bounded** (``capacity=N``) — the per-run observability layer
  (:mod:`repro.observe`): each signal keeps a ring buffer of its last
  *N* changes, so memory stays O(watched signals) no matter how active
  a faulty run gets.  Overflowed changes are counted per signal
  (:meth:`dropped`), never silently lost from the accounting.

Tracers attach observer callbacks to ``SignalBase.observers``; since
campaigns arm a tracer per run, the attachment is reversible —
:meth:`unwatch` detaches one signal (its recorded history is kept),
:meth:`close` detaches everything and is idempotent.
"""

from __future__ import annotations

import collections
import io
import re
import typing as _t

from .signal import SignalBase


class Change(_t.NamedTuple):
    time: int
    value: _t.Any


#: Characters VCD identifiers/reference names cannot safely contain:
#: whitespace splits the ``$var`` record, brackets collide with the
#: bit-select syntax some viewers parse, braces/parens trip others.
_VCD_UNSAFE = re.compile(r"[\s\[\]{}()<>]")


class Tracer:
    """Records value changes of subscribed signals.

    ``capacity`` bounds the per-signal history to a ring buffer of that
    many changes (``None`` keeps everything).
    """

    def __init__(self, capacity: _t.Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._signals: _t.List[SignalBase] = []
        self._changes: _t.Dict[str, _t.MutableSequence[Change]] = {}
        #: name -> (signal, attached observer), for detach.
        self._observers: _t.Dict[
            str, _t.Tuple[SignalBase, _t.Callable]
        ] = {}
        #: name -> changes recorded in total (baseline included), so
        #: ring overflow stays visible as ``seen - len(history)``.
        self._seen: _t.Dict[str, int] = {}

    def watch(self, signal: SignalBase) -> SignalBase:
        """Start tracing *signal* (its current value is the t=now
        baseline)."""
        if signal.name in self._changes:
            raise ValueError(f"already tracing {signal.name!r}")
        self._signals.append(signal)
        history: _t.MutableSequence[Change]
        if self.capacity is None:
            history = [Change(signal.sim.now, signal.read())]
        else:
            history = collections.deque(
                [Change(signal.sim.now, signal.read())],
                maxlen=self.capacity,
            )
        self._changes[signal.name] = history
        self._seen[signal.name] = 1
        name = signal.name

        def observer(sig, old, new):
            self._seen[name] += 1
            history.append(Change(sig.sim.now, new))

        signal.observers.append(observer)
        self._observers[name] = (signal, observer)
        return signal

    def unwatch(self, signal: _t.Union[SignalBase, str]) -> None:
        """Stop tracing a signal; its recorded history is retained.

        Detaches the tracer's observer from ``signal.observers`` — the
        lifecycle counterpart of :meth:`watch`, so a tracer armed for
        one run does not leak callbacks into the signal for the life
        of the platform.
        """
        name = signal if isinstance(signal, str) else signal.name
        if name not in self._changes:
            raise KeyError(f"not tracing {name!r}")
        attached = self._observers.pop(name, None)
        if attached is None:
            return  # already detached (unwatch after close)
        sig, observer = attached
        try:
            sig.observers.remove(observer)
        except ValueError:  # pragma: no cover - observer list mutated
            pass

    def close(self) -> None:
        """Detach every observer; histories stay readable.  Idempotent."""
        for name in list(self._observers):
            self.unwatch(name)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def history(self, name: str) -> _t.List[Change]:
        return list(self._changes[name])

    def dropped(self, name: str) -> int:
        """Changes of *name* lost to ring-buffer overflow."""
        return self._seen[name] - len(self._changes[name])

    def value_at(self, name: str, time: int):
        """The signal's value as of *time* (last change at or before)."""
        value = None
        for change in self._changes[name]:
            if change.time > time:
                break
            value = change.value
        return value

    @property
    def names(self) -> _t.List[str]:
        return [signal.name for signal in self._signals]

    # -- VCD export ---------------------------------------------------------

    @staticmethod
    def _vcd_value(value, identifier: str) -> str:
        if isinstance(value, bool):
            return f"{int(value)}{identifier}"
        if isinstance(value, int):
            return f"b{bin(value & (2**64 - 1))[2:]} {identifier}"
        if isinstance(value, float):
            return f"r{value} {identifier}"
        # Fallback: hash-stable scalar encoding for arbitrary objects.
        return f"s{str(value).replace(' ', '_')} {identifier}"

    def to_vcd(self, timescale: str = "1ns", comment: str = "vpsafe") -> str:
        """Render all traced signals as a VCD document."""
        out = io.StringIO()
        out.write(f"$comment {comment} $end\n")
        out.write(f"$timescale {timescale} $end\n")
        out.write("$scope module top $end\n")
        identifiers: _t.Dict[str, str] = {}
        for index, signal in enumerate(self._signals):
            identifier = self._identifier(index)
            identifiers[signal.name] = identifier
            kind = (
                "wire 1"
                if isinstance(signal.read(), bool)
                else "wire 64"
            )
            safe_name = _VCD_UNSAFE.sub("_", signal.name)
            out.write(f"$var {kind} {identifier} {safe_name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        events: _t.List[_t.Tuple[int, str]] = []
        for name, changes in self._changes.items():
            identifier = identifiers[name]
            for change in changes:
                events.append(
                    (change.time, self._vcd_value(change.value, identifier))
                )
        events.sort(key=lambda pair: pair[0])
        current_time: _t.Optional[int] = None
        for time, line in events:
            if time != current_time:
                out.write(f"#{time}\n")
                current_time = time
            out.write(f"{line}\n")
        return out.getvalue()

    @staticmethod
    def _identifier(index: int) -> str:
        # Printable VCD identifier characters: '!' (33) .. '~' (126).
        alphabet_size = 94
        chars = []
        index += 1
        while index:
            index, digit = divmod(index - 1, alphabet_size)
            chars.append(chr(33 + digit))
        return "".join(reversed(chars))

    def write_vcd(self, path: str, **kwargs) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_vcd(**kwargs))
