"""Simulation processes.

A process is a Python generator driven by the kernel.  Each ``yield``
hands a *wait condition* to the scheduler — an :class:`~repro.kernel.events.Event`,
a :class:`~repro.kernel.events.Timeout` (or bare integer), an
:class:`~repro.kernel.events.AnyOf` / :class:`~repro.kernel.events.AllOf`
composite, another :class:`Process` (join), or ``None`` (yield for one
delta cycle).  This mirrors SystemC's ``SC_THREAD`` + ``wait()`` style
while staying plain, debuggable Python.
"""

from __future__ import annotations

import typing as _t

from .events import AllOf, AnyOf, Event, Timeout

if _t.TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

#: Process lifecycle states.
CREATED = "created"
RUNNABLE = "runnable"
WAITING = "waiting"
FINISHED = "finished"
KILLED = "killed"


class ProcessError(RuntimeError):
    """Raised by the simulator when a process body raised an exception."""

    def __init__(self, process: "Process", original: BaseException):
        super().__init__(f"process {process.name!r} raised {original!r}")
        self.process = process
        self.original = original


class Process:
    """A kernel-driven coroutine.

    Not instantiated directly by user code; use
    :meth:`Simulator.spawn <repro.kernel.scheduler.Simulator.spawn>` or
    :meth:`Module.process <repro.kernel.module.Module.process>`.

    ``behavior`` may be a generator (the classic spawn style) or a
    zero-argument *factory* returning a fresh generator.  Factory-spawned
    processes are **restartable**: :meth:`restart` rebuilds the
    generator from scratch, which is what lets
    :meth:`Simulator.reset <repro.kernel.scheduler.Simulator.reset>`
    return a warm platform to its power-on state without re-running
    elaboration.
    """

    __slots__ = (
        "sim",
        "generator",
        "factory",
        "name",
        "state",
        "finished",
        "_resume_value",
        "_waiting_on",
        "_allof_remaining",
        "exception",
    )

    def __init__(self, sim: "Simulator", behavior, name: str):
        self.sim = sim
        if hasattr(behavior, "send"):
            self.generator = behavior
            self.factory: _t.Optional[_t.Callable] = None
        elif callable(behavior):
            self.factory = behavior
            self.generator = behavior()
            if not hasattr(self.generator, "send"):
                raise TypeError(
                    f"process factory for {name!r} returned "
                    f"{self.generator!r}, not a generator"
                )
        else:
            raise TypeError(
                f"process {name!r} needs a generator or a zero-arg "
                f"factory, got {behavior!r}"
            )
        self.name = name
        self.state = CREATED
        #: Fired (delta) when the process terminates; enables join.
        self.finished = Event(sim, f"{name}.finished")
        #: Value delivered to the generator on next resume (e.g. which
        #: event of an AnyOf fired).
        self._resume_value: _t.Any = None
        # Bookkeeping for composite waits so stale waiters are cleaned up.
        self._waiting_on: tuple = ()
        self._allof_remaining: set = set()
        self.exception: _t.Optional[BaseException] = None

    # -- scheduler interface -------------------------------------------

    def _step(self) -> None:
        """Advance the generator to its next wait condition."""
        if self.state in (FINISHED, KILLED):
            return
        self.state = RUNNABLE
        try:
            condition = self.generator.send(self._resume_value)
        except StopIteration:
            self._finish()
            return
        except BaseException as exc:  # noqa: BLE001 - reported to sim  # vp-lint: disable=VP007 - recorded as ProcessError and re-raised by Simulator.run; nothing is swallowed
            self.exception = exc
            self._finish()
            self.sim._report_process_error(ProcessError(self, exc))
            return
        self._resume_value = None
        try:
            self._suspend_on(condition)
        except TypeError as exc:
            self.exception = exc
            self._finish()
            self.sim._report_process_error(ProcessError(self, exc))

    def _suspend_on(self, condition: _t.Any) -> None:
        self.state = WAITING
        if condition is None:
            # Yield for one delta cycle.
            self.sim._schedule_delta_resume(self)
        elif isinstance(condition, int):
            self.sim._schedule_timed_resume(self, condition)
        elif isinstance(condition, Timeout):
            self.sim._schedule_timed_resume(self, condition.duration)
        elif isinstance(condition, Event):
            self._waiting_on = (condition,)
            condition._add_waiter(self)
        elif isinstance(condition, AnyOf):
            self._waiting_on = condition.events
            for event in condition.events:
                event._add_waiter(self)
        elif isinstance(condition, AllOf):
            self._waiting_on = condition.events
            self._allof_remaining = set(condition.events)
            for event in condition.events:
                event._add_waiter(self)
        elif isinstance(condition, Process):
            if condition.state in (FINISHED, KILLED):
                self.sim._schedule_delta_resume(self)
            else:
                self._waiting_on = (condition.finished,)
                condition.finished._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported wait "
                f"condition {condition!r}"
            )

    def _event_fired(self, event: Event) -> bool:
        """Called by the scheduler when *event* notified.

        Returns True when this process becomes runnable.
        """
        if self.state != WAITING:
            return False
        if self._allof_remaining:
            self._allof_remaining.discard(event)
            if self._allof_remaining:
                return False
            self._clear_waits()
            return True
        self._resume_value = event if len(self._waiting_on) > 1 else None
        self._clear_waits()
        return True

    def _clear_waits(self) -> None:
        for event in self._waiting_on:
            event._remove_waiter(self)
        self._waiting_on = ()
        self._allof_remaining = set()

    def _finish(self) -> None:
        if self.state in (FINISHED, KILLED):
            return
        self.state = FINISHED
        self._clear_waits()
        self.finished.notify(0)

    # -- user interface -------------------------------------------------

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if self.state in (FINISHED, KILLED):
            return
        self._clear_waits()
        self.generator.close()
        self.state = KILLED
        self.finished.notify(0)

    def restart(self) -> None:
        """Rebuild the generator from the spawn factory (warm reset).

        Only valid for factory-spawned processes; the kernel calls this
        from :meth:`Simulator.reset` with every queue about to be
        cleared, so no notification is emitted here.
        """
        if self.factory is None:
            raise TypeError(
                f"process {self.name!r} was spawned from a bare "
                f"generator and cannot restart"
            )
        self._clear_waits()
        self.generator.close()
        self.generator = self.factory()
        self.state = CREATED
        self._resume_value = None
        self.exception = None
        self.finished._waiters.clear()
        self.finished._pending_kind = None

    @property
    def alive(self) -> bool:
        return self.state not in (FINISHED, KILLED)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Process({self.name!r}, {self.state})"
