"""Temporal decoupling (loosely-timed simulation).

Section 3.4 of the paper singles out synchronisation overhead as the
dominant cost of event-driven VP simulation and names *temporal
decoupling* as the standard remedy.  The TLM-2.0 mechanism is the
*quantum keeper*: an initiator runs ahead of global simulation time in a
local time offset and only synchronises with the kernel when the offset
exceeds the global quantum.  Larger quanta buy speed at the price of
timing accuracy — the trade measured by ``bench_temporal_decoupling``.
"""

from __future__ import annotations

import contextlib
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class GlobalQuantum:
    """Process-wide default quantum, like ``tlm_global_quantum``."""

    _value: int = 1000

    @classmethod
    def set(cls, quantum: int) -> None:
        if quantum < 1:
            raise ValueError("quantum must be positive")
        cls._value = int(quantum)

    @classmethod
    def get(cls) -> int:
        return cls._value

    @classmethod
    @contextlib.contextmanager
    def scoped(cls, quantum: int) -> _t.Iterator[int]:
        """Temporarily set the global quantum, restoring it on exit.

        ``set()`` mutates process-wide state; a test or experiment that
        forgets to restore it silently re-times every loosely-timed model
        built afterwards.  ``scoped`` makes the mutation leak-proof::

            with GlobalQuantum.scoped(simtime.us(50)):
                cpu = Vp16Cpu(...)   # picks up the scoped quantum
                sim.run(...)
            # previous quantum restored, even on exceptions
        """
        previous = cls._value
        cls.set(quantum)
        try:
            yield cls._value
        finally:
            cls._value = previous


class QuantumKeeper:
    """Tracks an initiator's local time offset ahead of ``sim.now``.

    Usage inside a loosely-timed process::

        qk = QuantumKeeper(sim)
        while work:
            qk.inc(cost_of_this_transaction)
            if qk.need_sync():
                yield qk.sync()     # yields a Timeout for the offset

    ``sync()`` returns the accumulated offset and resets it; the caller
    must ``yield`` that value to actually advance kernel time.
    """

    def __init__(self, sim: "Simulator", quantum: _t.Optional[int] = None):
        self.sim = sim
        self.quantum = GlobalQuantum.get() if quantum is None else quantum
        if self.quantum < 1:
            raise ValueError("quantum must be positive")
        self.local_offset = 0
        #: Total number of kernel synchronisations (the overhead metric).
        self.sync_count = 0

    @property
    def local_time(self) -> int:
        """Effective time of the decoupled initiator (now + offset)."""
        return self.sim.now + self.local_offset

    def inc(self, duration: int) -> None:
        """Advance local time by *duration* without touching the kernel."""
        if duration < 0:
            raise ValueError("cannot advance local time backwards")
        self.local_offset += duration

    def need_sync(self) -> bool:
        """True when the local offset has reached the quantum."""
        return self.local_offset >= self.quantum

    def sync(self) -> int:
        """Reset the offset and return it for the caller to ``yield``."""
        offset, self.local_offset = self.local_offset, 0
        self.sync_count += 1
        return offset

    def reset(self) -> None:
        self.local_offset = 0
