"""SystemC-like discrete-event simulation kernel (substrate S1).

The kernel provides the execution semantics every virtual prototype in
this framework runs on: generator-based processes, immediate/delta/timed
event notification, delta-cycle signal update, hierarchical modules with
fault-injection points, and TLM-2.0-style temporal decoupling.
"""

from . import simtime
from .events import AllOf, AnyOf, Event, Timeout
from .module import Module
from .process import Process, ProcessError
from .quantum import GlobalQuantum, QuantumKeeper
from .scheduler import DeadlineExceeded, Simulator
from .signal import Clock, Signal, SignalBase, Wire
from .state import KernelState, SnapshotRestoreError, SnapshotUnsupported
from .trace import Change, Tracer

__all__ = [
    "simtime",
    "AllOf",
    "AnyOf",
    "Event",
    "Timeout",
    "Module",
    "Process",
    "ProcessError",
    "DeadlineExceeded",
    "GlobalQuantum",
    "QuantumKeeper",
    "Simulator",
    "KernelState",
    "SnapshotRestoreError",
    "SnapshotUnsupported",
    "Clock",
    "Signal",
    "SignalBase",
    "Wire",
    "Change",
    "Tracer",
]
