"""Primitive channels: signals with delta-cycle update semantics.

A :class:`Signal` behaves like SystemC's ``sc_signal``: writes are staged
and only become visible in the update phase of the current delta cycle,
so all processes in one evaluation phase observe a consistent snapshot.
Every committed change notifies the signal's ``changed`` event with delta
semantics, waking sensitive processes in the next delta cycle.

:class:`Wire` adds edge events for boolean signals, which clocked models
(gate-level DFFs, the watchdog) rely on.

Hot-path notes (these classes dominate campaign profiles):

* all channel classes carry ``__slots__`` — a campaign commits millions
  of signal updates and dict-based attribute access is measurable;
* :meth:`SignalBase._announce` only notifies an edge/changed event when
  it has waiters — but **only for update-phase announcements**.  Those
  happen after the evaluation phase drained, so no process can add
  itself as a waiter before the delta-notification phase that would
  consume the firing; an event without waiters at announce time wakes
  nobody, and skipping the queue round-trip is unobservable.  The
  :meth:`~SignalBase.force` path must *not* take this shortcut: it
  fires mid-evaluation, and a process scheduled later in the same
  phase may still arm a wait that the delta notification has to
  satisfy — forced announcements therefore always notify;
* observers (the tracer hook) are guarded by a truthiness check — the
  no-tracer branch pays one ``if`` instead of an empty loop setup.
"""

from __future__ import annotations

import copy as _copy
import typing as _t

from .events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

T = _t.TypeVar("T")

#: Value types that cannot be mutated in place; restoring them by
#: reference on a warm reset is exact.  Anything else is deep-copied so
#: a run that mutates a signal value in place cannot leak the mutation
#: into the "initial" value the next warm run starts from.
_ATOMIC_TYPES = (type(None), bool, int, float, complex, str, bytes, frozenset)


def pristine_copy(value):
    """*value* itself when immutable-atomic, a deep copy otherwise."""
    if isinstance(value, _ATOMIC_TYPES):
        return value
    return _copy.deepcopy(value)


class SignalBase:
    """Shared staging/update machinery for primitive channels."""

    __slots__ = (
        "sim",
        "name",
        "_initial",
        "_current",
        "_next",
        "_update_pending",
        "changed",
        "observers",
        "change_count",
    )

    def __init__(self, sim: "Simulator", name: str, initial: _t.Any):
        self.sim = sim
        self.name = name
        #: Elaboration-time value; :meth:`_warm_reset` restores it.
        #: Kept as a pristine (deep) copy for mutable values: the live
        #: ``_current`` may be mutated in place during a run, and a
        #: warm reset must hand back what a fresh factory build would.
        self._initial = pristine_copy(initial)
        self._current = initial
        self._next = initial
        self._update_pending = False
        #: Delta-notified whenever the committed value changes.
        self.changed = Event(sim, f"{name}.changed")
        #: Observers invoked as fn(signal, old, new) on committed changes.
        self.observers: list = []
        #: Number of committed value changes (activity metric).
        self.change_count = 0
        sim._register_signal(self)

    # -- reading/writing ------------------------------------------------

    def read(self):
        """Current committed value."""
        return self._current

    def write(self, value) -> None:
        """Stage *value*; it commits at the next update phase."""
        self._next = value
        self.sim._request_update(self)

    @property
    def staged(self):
        """The value staged for the next update phase.

        Equal to :meth:`read` when no write is pending.  Public so
        diagnostic layers (the delta-race sanitizer) can report what a
        conflicting write staged without reaching into kernel-private
        state.
        """
        return self._next

    #: ``signal.value`` is sugar for read/write.
    @property
    def value(self):
        return self.read()

    @value.setter
    def value(self, new_value) -> None:
        self.write(new_value)

    def force(self, value) -> None:
        """Immediately overwrite the committed value (fault injection).

        Unlike :meth:`write` this bypasses the update phase, notifying
        sensitive processes as if the change had just been committed.
        Injectors use this to model upsets that do not originate from a
        driving process.
        """
        old = self._current
        self._current = value
        self._next = value
        if old != value:
            # forced=True: this announcement happens mid-evaluation, so
            # a process running later in the same phase may still arm a
            # wait on the event — the no-waiter skip would lose it.
            self._announce(old, value, forced=True)

    # -- kernel interface ------------------------------------------------

    def _perform_update(self) -> None:
        self._update_pending = False
        old = self._current
        if self._next != old:
            self._current = self._next
            self._announce(old, self._current)

    def _announce(self, old, new, forced: bool = False) -> None:
        self.change_count += 1
        changed = self.changed
        if forced or changed._waiters or changed._pending_kind:
            changed.notify(0)
        if self.observers:
            for observer in self.observers:
                observer(self, old, new)

    def _warm_reset(self) -> None:
        """Silently restore the elaboration-time value (kernel reset).

        No announcement: the kernel calls this with every queue cleared
        and every process about to restart from scratch, exactly as on a
        fresh build where the initial value is never "written".
        Observers are *not* cleared — their lifecycle (tracer attach and
        detach) is owned by whoever installed them.
        """
        initial = pristine_copy(self._initial)
        self._current = initial
        self._next = initial
        self._update_pending = False
        self.change_count = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r}={self._current!r})"


class Signal(SignalBase, _t.Generic[T]):
    """A typed value-holding signal (``sc_signal<T>`` equivalent)."""

    __slots__ = ()


class Wire(SignalBase):
    """A boolean signal with dedicated edge events.

    ``posedge`` / ``negedge`` fire (delta) when the committed value
    transitions 0→1 / 1→0 respectively.
    """

    __slots__ = ("posedge", "negedge")

    def __init__(self, sim: "Simulator", name: str, initial: bool = False):
        super().__init__(sim, name, bool(initial))
        self.posedge = Event(sim, f"{name}.posedge")
        self.negedge = Event(sim, f"{name}.negedge")

    def write(self, value) -> None:
        super().write(bool(value))

    def _announce(self, old, new, forced: bool = False) -> None:
        super()._announce(old, new, forced)
        if new and not old:
            edge = self.posedge
            if forced or edge._waiters or edge._pending_kind:
                edge.notify(0)
        elif old and not new:
            edge = self.negedge
            if forced or edge._waiters or edge._pending_kind:
                edge.notify(0)


class Clock(Wire):
    """A free-running clock wire.

    The clock toggles with the given *period* (a 50% duty cycle), driven
    by an internal process spawned on construction.  The driver is
    factory-spawned, so a :meth:`Simulator.reset` restarts it from the
    initial phase.
    """

    __slots__ = ("period", "_proc")

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        period: int,
        start_high: bool = False,
    ):
        if period < 2:
            raise ValueError("clock period must be at least 2 time units")
        super().__init__(sim, name, start_high)
        self.period = period
        self._proc = sim.spawn(self._toggle, name=f"{name}.driver")

    def _toggle(self):
        # Single yield site with the phase derived from the wire itself:
        # a snapshot restore rebuilds this generator and re-arms it at
        # the recorded wait, so the delay for the *next* edge must be
        # computable from restorable state alone.  ``staged`` equals the
        # committed value at any scheduling boundary, and ``_initial``
        # is the immutable phase reference: the wire sits at its initial
        # level exactly during the first half-period of each cycle.
        half = self.period // 2
        other = self.period - half
        initial = self._initial
        while True:
            yield half if self.staged == initial else other
            self.write(not self.read())

    def stop(self) -> None:
        """Halt the clock driver (used when tearing down a platform)."""
        self._proc.kill()
