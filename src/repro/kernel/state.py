"""Mid-run kernel state capture and restore.

:class:`KernelState` is a schema-versioned deep capture of everything a
:class:`~repro.kernel.scheduler.Simulator` owns at a scheduling-phase
boundary: the timing wheel, the zero-delay deque, delta/update queues,
staged signal writes, committed signal values, process wait-sets, and
the scheduling counters (including the tie-break sequence counter, so
restored wheel entries keep their exact relative order).

What is **not** captured: Tracer ring buffers and signal observer
lists (their lifecycle belongs to whoever armed them), the sanitizer's
transient window (reset on restore), and the wall-clock deadline.

Process continuations cannot be deep-copied (generators don't pickle
or copy), so restore *re-arms* them instead: a factory-spawned process
is rebuilt from its factory, primed to its first ``yield`` (the
discarded one), and its recorded wait-set is re-attached.  That is
sound exactly when every yield's continuation converges back to the
loop top with all cross-iteration state living in module attributes or
kernel objects — the *wait-site convergence* contract documented in
DESIGN.md.  Bare-generator processes cannot be re-armed; a strict
snapshot refuses them, a lenient one (used for the elaboration
snapshot) marks them non-restorable and restore kills and drops them,
matching the historical ``reset()`` behavior.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from .process import FINISHED, KILLED, RUNNABLE, WAITING
from .signal import pristine_copy

if _t.TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

#: Bumped whenever the captured field set changes shape.
SCHEMA_VERSION = 1


class SnapshotUnsupported(RuntimeError):
    """The kernel holds state a snapshot cannot capture (bare-generator
    process continuations)."""


class SnapshotRestoreError(RuntimeError):
    """A restore could not re-arm the captured state (a process factory
    diverged from the wait-site convergence contract)."""


class KernelState:
    """A deep capture of one simulator's scheduling state.

    Produced by :meth:`Simulator.snapshot`; consumed by
    :meth:`Simulator.restore`.  Holds strong references to the live
    kernel objects (signals, processes, events) plus pristine masters
    of every mutable value, so a single capture can seed any number of
    restores without cross-contamination.
    """

    __slots__ = (
        "schema",
        "now",
        "delta_count",
        "events_processed",
        "processes_stepped",
        "delta_cycles_total",
        "seq",
        "wheel",
        "timed_now",
        "runnable",
        "delta_events",
        "delta_resumes",
        "update_queue",
        "signals",
        "processes",
        "events",
        "delta_hooks",
    )

    def __init__(self):
        self.schema = SCHEMA_VERSION


def capture_kernel_state(sim: "Simulator", strict: bool = True) -> KernelState:
    """Capture *sim*'s state at the current scheduling boundary.

    ``strict=True`` (the mid-run :meth:`Simulator.snapshot` contract)
    raises :class:`SnapshotUnsupported` when any *alive* process was
    spawned from a bare generator — its continuation cannot be rebuilt.
    ``strict=False`` (the elaboration snapshot) captures such processes
    as non-restorable; restore kills and drops them.
    """
    if strict:
        stuck = [
            process for process in sim._processes
            if process.factory is None and process.alive
        ]
        if stuck:
            names = ", ".join(repr(process.name) for process in stuck)
            raise SnapshotUnsupported(
                f"cannot snapshot mid-run: process(es) {names} were "
                f"spawned from bare generators and cannot be re-armed; "
                f"spawn from zero-arg factories"
            )

    state = KernelState()
    state.now = sim.now
    state.delta_count = sim.delta_count
    state.events_processed = sim.events_processed
    state.processes_stepped = sim.processes_stepped
    state.delta_cycles_total = sim.delta_cycles_total
    state.seq = sim._seq
    # The wheel is captured as absolute (when, seq, kind, payload)
    # tuples: a copy of a heap is a heap, and restoring the seq counter
    # alongside preserves every tie-break exactly.
    state.wheel = list(sim._wheel)
    state.timed_now = list(sim._timed_now)
    state.runnable = list(sim._runnable)
    state.delta_events = list(sim._delta_events)
    state.delta_resumes = list(sim._delta_resumes)
    state.update_queue = list(sim._update_queue)
    state.delta_hooks = list(sim.delta_hooks)

    state.signals = []
    for signal in sim._signals:
        pending = signal._update_pending
        state.signals.append((
            signal,
            pristine_copy(signal._current),
            pending,
            pristine_copy(signal._next) if pending else None,
            signal.change_count,
        ))

    state.processes = []
    for process in sim._processes:
        state.processes.append((
            process,
            process.state,
            process.factory is not None,
            tuple(process._waiting_on),
            set(process._allof_remaining),
            process._resume_value,
            process.exception,
        ))

    # Every event whose waiter list or pending-delta flag can be
    # non-trivial is reachable from the members above: a waiter is a
    # process holding the event in _waiting_on (or joining on its
    # `finished`), signal-owned events hang off the signal, and pending
    # notifications sit in the delta/timed/wheel queues.
    state.events = []
    seen: set = set()

    def visit(event):
        if event is None or id(event) in seen:
            return
        seen.add(id(event))
        state.events.append((event, list(event._waiters), event._pending_kind))

    for process in sim._processes:
        visit(process.finished)
        for event in process._waiting_on:
            visit(event)
    for signal in sim._signals:
        visit(signal.changed)
        visit(getattr(signal, "posedge", None))
        visit(getattr(signal, "negedge", None))
    for _when, _seq, kind, payload in sim._wheel:
        if kind == "event":
            visit(payload)
    for kind, payload in sim._timed_now:
        if kind == "event":
            visit(payload)
    for event in sim._delta_events:
        visit(event)
    return state


def _restore_signal(entry) -> None:
    """Re-seed one signal from its captured masters.

    Fresh pristine copies every time, so repeated restores from the
    same :class:`KernelState` stay uncontaminated by in-place mutation
    during the runs in between.  When no write was pending at capture,
    ``_current`` and ``_next`` are the *same* object — matching what a
    fresh build and ``_perform_update`` both leave behind.
    """
    signal, current, pending, staged, change_count = entry
    value = pristine_copy(current)
    signal._current = value
    signal._next = pristine_copy(staged) if pending else value
    signal._update_pending = pending
    signal.change_count = change_count


def restore_kernel_state(
    sim: "Simulator",
    state: KernelState,
    platform_restore: _t.Optional[_t.Callable[[], None]] = None,
) -> None:
    """Return *sim* to the captured boundary.

    ``platform_restore`` re-seeds module-level state (the registry
    bundle's ``restore_state`` hook).  It runs **twice**: once before
    process priming — so preambles that *read* module state (cached
    sensor codes, thresholds) see restored values — and once after —
    so preambles that *mutate* module state (a watchdog biting during
    its first primed iteration, an ECU delivering its enable write)
    are undone.  Kernel-side queue/signal state touched by priming is
    likewise wiped and re-applied after the prime pass.
    """
    if state.schema != SCHEMA_VERSION:
        raise SnapshotRestoreError(
            f"snapshot schema {state.schema} != supported {SCHEMA_VERSION}"
        )

    # 1. Process lifecycle.  Captured members are rebuilt (or killed if
    # non-restorable / captured dead); processes spawned *after* the
    # capture are restarted when they can be and dropped when not —
    # the same policy reset() always applied to post-elaboration
    # scaffolding.  restart()/kill() scrub wait bookkeeping and may
    # notify `finished`; every queue they touch is rebuilt below.
    # Captured members that were unregistered since the capture (a
    # detached per-run subtree) stay gone: detach already killed them,
    # and resurrecting them would leak scaffolding back into the
    # kernel run after run.
    member_ids = {id(entry[0]) for entry in state.processes}
    registered_ids = {id(process) for process in sim._processes}
    extras = []
    for process in sim._processes:
        if id(process) in member_ids:
            continue
        if process.factory is None:
            process.kill()
        else:
            process.restart()
            extras.append(process)
    members = []
    restorable_ids = set()
    live_entries = []
    for entry in state.processes:
        process, captured_state, restorable = entry[0], entry[1], entry[2]
        if id(process) not in registered_ids:
            continue
        if not restorable:
            process.kill()
            continue
        live_entries.append(entry)
        members.append(process)
        restorable_ids.add(id(process))
        if captured_state in (FINISHED, KILLED):
            process.kill()
        else:
            process.restart()
    sim._processes = members + extras

    # 2. Signal values (first pass) — before priming, so process
    # preambles read captured values.  Signals registered after the
    # capture are warm-reset and kept.
    member_signal_ids = {id(entry[0]) for entry in state.signals}
    registered_signal_ids = {id(signal) for signal in sim._signals}
    extra_signals = [
        signal for signal in sim._signals
        if id(signal) not in member_signal_ids
    ]
    live_signal_entries = [
        entry for entry in state.signals
        if id(entry[0]) in registered_signal_ids
    ]
    for entry in live_signal_entries:
        _restore_signal(entry)
    for signal in extra_signals:
        signal._warm_reset()
    sim._signals = [entry[0] for entry in live_signal_entries] + extra_signals

    # 3. Module state (first pass) — priming preambles may read it.
    if platform_restore is not None:
        platform_restore()

    # 4. Prime: advance each captured-waiting member to its first
    # yield.  The yielded condition is discarded — the recorded
    # wait-set is re-attached in step 5 instead.
    for entry in live_entries:
        process, captured_state = entry[0], entry[1]
        if captured_state not in (WAITING, RUNNABLE):
            continue
        try:
            process.generator.send(None)
        except StopIteration:
            raise SnapshotRestoreError(
                f"process {process.name!r} finished while being primed; "
                f"restorable process bodies must reach a yield"
            ) from None
        except SnapshotRestoreError:
            raise
        except BaseException as exc:  # vp-lint: disable=VP007 - no simulation runs during priming; every failure is re-raised as SnapshotRestoreError
            raise SnapshotRestoreError(
                f"process {process.name!r} raised while being primed: "
                f"{exc!r}"
            ) from exc

    # 5. Wipe whatever steps 1-4 left in the queues, then re-apply the
    # capture wholesale.
    for event in sim._delta_events:
        event._pending_kind = None
    for signal in sim._update_queue:
        signal._update_pending = False
    for entry in live_signal_entries:
        _restore_signal(entry)  # undo any staging done by priming
    for event, waiters, pending in state.events:
        event._waiters = list(waiters)
        event._pending_kind = pending
    for entry in live_entries:
        process, captured_state = entry[0], entry[1]
        process.state = captured_state
        process._waiting_on = tuple(entry[3])
        process._allof_remaining = set(entry[4])
        process._resume_value = entry[5]
        process.exception = entry[6]
    sim._runnable = deque(
        [p for p in state.runnable if id(p) in restorable_ids] + extras
    )
    sim._wheel = list(state.wheel)
    sim._timed_now = deque(state.timed_now)
    sim._delta_events = list(state.delta_events)
    sim._delta_resumes = list(state.delta_resumes)
    sim._update_queue = list(state.update_queue)
    sim.now = state.now
    sim.delta_count = state.delta_count
    sim.events_processed = state.events_processed
    sim.processes_stepped = state.processes_stepped
    sim.delta_cycles_total = state.delta_cycles_total
    sim._seq = state.seq
    sim.delta_hooks[:] = state.delta_hooks
    sim._stop_requested = False
    sim._errors = []
    sim._deadline_at = None
    sim._current_process = None
    if sim._sanitizer is not None:
        sim._sanitizer.on_reset()

    # 6. Module state (second pass) — undo priming's module mutations.
    if platform_restore is not None:
        platform_restore()


__all__ = [
    "SCHEMA_VERSION",
    "KernelState",
    "SnapshotUnsupported",
    "SnapshotRestoreError",
    "capture_kernel_state",
    "restore_kernel_state",
]
