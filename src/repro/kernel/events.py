"""Events and wait conditions for the discrete-event kernel.

An :class:`Event` is the fundamental synchronisation primitive, modelled
after SystemC's ``sc_event``: processes suspend on it, and a notification
resumes every waiting process.  Notification comes in three flavours,
mirroring the SystemC semantics:

* ``notify()`` — *immediate*: waiters become runnable in the current
  evaluation phase;
* ``notify(0)`` — *delta*: waiters run in the next delta cycle, after the
  current evaluation phase drains (this is how signal updates wake
  sensitive processes);
* ``notify(delay)`` — *timed*: waiters run ``delay`` time units later.

Composite wait conditions (:class:`AnyOf`, :class:`AllOf`) let a process
wait for the first or for all of a set of events, and :class:`Timeout`
suspends for a fixed duration.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import Simulator


class Event:
    """A notifiable synchronisation point.

    Events are created against a :class:`~repro.kernel.scheduler.Simulator`
    (directly or lazily through the module hierarchy) and carry an optional
    name for diagnostics.
    """

    __slots__ = ("sim", "name", "_waiters", "_pending_kind")

    def __init__(self, sim: "Simulator", name: str = "event"):
        self.sim = sim
        self.name = name
        self._waiters: list = []  # Process objects suspended on this event
        # Kind of pending notification, used to collapse multiple notify
        # calls within one delta (immediate > delta > timed), as in SystemC.
        self._pending_kind: _t.Optional[str] = None

    # -- notification -------------------------------------------------

    def notify(self, delay: _t.Optional[int] = None) -> None:
        """Notify the event.

        ``delay is None`` requests immediate notification, ``0`` a delta
        notification, and a positive integer a timed notification that
        many kernel time units in the future.
        """
        if delay is None:
            self.sim._notify_immediate(self)
        elif delay == 0:
            self.sim._notify_delta(self)
        elif delay > 0:
            self.sim._notify_timed(self, delay)
        else:
            raise ValueError(f"negative notify delay: {delay}")

    @property
    def waiters(self) -> tuple:
        """The processes currently suspended on this event (read-only
        view; analysis layers map signal→process wait registrations
        from it without reaching into kernel-private lists)."""
        return tuple(self._waiters)

    def _add_waiter(self, process) -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process) -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def _take_waiters(self) -> list:
        waiters, self._waiters = self._waiters, []
        return waiters

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class Timeout:
    """Wait condition: suspend for a fixed number of time units.

    Processes usually write ``yield Timeout(n)`` or the shorthand
    ``yield n`` (a bare integer is promoted to a :class:`Timeout`).
    """

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError(f"negative timeout: {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.duration})"


class AnyOf:
    """Wait condition: resume when the *first* of several events fires.

    The value delivered back into the generator is the :class:`Event`
    that fired, so a process can dispatch on it::

        fired = yield AnyOf(done_evt, error_evt)
        if fired is error_evt:
            ...
    """

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.events = tuple(events)


class AllOf:
    """Wait condition: resume only when *all* given events have fired."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("AllOf requires at least one event")
        self.events = tuple(events)
