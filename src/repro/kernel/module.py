"""Hierarchical modules.

:class:`Module` gives virtual-prototype components a SystemC-like
structure: a dotted hierarchical name, parent/child links, convenience
constructors for events/signals/processes, and — crucial for this
framework — a registry of *injection points* that fault injectors can
discover without the model code being modified (Sec. 3.3 of the paper:
"errors need to be injected into the DUT, but the design should not be
changed").
"""

from __future__ import annotations

import typing as _t

from .events import Event
from .process import Process
from .scheduler import Simulator
from .signal import Clock, Signal, Wire


class Module:
    """Base class for every structural component of a virtual prototype.

    Subclasses build their children and spawn their behaviour processes
    in ``__init__`` (an ``elaborate``-style split is unnecessary in
    Python; construction order gives elaboration order).
    """

    def __init__(
        self,
        name: str,
        parent: _t.Optional["Module"] = None,
        sim: _t.Optional[Simulator] = None,
    ):
        if parent is None and sim is None:
            raise ValueError(
                f"module {name!r} needs either a parent or a simulator"
            )
        self.basename = name
        self.parent = parent
        self.sim: Simulator = sim if sim is not None else parent.sim
        self.children: list = []
        self._injection_points: dict = {}
        # Kernel objects created through this module's helpers, so
        # detach() can hand them back to the kernel (a warm simulator
        # would otherwise accumulate per-run signals/processes forever).
        self._owned_signals: list = []
        self._owned_processes: list = []
        if parent is not None:
            parent.children.append(self)

    # -- naming ----------------------------------------------------------

    @property
    def full_name(self) -> str:
        """Dotted hierarchical name, e.g. ``'top.ecu0.cpu'``."""
        if self.parent is None:
            return self.basename
        return f"{self.parent.full_name}.{self.basename}"

    def find(self, path: str) -> "Module":
        """Resolve a child by relative dotted *path*.

        >>> top.find("ecu0.cpu")        # doctest: +SKIP
        """
        module = self
        for part in path.split("."):
            for child in module.children:
                if child.basename == part:
                    module = child
                    break
            else:
                raise KeyError(
                    f"{module.full_name!r} has no child {part!r}"
                )
        return module

    def walk(self) -> _t.Iterator["Module"]:
        """Depth-first iteration over this module and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- construction helpers ---------------------------------------------

    def event(self, name: str) -> Event:
        return Event(self.sim, f"{self.full_name}.{name}")

    def signal(self, name: str, initial=None) -> Signal:
        signal = Signal(self.sim, f"{self.full_name}.{name}", initial)
        self._owned_signals.append(signal)
        return signal

    def wire(self, name: str, initial: bool = False) -> Wire:
        wire = Wire(self.sim, f"{self.full_name}.{name}", initial)
        self._owned_signals.append(wire)
        return wire

    def clock(self, name: str, period: int, start_high: bool = False) -> Clock:
        """A :class:`Clock` owned by this module (reclaimed on detach).

        Per-run helpers on a warm platform must create clocks through
        this helper rather than ``Clock(sim, ...)`` directly, so the
        clock wire and its driver process are handed back to the kernel
        when the helper detaches.
        """
        clk = Clock(self.sim, f"{self.full_name}.{name}", period, start_high)
        self._owned_signals.append(clk)
        self._owned_processes.append(clk._proc)
        return clk

    def process(self, behavior, name: str = "proc") -> Process:
        """Spawn *behavior* as a process owned by this module.

        *behavior* is a generator or a zero-argument factory returning
        one; pass the factory (``self._run``, not ``self._run()``) when
        the module should survive a warm :meth:`Simulator.reset`.
        """
        process = self.sim.spawn(behavior, name=f"{self.full_name}.{name}")
        self._owned_processes.append(process)
        return process

    def detach(self) -> None:
        """Tear this subtree out of the platform (warm-platform teardown).

        Per-run helpers built *onto* a reusable platform (the campaign
        stressor) must not accumulate across runs; after the run they
        detach, leaving the parent — and the kernel — exactly as
        elaborated: the subtree is unlinked from ``children``, its
        processes are killed and unregistered, and its signals are
        unregistered so a warm kernel's memory and reset cost stay
        flat no matter how many runs it serves.  Only kernel objects
        created through the module helpers (:meth:`signal`,
        :meth:`wire`, :meth:`clock`, :meth:`process`) are reclaimed;
        per-run code must not create channels via ``Signal(sim, ...)``
        directly on a warm kernel.
        """
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        sim = self.sim
        for module in self.walk():
            for process in module._owned_processes:
                process.kill()
                sim._unregister_process(process)
            module._owned_processes.clear()
            for signal in module._owned_signals:
                sim._unregister_signal(signal)
            module._owned_signals.clear()

    # -- injection points ---------------------------------------------------

    def register_injection_point(self, name: str, point) -> None:
        """Expose *point* (an injector-compatible object) under *name*.

        Components register their corruptible state here during
        construction; the stressor discovers them by walking the module
        tree, so fault campaigns never need design edits.
        """
        if name in self._injection_points:
            raise ValueError(
                f"{self.full_name!r} already has injection point {name!r}"
            )
        self._injection_points[name] = point

    @property
    def injection_points(self) -> dict:
        """Mapping of locally registered injection-point names."""
        return dict(self._injection_points)

    @property
    def owned_signals(self) -> tuple:
        """The signals/wires created through this module's helpers.

        Read-only view for analysis layers (the static reachability
        analyzer maps signal ownership without touching bookkeeping
        lists whose lifecycle belongs to the kernel).
        """
        return tuple(self._owned_signals)

    @property
    def owned_processes(self) -> tuple:
        """The factory-spawned processes owned by this module
        (read-only view, same contract as :attr:`owned_signals`)."""
        return tuple(self._owned_processes)

    def all_injection_points(self) -> dict:
        """All injection points in this subtree, keyed by full path."""
        points: dict = {}
        for module in self.walk():
            for name, point in module._injection_points.items():
                points[f"{module.full_name}.{name}"] = point
        return points

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.full_name!r})"
