"""The discrete-event simulator core.

The :class:`Simulator` implements the SystemC-style scheduling loop:

1. **Evaluation phase** — run every runnable process until the runnable
   queue drains.  Immediate notifications feed the same phase.
2. **Update phase** — commit primitive-channel (signal) writes; each
   value change produces delta notifications.
3. **Delta notification phase** — wake processes sensitive to the delta
   events; if any woke up, loop back to step 1 within the same time.
4. **Time advance** — pop the earliest timed notification(s) from the
   event wheel and repeat.

Ordering is fully deterministic: processes resume in FIFO order within a
phase, and the event wheel breaks time ties with a monotonically
increasing sequence number.  Deterministic scheduling is essential here —
fault-injection campaigns must replay exactly under a fixed seed.
"""

from __future__ import annotations

import heapq
import os
import random
import time
import typing as _t
from collections import deque

# Bound at module level: the scheduler calls these once per timed
# notification, and attribute lookups on ``heapq`` are measurable at
# campaign scale.
_heappush = heapq.heappush
_heappop = heapq.heappop

from . import simtime
from .events import Event
from .process import FINISHED, KILLED, WAITING, Process, ProcessError
from .state import (
    KernelState,
    SnapshotRestoreError,
    capture_kernel_state,
    restore_kernel_state,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from .signal import SignalBase


class SimulationFinished(Exception):
    """Raised internally to unwind when a stop is requested."""


class DeadlineExceeded(RuntimeError):
    """:meth:`Simulator.run` exceeded its wall-clock deadline.

    Injected faults can drive a prototype into a livelock (a runaway
    process spinning on zero-delay yields, a watchdog loop that never
    converges); the deadline turns such a hang into a catchable,
    classifiable event instead of a stuck campaign.  Carries the
    simulation time and the budget that was exhausted.
    """

    def __init__(self, deadline_s: float, sim_now: int):
        super().__init__(
            f"simulation exceeded its {deadline_s}s wall-clock deadline "
            f"at t={sim_now}"
        )
        self.deadline_s = deadline_s
        self.sim_now = sim_now


class Simulator:
    """A discrete-event simulation kernel instance.

    Typical standalone use::

        sim = Simulator()

        def blinker():
            while True:
                yield 10          # wait 10 time units
                print("tick", sim.now)

        sim.spawn(blinker(), name="blinker")
        sim.run(until=100)

    ``sanitize`` arms the delta-race sanitizer
    (:mod:`repro.analyze.sanitizer`): ``True``, a ``SanitizeConfig``,
    or a shared ``DeltaRaceSanitizer`` instance; ``None`` defers to
    the ``REPRO_SANITIZE`` environment variable (any value except
    ``""``/``"0"`` enables it).  ``order_seed`` deterministically
    shuffles the runnable queue at every delta-cycle boundary — an
    intentional perturbation of the (otherwise guaranteed) FIFO order
    used by the order-sensitivity checker
    (:func:`repro.analyze.check_order_sensitivity`) to expose
    platforms whose behavior depends on process scheduling order.
    """

    def __init__(self, sanitize=None, order_seed: _t.Optional[int] = None):
        #: Current simulation time in kernel units.
        self.now: int = 0
        #: Delta-cycle counter within the current timestamp (diagnostics).
        self.delta_count: int = 0
        #: Lifetime counters (see :meth:`stats`) — campaign executors
        #: ship them back as the per-run simulation cost.
        self.events_processed: int = 0
        self.processes_stepped: int = 0
        self.delta_cycles_total: int = 0
        self._runnable: deque = deque()
        self._wheel: list = []  # heap of (time, seq, kind, payload)
        #: Zero-delay timed notifications land here instead of the heap:
        #: they are due at the *current* time, and by the time any wheel
        #: entry for ``now`` could fire, :meth:`_advance_time` has already
        #: drained the wheel at that timestamp — so FIFO order on this
        #: deque is exactly the seq order the heap would have produced.
        self._timed_now: deque = deque()
        self._seq = 0
        self._delta_events: list = []  # events with pending delta notification
        self._delta_resumes: list = []  # processes to resume next delta
        self._update_queue: list = []  # signals with pending writes
        self._processes: list = []
        self._signals: list = []  # every SignalBase born on this kernel
        self._stop_requested = False
        self._errors: list = []
        self._deadline_at: _t.Optional[float] = None
        #: Kernel state captured at end of elaboration so :meth:`reset`
        #: can restore it; see :meth:`snapshot_elaboration`.
        self._elab_snapshot: _t.Optional[KernelState] = None
        #: Hooks invoked as fn(sim) after every delta cycle (tracing).
        self.delta_hooks: list = []
        #: The process currently being stepped (sanitizer attribution;
        #: only maintained while a sanitizer is armed).
        self._current_process: _t.Optional[Process] = None
        if sanitize is None and os.environ.get("REPRO_SANITIZE", "0") not in (
            "", "0"
        ):
            sanitize = True
        if sanitize:
            # Lazy import: the sanitizer lives in the analysis layer,
            # which imports the kernel; resolving it here (only when
            # armed) keeps the packages acyclic at import time.
            from ..analyze.sanitizer import resolve_sanitize

            self._sanitizer = resolve_sanitize(sanitize)
        else:
            self._sanitizer = None
        self._order_rng = (
            None if order_seed is None else random.Random(order_seed)
        )

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn(self, behavior, name: str = "proc") -> Process:
        """Register *behavior* as a process, runnable at the current time.

        *behavior* is a generator, or a zero-argument factory returning
        one.  Factory-spawned processes survive :meth:`reset` (they are
        rebuilt and rescheduled); bare-generator processes cannot rewind
        and are killed by it.
        """
        process = Process(self, behavior, name)
        self._processes.append(process)
        self._runnable.append(process)
        return process

    def event(self, name: str = "event") -> Event:
        """Create a fresh :class:`Event` bound to this simulator."""
        return Event(self, name)

    def timeout_event(self, delay: int, name: str = "timeout") -> Event:
        """An event that fires once, *delay* units from now.

        Useful inside ``AnyOf`` to wait for "X or a deadline"::

            fired = yield AnyOf(done, sim.timeout_event(1000))
        """
        event = Event(self, name)
        event.notify(delay)
        return event

    # ------------------------------------------------------------------
    # Notification plumbing (called by Event / Signal / Process)
    # ------------------------------------------------------------------

    def _notify_immediate(self, event: Event) -> None:
        for process in event._take_waiters():
            if process._event_fired(event):
                self._runnable.append(process)

    def _notify_delta(self, event: Event) -> None:
        if event._pending_kind != "delta":
            event._pending_kind = "delta"
            self._delta_events.append(event)

    def _notify_timed(self, event: Event, delay: int) -> None:
        if delay == 0:
            self._timed_now.append(("event", event))
            return
        self._seq += 1
        _heappush(
            self._wheel, (self.now + delay, self._seq, "event", event)
        )

    def _schedule_delta_resume(self, process: Process) -> None:
        self._delta_resumes.append(process)

    def _schedule_timed_resume(self, process: Process, delay: int) -> None:
        if delay == 0:
            self._timed_now.append(("process", process))
            return
        self._seq += 1
        _heappush(
            self._wheel, (self.now + delay, self._seq, "process", process)
        )

    def _request_update(self, signal: "SignalBase") -> None:
        if self._sanitizer is not None:
            # Every staged write, not just the first per delta: the
            # *second* write to an already-pending signal is exactly
            # the write-write conflict the sanitizer exists to see.
            self._sanitizer.on_write(
                signal, self._current_process, self.now, self.delta_count
            )
        if not signal._update_pending:
            signal._update_pending = True
            self._update_queue.append(signal)

    def _register_signal(self, signal: "SignalBase") -> None:
        self._signals.append(signal)

    def _unregister_signal(self, signal: "SignalBase") -> None:
        """Forget *signal* (per-run scaffolding torn down via detach).

        Without this, signals created by per-run helpers on a warm
        kernel would accumulate in ``_signals`` forever, growing both
        memory and :meth:`reset` cost with every run.
        """
        try:
            self._signals.remove(signal)
        except ValueError:
            pass

    def _unregister_process(self, process: Process) -> None:
        """Forget *process* (per-run scaffolding torn down via detach)."""
        try:
            self._processes.remove(process)
        except ValueError:
            pass

    def _report_process_error(self, error: ProcessError) -> None:
        self._errors.append(error)
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Request that :meth:`run` return at the next phase boundary."""
        self._stop_requested = True

    def run(
        self,
        until: _t.Optional[int] = None,
        deadline_s: _t.Optional[float] = None,
    ) -> int:
        """Run the simulation.

        ``until`` is an absolute time horizon; simulation stops *before*
        executing anything scheduled later than it and ``self.now`` is
        left clamped at the horizon.  With ``until=None`` the simulation
        runs until no activity remains.  Returns the final time.

        ``deadline_s`` bounds the *wall-clock* time of this call: when
        the budget runs out, :class:`DeadlineExceeded` is raised from
        the next scheduling-phase boundary.  The check runs between
        delta cycles and every 256 process steps within one, so even
        zero-delay livelocks are preempted; only a process body that
        never yields at all can escape it (the campaign layer adds a
        pool-level backstop for that case).

        Raises :class:`~repro.kernel.process.ProcessError` if any process
        body raised.
        """
        if self._elab_snapshot is None:
            # Anything scheduled before the first run() is elaboration
            # output (timed events from platform factories, staged
            # writes); pin it now so reset() can replay it.  Warm-reuse
            # callers snapshot explicitly right after the factory runs,
            # before any per-run scaffolding is armed.
            self.snapshot_elaboration()
        horizon = simtime.TIME_MAX if until is None else until
        self._deadline_at = (
            None if deadline_s is None
            else time.perf_counter() + deadline_s  # vp-lint: disable=VP005 - the deadline budget is wall-clock by definition
        )
        self._deadline_s = deadline_s
        try:
            while not self._stop_requested:
                if self._deadline_at is not None:
                    self._check_deadline()
                self._delta_cycle()
                if self._stop_requested:
                    break
                if self._runnable or self._delta_resumes or self._delta_events:
                    continue
                if self._timed_now:
                    self._fire_timed_now()
                    continue
                if not self._advance_time(horizon):
                    break
        finally:
            self._deadline_at = None
            if self._errors:
                error = self._errors[0]
                self._errors = []
                self._stop_requested = False
                raise error
        self._stop_requested = False
        if until is not None and self.now < until and not self._errors:
            # No activity left before the horizon: clamp time forward so
            # callers observe the requested duration.
            self.now = until
        return self.now

    def _check_deadline(self) -> None:
        if time.perf_counter() >= self._deadline_at:  # vp-lint: disable=VP005 - the deadline budget is wall-clock by definition
            raise DeadlineExceeded(self._deadline_s, self.now)

    def _delta_cycle(self) -> None:
        sanitizer = self._sanitizer
        if self._order_rng is not None and len(self._runnable) > 1:
            # Order-sensitivity probing: permute the evaluation order
            # deterministically per seed.  A sound platform produces
            # byte-identical digests under any permutation.
            shuffled = list(self._runnable)
            self._order_rng.shuffle(shuffled)
            self._runnable.clear()
            self._runnable.extend(shuffled)
        # Evaluation phase.
        while self._runnable:
            process = self._runnable.popleft()
            if process.state in (FINISHED, KILLED):
                continue
            self.processes_stepped += 1
            # Immediate-notification ping-pong can livelock *inside* one
            # evaluation phase; re-check the wall-clock budget without
            # paying a perf_counter call on every step.
            if (
                self._deadline_at is not None
                and not (self.processes_stepped & 0xFF)
            ):
                self._check_deadline()
            if sanitizer is not None:
                self._current_process = process
            process._step()
            if self._stop_requested:
                return
        if sanitizer is not None:
            self._current_process = None
        # Update phase.
        if self._update_queue:
            updates, self._update_queue = self._update_queue, []
            for signal in updates:
                signal._perform_update()
        # Delta notification phase.
        if self._delta_events:
            events, self._delta_events = self._delta_events, []
            for event in events:
                event._pending_kind = None
                self.events_processed += 1
                for process in event._take_waiters():
                    if process._event_fired(event):
                        self._runnable.append(process)
        if self._delta_resumes:
            resumes, self._delta_resumes = self._delta_resumes, []
            for process in resumes:
                if process.state not in (FINISHED, KILLED):
                    self._runnable.append(process)
        self.delta_count += 1
        self.delta_cycles_total += 1
        if sanitizer is not None:
            # Close the same-delta conflict window: writes staged in
            # different delta cycles are ordinary sequencing.
            sanitizer.end_delta()
        if self.delta_hooks:
            for hook in self.delta_hooks:
                hook(self)

    def _fire_timed_now(self) -> None:
        """Deliver zero-delay timed notifications without touching the heap.

        Semantically identical to :meth:`_advance_time` landing on the
        current timestamp: time does not move, the delta counter restarts,
        and payloads wake in scheduling (FIFO == seq) order.
        """
        self.delta_count = 0
        fired, self._timed_now = self._timed_now, deque()
        for kind, payload in fired:
            self.events_processed += 1
            if kind == "event":
                payload._pending_kind = None
                for process in payload._take_waiters():
                    if process._event_fired(payload):
                        self._runnable.append(process)
            else:  # kind == "process"
                if payload.state not in (FINISHED, KILLED):
                    self._runnable.append(payload)

    def _advance_time(self, horizon: int) -> bool:
        """Pop the next timestamp from the wheel.  False when exhausted."""
        while self._wheel:
            when, _seq, kind, payload = self._wheel[0]
            if when > horizon:
                self.now = horizon
                return False
            break
        if not self._wheel:
            return False
        when = self._wheel[0][0]
        self.now = when
        self.delta_count = 0
        while self._wheel and self._wheel[0][0] == when:
            _when, _seq, kind, payload = _heappop(self._wheel)
            self.events_processed += 1
            if kind == "event":
                payload._pending_kind = None
                for process in payload._take_waiters():
                    if process._event_fired(payload):
                        self._runnable.append(process)
            else:  # kind == "process"
                if payload.state not in (FINISHED, KILLED):
                    self._runnable.append(payload)
        return True

    # ------------------------------------------------------------------
    # Snapshot / restore (and warm reset on top of it)
    # ------------------------------------------------------------------

    def snapshot(self, strict: bool = True) -> KernelState:
        """Capture the kernel's state at the current scheduling boundary.

        Call between :meth:`run` calls (or before the first): every
        queue except the timing wheel is empty there, and the capture is
        exact.  The returned :class:`~repro.kernel.state.KernelState`
        deep-copies every mutable value, so any number of later
        :meth:`restore` calls replay from the same baseline.

        ``strict=True`` refuses kernels with alive bare-generator
        processes (:class:`~repro.kernel.state.SnapshotUnsupported`) —
        their continuations cannot be rebuilt.  ``strict=False``
        captures them as non-restorable; restore kills and drops them,
        which is what the elaboration snapshot behind :meth:`reset`
        relies on.

        Module-level state (memory images, component counters) is NOT
        captured — that is the platform's job, via the registry bundle
        ``capture_state`` hook.
        """
        return capture_kernel_state(self, strict=strict)

    def restore(
        self,
        state: KernelState,
        platform_restore: _t.Optional[_t.Callable[[], None]] = None,
    ) -> None:
        """Return the kernel to a captured boundary (see :meth:`snapshot`).

        Factory-spawned processes are rebuilt, primed to their first
        yield, and re-armed with their recorded wait-sets; every queue,
        signal, and counter is re-seeded from the capture's pristine
        masters.  ``platform_restore`` restores module-level state and
        is invoked twice (before and after process priming — see
        :func:`~repro.kernel.state.restore_kernel_state`).
        """
        restore_kernel_state(self, state, platform_restore)

    def _arm_forked_process(
        self, process: Process, seq: float
    ) -> None:
        """Arm a freshly spawned injection process on a forked kernel.

        Snapshot-fork execution spawns per-run injector processes
        *after* restoring a mid-run snapshot.  On a fresh run those
        injectors were stepped during delta cycle 0 and parked on the
        wheel with sequence numbers interleaved at their spawn
        position; here the prefix already ran, so the process is
        primed immediately (consuming its first yielded delay) and
        pushed with the caller-chosen *seq* — fractional seq values
        slot the entry between the prefix's cycle-0 pushes and
        everything later, reproducing the fresh tie-break order
        exactly (see DESIGN.md · Mid-run snapshots).
        """
        try:
            self._runnable.remove(process)
        except ValueError:
            pass
        try:
            condition = process.generator.send(None)
        except StopIteration:
            raise SnapshotRestoreError(
                f"fork injection process {process.name!r} finished "
                f"without yielding a delay"
            ) from None
        if not isinstance(condition, int) or condition <= 0:
            raise SnapshotRestoreError(
                f"fork injection process {process.name!r} yielded "
                f"{condition!r}; expected a positive delay"
            )
        self.processes_stepped += 1
        process.state = WAITING
        _heappush(
            self._wheel, (self.now + condition, seq, "process", process)
        )

    def snapshot_elaboration(self) -> None:
        """Pin the elaboration boundary for :meth:`reset` to restore.

        A platform factory may leave notifications behind before the
        first :meth:`run` — ``sim.timeout_event(delay)``,
        ``event.notify(delay)``, ``event.notify(0)``, or a staged
        ``signal.write`` — all of which a fresh build would deliver.
        Without a pinned capture those elaboration-time notifications
        would exist on a fresh platform but not on a warm one,
        silently breaking the bit-for-bit reuse contract.

        Called automatically at the top of the first :meth:`run`; the
        warm-reuse executor calls it explicitly right after the platform
        factory returns (before per-run scaffolding such as the
        stressor arms), which is the precise elaboration boundary.
        Calling it again later re-pins the boundary.  This is simply
        :meth:`snapshot` in lenient mode, retained by the kernel.
        """
        self._elab_snapshot = self.snapshot(strict=False)

    def reset(self) -> None:
        """Return the kernel to its power-on state, keeping the platform.

        The warm-reuse protocol (see ``DESIGN.md`` · Campaign
        performance), now a thin wrapper over :meth:`restore` with the
        elaboration snapshot: factory-spawned processes are rebuilt and
        rescheduled in original spawn order, bare-generator processes
        (per-run stressor injections) are killed and dropped, and every
        queue, counter, and registered signal returns to its
        elaboration-time value — so a subsequent :meth:`run` is
        bit-for-bit indistinguishable from one on a freshly elaborated
        kernel.  Delta hooks are an explicit exception: tracing hooks
        are per-run scaffolding, so reset always clears them.

        Module-level state (memory contents, component counters) is the
        platform's job — see the registry bundle ``reset`` hook.
        """
        if self._elab_snapshot is None:
            self.snapshot_elaboration()
        self.restore(self._elab_snapshot)
        self.delta_hooks.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sanitizer(self):
        """The armed delta-race sanitizer, or ``None`` when disabled."""
        return self._sanitizer

    @property
    def signals(self) -> tuple:
        """Every registered signal, in registration order (read-only
        view; the static reachability analyzer walks it so it never
        needs to poke kernel-private registries)."""
        return tuple(self._signals)

    @property
    def processes(self) -> tuple:
        """Every live process, in spawn order (read-only view, same
        contract as :attr:`signals`)."""
        return tuple(self._processes)

    def stats(self) -> _t.Dict[str, int]:
        """Lifetime scheduling counters for this kernel instance.

        ``events`` counts every delivered notification (timed wheel
        pops and delta-event fan-outs), ``process_steps`` every process
        activation, ``delta_cycles`` every completed delta cycle.
        Campaign executors attach these to each
        :class:`~repro.core.runspec.RunOutcome` so throughput can be
        normalised by actual simulation work.
        """
        return {
            "events": self.events_processed,
            "process_steps": self.processes_stepped,
            "delta_cycles": self.delta_cycles_total,
        }

    @property
    def pending_activity(self) -> bool:
        """True when any work remains (runnable, delta, or timed)."""
        return bool(
            self._runnable
            or self._delta_resumes
            or self._delta_events
            or self._update_queue
            or self._timed_now
            or self._wheel
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Simulator(now={simtime.format_time(self.now)}, "
            f"processes={len(self._processes)})"
        )
