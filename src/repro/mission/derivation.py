"""Deriving fault/error descriptions — and stressor configurations —
from mission profiles.

This is the pipeline of Fig. 2: *mission profile* -> *functional
fault/error descriptions* -> *stressor*.  Each fault kind in the
catalog is sensitive to particular environmental stresses; the
derivation rescales its base rate by the profile's acceleration
factors and emits descriptors ready for the error-effect simulation.

The output :class:`StressorSpec` additionally binds descriptors to the
profile's *operating states*, so campaigns weight both *what* is
injected (by derived rate) and *when/under which load* (by state
fraction, with optional boosting of the special states).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..faults import FaultDescriptor, FaultKind
from . import rates
from .profile import MissionProfile, OperatingState

#: Which environmental stress accelerates which fault kind.
STRESS_SENSITIVITY: _t.Dict[FaultKind, _t.Tuple[str, ...]] = {
    FaultKind.BIT_FLIP: ("temperature",),
    FaultKind.STUCK_AT: ("temperature",),
    FaultKind.WORD_CORRUPTION: ("temperature",),
    FaultKind.OFFSET_DRIFT: ("temperature",),
    FaultKind.GAIN_DRIFT: ("temperature",),
    FaultKind.STUCK_VALUE: ("temperature", "vibration"),
    FaultKind.OPEN_CIRCUIT: ("vibration",),
    FaultKind.SHORT_TO_GROUND: ("vibration",),
    FaultKind.NOISE_BURST: ("emi",),
    FaultKind.MESSAGE_CORRUPTION: ("emi",),
    FaultKind.MESSAGE_DROP: ("emi", "vibration"),
    FaultKind.MESSAGE_DELAY: ("emi",),
    FaultKind.MESSAGE_MASQUERADE: ("emi",),
    FaultKind.EXECUTION_OVERHEAD: ("temperature",),
    FaultKind.TASK_KILL: ("temperature",),
}


def derive_descriptors(
    profile: MissionProfile,
    catalog: _t.Sequence[FaultDescriptor],
) -> _t.List[FaultDescriptor]:
    """Rescale every catalog descriptor's rate for *profile*.

    A fault kind sensitive to several stresses gets the product of the
    involved acceleration factors (independent mechanisms).
    """
    factors = rates.mission_scaling_factors(
        profile.temperature, profile.vibration, profile.emi
    )
    derived: _t.List[FaultDescriptor] = []
    for descriptor in catalog:
        factor = 1.0
        for stress in STRESS_SENSITIVITY[descriptor.kind]:
            factor *= factors[stress]
        derived.append(
            descriptor.with_rate(descriptor.rate_per_hour * factor)
        )
    return derived


@dataclasses.dataclass(frozen=True)
class StateWeight:
    """Sampling weight of one operating state in the stressor."""

    state: OperatingState
    weight: float


@dataclasses.dataclass
class StressorSpec:
    """Everything a stressor needs, derived from one mission profile.

    * ``descriptors`` — derived fault descriptions with mission-scaled
      rates; sampling weight of a descriptor is its rate share.
    * ``state_weights`` — operating states with sampling weights; the
      ``special_boost`` factor over-samples the paper's special/worst
      case states relative to their real-time fraction (importance
      sampling — the correction factor is retained for reporting).
    """

    profile_name: str
    descriptors: _t.List[FaultDescriptor]
    state_weights: _t.List[StateWeight]
    special_boost: float

    @property
    def total_rate_per_hour(self) -> float:
        return sum(d.rate_per_hour for d in self.descriptors)

    def descriptor_weights(self) -> _t.List[_t.Tuple[FaultDescriptor, float]]:
        total = self.total_rate_per_hour
        if total <= 0:
            uniform = 1.0 / len(self.descriptors) if self.descriptors else 0
            return [(d, uniform) for d in self.descriptors]
        return [(d, d.rate_per_hour / total) for d in self.descriptors]

    def expected_faults(self, hours: _t.Optional[float] = None) -> float:
        """Expected number of fault events over the exposure time."""
        if hours is None:
            raise ValueError("exposure hours required")
        return rates.expected_events(self.total_rate_per_hour, hours)


def derive_stressor_spec(
    profile: MissionProfile,
    catalog: _t.Sequence[FaultDescriptor],
    target_kinds: _t.Optional[_t.Iterable[str]] = None,
    special_boost: float = 10.0,
) -> StressorSpec:
    """Fig. 2 end-to-end: profile + catalog -> stressor configuration.

    ``target_kinds`` filters the catalog to the injection-point kinds
    actually present in the platform under test (a profile for a
    sensor ECU should not emit CAN faults if the DUT has no bus).
    """
    if special_boost < 1.0:
        raise ValueError("special_boost must be >= 1")
    descriptors = derive_descriptors(profile, catalog)
    if target_kinds is not None:
        kinds = set(target_kinds)
        descriptors = [
            d for d in descriptors
            if any(d.applicable_to(k) for k in kinds)
        ]
    weights = []
    for state in profile.states:
        weight = state.fraction * (special_boost if state.special else 1.0)
        weights.append(StateWeight(state, weight))
    total = sum(w.weight for w in weights)
    if total > 0:
        weights = [
            StateWeight(w.state, w.weight / total) for w in weights
        ]
    return StressorSpec(
        profile_name=profile.name,
        descriptors=descriptors,
        state_weights=weights,
        special_boost=special_boost,
    )
