"""Failure-rate models: environmental stress -> fault occurrence rate.

Sec. 3.2: "An environmental stress, e.g., could describe vibration
loads for components according to their specific mounting point.  Based
on this vibration load, a probability of errors due to wiring, such as
open load or short to ground, should be derived."

The models here are the standard reliability-engineering forms:

* **Arrhenius** temperature acceleration for semiconductor and drift
  mechanisms;
* a **Basquin-style power law** for vibration-driven wiring/fatigue
  faults (open load, short to ground);
* a **quadratic field model** for EMI-induced disturbances.

All functions return multiplicative *acceleration factors* applied to a
descriptor's base rate, or the rescaled rate directly.
"""

from __future__ import annotations

import math
import typing as _t

from .profile import EmiProfile, TemperatureProfile, VibrationProfile

BOLTZMANN_EV = 8.617333262e-5  # eV/K

#: Reference conditions the catalog base rates are quoted at.
REFERENCE_TEMPERATURE_C = 55.0
REFERENCE_VIBRATION_GRMS = 1.0
REFERENCE_EMI_V_PER_M = 10.0


def arrhenius_factor(
    use_temp_c: float,
    ref_temp_c: float = REFERENCE_TEMPERATURE_C,
    activation_energy_ev: float = 0.7,
) -> float:
    """Acceleration of a thermally activated mechanism at *use_temp_c*
    relative to *ref_temp_c*."""
    use_k = use_temp_c + 273.15
    ref_k = ref_temp_c + 273.15
    if use_k <= 0 or ref_k <= 0:
        raise ValueError("temperature below absolute zero")
    return math.exp(
        (activation_energy_ev / BOLTZMANN_EV) * (1 / ref_k - 1 / use_k)
    )


def temperature_factor(
    profile: TemperatureProfile,
    activation_energy_ev: float = 0.7,
) -> float:
    """Lifetime-weighted Arrhenius factor over a temperature histogram."""
    return sum(
        fraction
        * arrhenius_factor(temp, activation_energy_ev=activation_energy_ev)
        for temp, fraction in profile.histogram.items()
    )


def vibration_factor(
    profile: VibrationProfile,
    exponent: float = 2.5,
    reference_grms: float = REFERENCE_VIBRATION_GRMS,
) -> float:
    """Basquin-style power-law acceleration for wiring/fatigue faults.

    Doubling the vibration level multiplies the wiring fault rate by
    ``2**exponent`` (~5.7 at the default exponent), which is why the
    mounting point matters so much.
    """
    if reference_grms <= 0:
        raise ValueError("reference vibration must be positive")
    return (profile.grms / reference_grms) ** exponent


def emi_factor(
    profile: EmiProfile,
    reference_v_per_m: float = REFERENCE_EMI_V_PER_M,
) -> float:
    """Quadratic field-strength scaling of EMI-induced disturbances."""
    if reference_v_per_m <= 0:
        raise ValueError("reference field must be positive")
    return (profile.field_v_per_m / reference_v_per_m) ** 2


def expected_events(rate_per_hour: float, hours: float) -> float:
    """Expected fault occurrences over an exposure time (Poisson mean)."""
    if rate_per_hour < 0 or hours < 0:
        raise ValueError("negative rate or exposure")
    return rate_per_hour * hours


def probability_of_at_least_one(
    rate_per_hour: float, hours: float
) -> float:
    """P(>=1 event) under a Poisson process: 1 - exp(-λt)."""
    return 1.0 - math.exp(-expected_events(rate_per_hour, hours))


def mission_scaling_factors(
    temperature: TemperatureProfile,
    vibration: VibrationProfile,
    emi: EmiProfile,
) -> _t.Dict[str, float]:
    """All three acceleration factors for a profile, keyed by stress."""
    return {
        "temperature": temperature_factor(temperature),
        "vibration": vibration_factor(vibration),
        "emi": emi_factor(emi),
    }
