"""Mission profiles (substrate S8): stresses, states, rate derivation."""

from .derivation import (
    STRESS_SENSITIVITY,
    StateWeight,
    StressorSpec,
    derive_descriptors,
    derive_stressor_spec,
)
from .profile import (
    EmiProfile,
    MissionProfile,
    OperatingState,
    ProfileTransfer,
    SupplyChainLevel,
    TemperatureProfile,
    VibrationProfile,
    standard_passenger_car_profile,
)
from .rates import (
    arrhenius_factor,
    emi_factor,
    expected_events,
    mission_scaling_factors,
    probability_of_at_least_one,
    temperature_factor,
    vibration_factor,
)

__all__ = [
    "STRESS_SENSITIVITY",
    "StateWeight",
    "StressorSpec",
    "derive_descriptors",
    "derive_stressor_spec",
    "EmiProfile",
    "MissionProfile",
    "OperatingState",
    "ProfileTransfer",
    "SupplyChainLevel",
    "TemperatureProfile",
    "VibrationProfile",
    "standard_passenger_car_profile",
    "arrhenius_factor",
    "emi_factor",
    "expected_events",
    "mission_scaling_factors",
    "probability_of_at_least_one",
    "temperature_factor",
    "vibration_factor",
]
