"""Mission profiles.

A Mission Profile "defines the application-specific context refined for
a system or a component ... expressed as a set of relevant environmental
stresses, functional loads and operating conditions" (Sec. 3.2).  After
formalization it is "passed down from the OEM to the semiconductor
manufacturer" (Fig. 2) — modelled here as successive :meth:`refine`
steps through :class:`ProfileTransfer` functions (mounting-point
vibration amplification, in-housing temperature rise, duty-cycle
scaling).

The profile's two halves:

* **environmental stresses** — temperature histogram, vibration level,
  EMI exposure — drive the *failure-rate* derivation
  (:mod:`repro.mission.rates`);
* **operating states** — normal driving, high-load special cases such
  as "steering against a curbstone", degraded modes — drive *scenario
  selection*: which loads are applied while errors are injected.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t


class SupplyChainLevel(enum.Enum):
    """Where in the OEM -> Tier1 -> semiconductor flow a profile lives."""

    OEM = "oem"
    TIER1 = "tier1"
    SEMICONDUCTOR = "semiconductor"

    def next_level(self) -> "SupplyChainLevel":
        order = [
            SupplyChainLevel.OEM,
            SupplyChainLevel.TIER1,
            SupplyChainLevel.SEMICONDUCTOR,
        ]
        index = order.index(self)
        if index + 1 >= len(order):
            raise ValueError("semiconductor is the last refinement level")
        return order[index + 1]


@dataclasses.dataclass(frozen=True)
class TemperatureProfile:
    """Histogram: operating temperature (°C) -> fraction of lifetime."""

    histogram: _t.Mapping[float, float]

    def __post_init__(self):
        total = sum(self.histogram.values())
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"temperature fractions sum to {total}, not 1")

    def shifted(self, delta_c: float) -> "TemperatureProfile":
        """The same distribution shifted by *delta_c* (housing rise)."""
        return TemperatureProfile(
            {temp + delta_c: frac for temp, frac in self.histogram.items()}
        )

    @property
    def mean(self) -> float:
        return sum(t * f for t, f in self.histogram.items())


@dataclasses.dataclass(frozen=True)
class VibrationProfile:
    """Broadband vibration exposure at a mounting location."""

    grms: float  # root-mean-square acceleration, in g

    def __post_init__(self):
        if self.grms < 0:
            raise ValueError("negative vibration level")

    def amplified(self, factor: float) -> "VibrationProfile":
        return VibrationProfile(self.grms * factor)


@dataclasses.dataclass(frozen=True)
class EmiProfile:
    """Electromagnetic disturbance exposure."""

    field_v_per_m: float

    def __post_init__(self):
        if self.field_v_per_m < 0:
            raise ValueError("negative field strength")


@dataclasses.dataclass(frozen=True)
class OperatingState:
    """One operating condition with its functional loads.

    ``loads`` maps load names to engineering values (e.g.
    ``{"servo_load": 15.0, "bus_utilization": 0.7}``); ``special``
    flags the malfunction / special-use-case states the paper calls
    out ("the high load for the servo motor when steering against a
    curbstone").
    """

    name: str
    fraction: float  # of operating time
    loads: _t.Mapping[str, float] = dataclasses.field(default_factory=dict)
    special: bool = False

    def __post_init__(self):
        if not 0 <= self.fraction <= 1:
            raise ValueError(f"state {self.name!r}: bad fraction")


@dataclasses.dataclass(frozen=True)
class MissionProfile:
    """The complete formalized mission profile of one component."""

    name: str
    level: SupplyChainLevel
    lifetime_hours: float
    operating_hours: float
    temperature: TemperatureProfile
    vibration: VibrationProfile
    emi: EmiProfile
    states: _t.Tuple[OperatingState, ...]

    def __post_init__(self):
        if self.operating_hours > self.lifetime_hours:
            raise ValueError("operating hours exceed lifetime")
        total = sum(state.fraction for state in self.states)
        if self.states and not 0.999 <= total <= 1.001:
            raise ValueError(
                f"operating state fractions sum to {total}, not 1"
            )
        names = [s.name for s in self.states]
        if len(set(names)) != len(names):
            raise ValueError("duplicate operating state names")

    def state(self, name: str) -> OperatingState:
        for state in self.states:
            if state.name == name:
                return state
        raise KeyError(f"no operating state {name!r}")

    @property
    def special_states(self) -> _t.List[OperatingState]:
        return [s for s in self.states if s.special]

    def hours_in(self, state_name: str) -> float:
        return self.operating_hours * self.state(state_name).fraction

    def refine(self, transfer: "ProfileTransfer") -> "MissionProfile":
        """Push the profile one supply-chain level down (Fig. 2)."""
        return MissionProfile(
            name=f"{self.name}/{transfer.component_name}",
            level=self.level.next_level(),
            lifetime_hours=self.lifetime_hours,
            operating_hours=self.operating_hours * transfer.duty_cycle,
            temperature=self.temperature.shifted(transfer.temperature_rise_c),
            vibration=self.vibration.amplified(
                transfer.vibration_amplification
            ),
            emi=EmiProfile(self.emi.field_v_per_m * transfer.emi_shielding),
            states=self.states,
        )


@dataclasses.dataclass(frozen=True)
class ProfileTransfer:
    """How stresses transform between supply-chain levels.

    A Tier-1's ECU housing warms the board (``temperature_rise_c``),
    the bracket resonates (``vibration_amplification`` > 1) or isolates
    (< 1), the enclosure shields EMI (``emi_shielding`` < 1), and the
    component may only be powered a fraction of vehicle operation
    (``duty_cycle``).
    """

    component_name: str
    temperature_rise_c: float = 0.0
    vibration_amplification: float = 1.0
    emi_shielding: float = 1.0
    duty_cycle: float = 1.0

    def __post_init__(self):
        if self.vibration_amplification < 0:
            raise ValueError("negative vibration amplification")
        if not 0 < self.duty_cycle <= 1:
            raise ValueError("duty cycle must be in (0, 1]")
        if self.emi_shielding < 0:
            raise ValueError("negative EMI shielding factor")


def standard_passenger_car_profile() -> MissionProfile:
    """The OEM-level reference profile used by examples and benches.

    15-year vehicle life, 8000 operating hours, ZVEI-style temperature
    mix, with the paper's "steering against a curbstone" special state.
    """
    return MissionProfile(
        name="passenger_car",
        level=SupplyChainLevel.OEM,
        lifetime_hours=15 * 365 * 24,
        operating_hours=8000.0,
        temperature=TemperatureProfile(
            {-20.0: 0.05, 23.0: 0.60, 60.0: 0.25, 85.0: 0.10}
        ),
        vibration=VibrationProfile(grms=1.5),
        emi=EmiProfile(field_v_per_m=30.0),
        states=(
            OperatingState("parked_ignition_on", 0.05),
            OperatingState(
                "city_driving", 0.45,
                loads={"servo_load": 4.0, "bus_utilization": 0.5},
            ),
            OperatingState(
                "highway_driving", 0.40,
                loads={"servo_load": 2.0, "bus_utilization": 0.3},
            ),
            OperatingState(
                "parking_maneuver", 0.09,
                loads={"servo_load": 8.0, "bus_utilization": 0.6},
            ),
            OperatingState(
                "curbstone_steering", 0.01,
                loads={"servo_load": 15.0, "bus_utilization": 0.6},
                special=True,
            ),
        ),
    )
