"""Campaign statistics (substrate S13)."""

from .estimators import (
    ConfidenceInterval,
    WeightedRateEstimator,
    clopper_pearson,
    failure_rate_per_hour,
    required_runs,
    rule_of_three,
    wilson,
)

__all__ = [
    "ConfidenceInterval",
    "WeightedRateEstimator",
    "clopper_pearson",
    "failure_rate_per_hour",
    "required_runs",
    "rule_of_three",
    "wilson",
]
