"""Statistical estimators for fault-injection campaigns.

Sec. 3.4: "Standard Monte-Carlo techniques may fail to identify the
critical error effects leading to system failure because failure
probabilities are extremely low."  Quantifying that — how tight is the
estimate a campaign of N runs gives, and how many runs would be needed —
requires exact small-sample machinery:

* :func:`clopper_pearson` — exact binomial confidence interval, valid
  even with zero observed failures;
* :func:`rule_of_three` — the classic 3/N upper bound for zero events;
* :func:`required_runs` — how many Monte-Carlo runs are needed to see a
  failure of probability p with given confidence (the "lucky guess"
  cost);
* :class:`WeightedRateEstimator` — importance-sampling correction for
  campaigns that over-sample special operating states.
"""

from __future__ import annotations

import math
import typing as _t

from scipy import stats as _scipy_stats


class ConfidenceInterval(_t.NamedTuple):
    low: float
    high: float
    confidence: float


def clopper_pearson(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Exact binomial CI on a proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    if not 0 < confidence < 1:
        raise ValueError("confidence out of (0,1)")
    alpha = 1 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = _scipy_stats.beta.ppf(alpha / 2, successes, trials - successes + 1)
    if successes == trials:
        high = 1.0
    else:
        high = _scipy_stats.beta.ppf(
            1 - alpha / 2, successes + 1, trials - successes
        )
    return ConfidenceInterval(float(low), float(high), confidence)


def wilson(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval on a proportion.

    The standard companion to :func:`clopper_pearson`: approximate
    rather than exact, but with better average coverage (Clopper–
    Pearson is conservative) and well-behaved at the p=0 and p=1
    boundaries — the regime a safety campaign with zero observed
    hazards lives in.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    if not 0 < confidence < 1:
        raise ValueError("confidence out of (0,1)")
    z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2))
    p = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    spread = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    # Exact boundary cases: at p=0 (p=1) the score interval's lower
    # (upper) end is identically 0 (1); clamp away float residue.
    low = 0.0 if successes == 0 else max(center - spread, 0.0)
    high = 1.0 if successes == trials else min(center + spread, 1.0)
    return ConfidenceInterval(low, high, confidence)


def rule_of_three(trials: int, confidence: float = 0.95) -> float:
    """Upper bound on p when zero failures were observed in N trials."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    return -math.log(1 - confidence) / trials


def required_runs(probability: float, confidence: float = 0.95) -> int:
    """Monte-Carlo runs needed to observe >=1 event of probability *p*
    with the given confidence: n = ln(1-c)/ln(1-p)."""
    if not 0 < probability < 1:
        raise ValueError("probability out of (0,1)")
    if not 0 < confidence < 1:
        raise ValueError("confidence out of (0,1)")
    return math.ceil(math.log(1 - confidence) / math.log(1 - probability))


class WeightedRateEstimator:
    """Importance-sampling estimate of a failure probability.

    Campaigns that boost rare operating states sample scenario i with
    probability q_i instead of its true probability p_i; each observed
    outcome is weighted by w_i = p_i / q_i.  The estimator accumulates
    (weight, failed) observations and reports the weighted failure
    probability with a normal-approximation standard error.
    """

    def __init__(self):
        self._weights: _t.List[float] = []
        self._failures: _t.List[float] = []

    def record(self, weight: float, failed: bool) -> None:
        if weight <= 0:
            raise ValueError("weights must be positive")
        self._weights.append(weight)
        self._failures.append(weight if failed else 0.0)

    @property
    def n(self) -> int:
        return len(self._weights)

    @property
    def estimate(self) -> float:
        if not self._weights:
            raise ValueError("no observations")
        return sum(self._failures) / sum(self._weights)

    @property
    def standard_error(self) -> float:
        if self.n < 2:
            return float("inf")
        mean_weight = sum(self._weights) / self.n
        estimate = self.estimate
        residuals = [
            (f - estimate * w) for f, w in zip(self._failures, self._weights)
        ]
        variance = sum(r * r for r in residuals) / (self.n - 1)
        return math.sqrt(variance / self.n) / mean_weight

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        z = float(_scipy_stats.norm.ppf(0.5 + confidence / 2))
        spread = z * self.standard_error
        return ConfidenceInterval(
            max(self.estimate - spread, 0.0),
            min(self.estimate + spread, 1.0),
            confidence,
        )


def failure_rate_per_hour(
    failure_probability_per_run: float, simulated_hours_per_run: float
) -> float:
    """Convert a per-run failure probability into a rate per hour."""
    if simulated_hours_per_run <= 0:
        raise ValueError("simulated time must be positive")
    return failure_probability_per_run / simulated_hours_per_run
