"""Named platform bundles — the cross-process factory registry.

Parallel campaign execution (``repro.core.executors``) fans
:class:`~repro.core.runspec.RunSpec` objects out to worker processes.
A worker cannot receive the platform *factory itself* (factories close
over modules, classifiers over lambdas — none of that pickles), so a
spec carries only a **platform key** and each worker resolves the key
against this registry, building its own private prototype instance.

A bundle names the three callables a campaign needs:

* ``factory(sim) -> Module`` — builds a fresh platform into *sim*;
* ``observe(root) -> RunObservation`` — probes it after a run;
* ``classifier_factory() -> Classifier`` — builds the outcome rules
  (a factory, not an instance, because classifiers hold lambdas and
  must be constructed on the consuming side).

An optional fourth callable, ``trace_signals(root) -> {name: signal}``,
nominates the kernel signals the observability layer
(:mod:`repro.observe`) watches when a campaign runs with ``trace=`` —
the platform knows which of its signals carry safety-relevant state;
the trace machinery should not have to guess.

An optional fifth callable, ``reset(root)``, opts the platform into
**warm reuse**: after :meth:`Simulator.reset
<repro.kernel.scheduler.Simulator.reset>` has restored the kernel,
``reset(root)`` must restore every piece of module-level state
(memory images, component counters, latched actuators) to its
elaboration-time value, so that running the next spec on the reused
platform is bit-for-bit identical to running it on a fresh build.
Bundles without a ``reset`` hook (``resettable == False``) are rebuilt
from scratch for every run — correct by construction, just slower.

Registration must happen at **module import time** so that worker
processes — which re-import the registering module under ``spawn``
start methods — see the same catalogue as the parent.  The built-in
automotive prototypes are registered by ``repro.platforms.__init__``.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.classification import Classifier, RunObservation
    from ..kernel import Module, Simulator


class PlatformBundle(_t.NamedTuple):
    """Everything a worker needs to rebuild and judge one platform."""

    name: str
    factory: "_t.Callable[[Simulator], Module]"
    observe: "_t.Callable[[Module], RunObservation]"
    classifier_factory: "_t.Callable[[], Classifier]"
    description: str = ""
    #: Optional ``root -> {name: signal}``; ``None`` = nothing watched.
    trace_signals: _t.Optional[_t.Callable] = None
    #: Optional ``root -> None`` restoring module-level state after a
    #: kernel reset; ``None`` = not warm-reusable.
    reset: _t.Optional[_t.Callable] = None
    #: Optional ``root -> state`` deep-capturing module-level state at a
    #: scheduling boundary; pairs with ``restore_state`` to opt the
    #: platform into snapshot-fork execution.  ``None`` = not forkable.
    capture_state: _t.Optional[_t.Callable] = None
    #: Optional ``(root, state) -> None`` re-seeding module-level state
    #: from a ``capture_state`` capture.  Must tolerate being applied
    #: repeatedly from the same capture (fresh copies every call).
    restore_state: _t.Optional[_t.Callable] = None
    #: Optional ``root -> {"detectors": {mechanism: [module]},
    #: "outputs": [module-or-signal]}`` declaring the platform's
    #: *observation surface* for static reachability analysis
    #: (:mod:`repro.analyze.reach`): the detector components beyond
    #: the auto-discovered ``DETECTION_MECHANISMS`` declarations, and
    #: every module/signal the ``observe`` probe or the classifier
    #: reads.  ``None`` = surface unknown — the analyzer then refuses
    #: to call any fault site dead, so pruning degrades to a no-op
    #: instead of silently skipping live injections.
    reach_surface: _t.Optional[_t.Callable] = None

    @property
    def resettable(self) -> bool:
        """True when the platform opts into warm reuse."""
        return self.reset is not None

    @property
    def forkable(self) -> bool:
        """True when the platform opts into snapshot-fork execution."""
        return self.capture_state is not None and self.restore_state is not None


_REGISTRY: _t.Dict[str, PlatformBundle] = {}

#: Per-process classifier cache: classifiers are stateless rule lists,
#: so one instance per (process, platform) serves every run.
_CLASSIFIERS: _t.Dict[str, "Classifier"] = {}


def register_platform(
    name: str,
    factory,
    observe,
    classifier_factory,
    description: str = "",
    trace_signals=None,
    reset=None,
    capture_state=None,
    restore_state=None,
    reach_surface=None,
    replace: bool = False,
) -> PlatformBundle:
    """Register a platform bundle under *name*.

    Re-registering an existing name requires ``replace=True`` — silent
    shadowing would make parent and worker processes disagree about
    what a key means.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"platform {name!r} is already registered; "
            f"pass replace=True to override"
        )
    if (capture_state is None) != (restore_state is None):
        raise ValueError(
            f"platform {name!r}: capture_state and restore_state must "
            f"be provided together"
        )
    bundle = PlatformBundle(
        name, factory, observe, classifier_factory, description,
        trace_signals, reset, capture_state, restore_state,
        reach_surface,
    )
    _REGISTRY[name] = bundle
    _CLASSIFIERS.pop(name, None)
    return bundle


def get_platform(name: str) -> PlatformBundle:
    """Resolve *name*; raises ``KeyError`` listing what is available."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


def get_classifier(name: str):
    """The per-process cached classifier instance for *name*."""
    classifier = _CLASSIFIERS.get(name)
    if classifier is None:
        classifier = get_platform(name).classifier_factory()
        _CLASSIFIERS[name] = classifier
    return classifier


def available_platforms() -> _t.Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
