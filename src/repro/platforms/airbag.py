"""The CAPS airbag virtual prototype.

The paper's motivating example (Sec. 1, Fig. 1): Combined Active and
Passive Safety "links the data from environment sensors with the airbag
control ... it must be absolutely guaranteed that the failure of any
system component does not trigger the airbag in normal operation."

The platform models that system at the level the stress tests need:

* two redundant acceleration channels (analog front-ends + ADC),
* an ECC-protected parameter memory holding the deploy threshold,
* the airbag ECU: cross-channel plausibility, N-consecutive-samples
  debounce, threshold compare, arm/fire interlock sequence,
* a windowed watchdog supervising the control loop,
* the squib actuator (latching — a spurious deployment is permanent).

Safety goal G1: the squib must not fire without a real crash.
Functional goal G2: with a real crash pulse, the squib must fire
within ``deploy_deadline`` of the pulse start.
"""

from __future__ import annotations

import typing as _t

from ..core import Outcome, build_standard_classifier
from ..hw import (
    AdcSensor,
    EccMemory,
    Squib,
    Watchdog,
    constant,
    crash_pulse,
)
from ..hw.watchdog import KICK_KEY
from ..kernel import Module, Simulator, simtime
from ..tlm import GenericPayload

#: ADC code the deploy threshold is stored as (≈ 24 g on a ±50 g, 12-bit
#: channel biased at 2.5 V).
DEPLOY_THRESHOLD_CODE = 2400
SAMPLE_PERIOD = simtime.ms(1)
PLAUSIBILITY_BAND = 250  # max |a-b| in codes
DEBOUNCE_SAMPLES = 3


class AirbagEcu(Module):
    """The airbag control unit.

    ``plausibility_band`` / ``debounce_samples`` are ablation knobs:
    the protection-ablation benchmark (E11) disables each mechanism to
    quantify what it contributes to the safety goal.
    """

    def __init__(
        self,
        name: str,
        parent: Module,
        sensor_a: AdcSensor,
        sensor_b: AdcSensor,
        param_mem,
        squib: Squib,
        watchdog: Watchdog,
        plausibility_band: int = PLAUSIBILITY_BAND,
        debounce_samples: int = DEBOUNCE_SAMPLES,
        dual_channel: bool = True,
    ):
        super().__init__(name, parent=parent)
        self.sensor_a = sensor_a
        self.sensor_b = sensor_b
        self.param_mem = param_mem
        self.squib = squib
        self.watchdog = watchdog
        self.plausibility_band = plausibility_band
        self.debounce_samples = debounce_samples
        self.dual_channel = dual_channel
        self.detected_errors = 0
        self.plausibility_rejects = 0
        self.debounce_counter = 0
        self.deploy_commanded_at: _t.Optional[int] = None
        self.cycles = 0
        self.process(self._control, name="control")

    def warm_reset(self) -> None:
        """Restore power-on state (warm-platform reuse)."""
        self.detected_errors = 0
        self.plausibility_rejects = 0
        self.debounce_counter = 0
        self.deploy_commanded_at = None
        self.cycles = 0

    def _read_threshold(self) -> _t.Optional[int]:
        payload = GenericPayload.read(0, 4)
        self.param_mem.tsock.deliver(payload, 0)
        if not payload.ok:
            self.detected_errors += 1
            return None
        return payload.word

    def _kick_watchdog(self) -> None:
        self.watchdog.tsock.deliver(
            GenericPayload.write_word(0x0, KICK_KEY), 0
        )

    def _control(self):
        self.watchdog.tsock.deliver(GenericPayload.write_word(0x4, 1), 0)
        while True:
            yield SAMPLE_PERIOD
            self.cycles += 1
            self._kick_watchdog()
            threshold = self._read_threshold()
            if threshold is None:
                continue  # detected parameter fault: skip, stay safe
            code_a = self.sensor_a.output.read()
            code_b = self.sensor_b.output.read()
            if (
                self.dual_channel
                and abs(code_a - code_b) > self.plausibility_band
            ):
                self.plausibility_rejects += 1
                self.debounce_counter = 0
                continue
            above = code_a > threshold and (
                not self.dual_channel or code_b > threshold
            )
            if above:
                self.debounce_counter += 1
            else:
                self.debounce_counter = 0
            if (
                self.debounce_counter >= self.debounce_samples
                and self.deploy_commanded_at is None
            ):
                self.deploy_commanded_at = self.sim.now
                self._deploy()

    def _deploy(self) -> None:
        self.squib.tsock.deliver(
            GenericPayload.write_word(0x0, Squib.ARM_KEY), 0
        )
        self.squib.tsock.deliver(
            GenericPayload.write_word(0x4, Squib.FIRE_KEY), 0
        )


class AirbagPlatform(Module):
    """Top-level CAPS platform.

    ``crash_at=None`` builds the *normal operation* scenario (safety
    goal G1 applies); a time builds the crash scenario (G2 applies).
    """

    def __init__(
        self,
        sim: Simulator,
        crash_at: _t.Optional[int] = None,
        crash_peak_g: float = 40.0,
        name: str = "caps",
        plausibility_band: int = PLAUSIBILITY_BAND,
        debounce_samples: int = DEBOUNCE_SAMPLES,
        dual_channel: bool = True,
        ecc_params: bool = True,
    ):
        super().__init__(name, sim=sim)
        self.crash_at = crash_at
        if crash_at is None:
            # ~1 g of road noise-free baseline on a 0-5 V channel.
            source = constant(2.6)
        else:
            pulse = crash_pulse(crash_at, peak_g=crash_peak_g,
                                duration=simtime.ms(30))
            source = lambda now: 2.5 + pulse(now) * 0.05  # 50 mV per g
        self.sensor_a = AdcSensor(
            "sensor_a", parent=self, source=source, period=SAMPLE_PERIOD
        )
        self.sensor_b = AdcSensor(
            "sensor_b", parent=self, source=source, period=SAMPLE_PERIOD
        )
        if ecc_params:
            self.param_mem = EccMemory("params", parent=self, size=16)
        else:
            from ..hw import Memory

            self.param_mem = Memory("params", parent=self, size=16)
            # Present the plain memory with the counters the observer
            # probes, so observation code stays uniform.
            self.param_mem.corrected_errors = 0
            self.param_mem.detected_errors = 0
        self.param_mem.load(0, DEPLOY_THRESHOLD_CODE.to_bytes(4, "little"))
        self.squib = Squib("squib", parent=self)
        self.watchdog = Watchdog(
            "watchdog", parent=self, timeout=simtime.ms(5)
        )
        self.ecu = AirbagEcu(
            "ecu", parent=self,
            sensor_a=self.sensor_a, sensor_b=self.sensor_b,
            param_mem=self.param_mem, squib=self.squib,
            watchdog=self.watchdog,
            plausibility_band=plausibility_band,
            debounce_samples=debounce_samples,
            dual_channel=dual_channel,
        )


    def warm_reset(self) -> None:
        """Restore elaboration-time module state (warm-platform reuse).

        Called by the registry bundle's ``reset`` hook after
        :meth:`Simulator.reset` has already restored kernel state
        (signals, processes, queues).  Replays exactly what
        ``__init__`` established: zeroed ECC image plus the deploy
        threshold, disarmed squib and watchdog, cleared counters.
        """
        self.sensor_a.warm_reset()
        self.sensor_b.warm_reset()
        self.param_mem.warm_reset()
        if not isinstance(self.param_mem, EccMemory):
            self.param_mem.corrected_errors = 0
            self.param_mem.detected_errors = 0
        self.param_mem.load(0, DEPLOY_THRESHOLD_CODE.to_bytes(4, "little"))
        self.squib.warm_reset()
        self.watchdog.warm_reset()
        self.ecu.warm_reset()

    def capture_state(self) -> dict:
        """Deep-capture every piece of mutable module state.

        The snapshot-fork counterpart of :meth:`warm_reset`: instead of
        returning to power-on values, record the *mid-run* values so
        forked runs resume from the shared prefix.  Everything a
        process body or TLM handler mutates must be here — the VP011
        lint rule flags registrations that skip this hook.
        """
        ecu = self.ecu
        state = {
            "sensor_a": self.sensor_a.capture_state(),
            "sensor_b": self.sensor_b.capture_state(),
            "param_mem": self.param_mem.capture_state(),
            "squib": self.squib.capture_state(),
            "watchdog": self.watchdog.capture_state(),
            "ecu": (
                ecu.detected_errors,
                ecu.plausibility_rejects,
                ecu.debounce_counter,
                ecu.deploy_commanded_at,
                ecu.cycles,
            ),
        }
        if not isinstance(self.param_mem, EccMemory):
            state["plain_counters"] = (
                self.param_mem.corrected_errors,
                self.param_mem.detected_errors,
            )
        return state

    def restore_state(self, state: dict) -> None:
        """Re-seed module state from a :meth:`capture_state` capture.

        Safe to apply repeatedly from the same capture (component
        restores copy, never alias, their mutable images) — the fork
        executor restores once per forked run, and twice around
        process re-priming (see ``restore_kernel_state``).
        """
        ecu = self.ecu
        self.sensor_a.restore_state(state["sensor_a"])
        self.sensor_b.restore_state(state["sensor_b"])
        self.param_mem.restore_state(state["param_mem"])
        self.squib.restore_state(state["squib"])
        self.watchdog.restore_state(state["watchdog"])
        (ecu.detected_errors, ecu.plausibility_rejects,
         ecu.debounce_counter, ecu.deploy_commanded_at,
         ecu.cycles) = state["ecu"]
        if "plain_counters" in state:
            (self.param_mem.corrected_errors,
             self.param_mem.detected_errors) = state["plain_counters"]


def warm_reset(root: AirbagPlatform) -> None:
    """Registry ``reset`` hook for the airbag bundles."""
    root.warm_reset()


def capture_state(root: AirbagPlatform) -> dict:
    """Registry ``capture_state`` hook for the airbag bundles."""
    return root.capture_state()


def restore_state(root: AirbagPlatform, state: dict) -> None:
    """Registry ``restore_state`` hook for the airbag bundles."""
    root.restore_state(state)


def build_normal_operation(sim: Simulator) -> AirbagPlatform:
    """Factory for G1 campaigns: no crash, nothing should deploy."""
    return AirbagPlatform(sim, crash_at=None)


def build_crash_scenario(sim: Simulator) -> AirbagPlatform:
    """Factory for G2 campaigns: crash at t=50 ms, deploy expected."""
    return AirbagPlatform(sim, crash_at=simtime.ms(50))


def observe(root: Module) -> dict:
    """Probe set for the classifier."""
    platform = root
    points = platform.param_mem.injection_points
    param_point = points.get("codewords") or points["array"]
    return {
        "squib_fired": platform.squib.fired,
        "fire_time": platform.squib.fire_time,
        "spurious_commands": platform.squib.spurious_commands,
        "ecc_corrected": platform.param_mem.corrected_errors,
        "detected": (
            platform.ecu.detected_errors
            + platform.param_mem.detected_errors
            + platform.ecu.plausibility_rejects
            + platform.watchdog.timeouts
        ),
        "threshold_word": param_point.peek(0),
        "cycles": platform.ecu.cycles,
    }


def trace_signals(root: Module) -> dict:
    """Signals the observability layer watches for this platform.

    The two accelerometer outputs are where injected sensor/memory
    faults first become visible on the way to the deployment decision;
    watching more (e.g. every ECU register) costs tracer callbacks on
    every signal write, so the nomination stays deliberately small.
    """
    platform = root
    return {
        platform.sensor_a.output.name: platform.sensor_a.output,
        platform.sensor_b.output.name: platform.sensor_b.output,
    }


def reach_surface(root: Module) -> dict:
    """Observation surface for static reachability analysis.

    ``outputs`` must name every module whose state :func:`observe`
    reads — a fault site with no structural path to any of them (nor
    to a detector) provably cannot change the classification, which is
    the licence :mod:`repro.analyze.reach` needs before it may call a
    site dead.  Detector components (watchdog, ECC memory) are
    auto-discovered from their ``DETECTION_MECHANISMS`` declarations,
    so ``detectors`` carries no extras here.
    """
    platform = root
    return {
        "detectors": {},
        "outputs": [
            platform.squib,
            platform.param_mem,
            platform.watchdog,
            platform.ecu,
        ],
    }


def normal_operation_classifier():
    """G1: any deployment is hazardous."""
    return build_standard_classifier(
        hazard_keys=["squib_fired"],
        value_keys=["threshold_word"],
        timing_keys=[],
        detection_keys=["detected", "spurious_commands"],
        masking_keys=["ecc_corrected"],
    )


def crash_classifier(deploy_deadline: int):
    """G2: missing or late deployment is the hazard."""
    from ..core import Classifier

    classifier = Classifier()
    classifier.add_rule(
        Outcome.HAZARDOUS,
        lambda f, g: not f.get("squib_fired"),
        "hazard:no_deployment",
    )
    classifier.add_rule(
        Outcome.TIMING_FAILURE,
        lambda f, g: (
            f.get("squib_fired")
            and g.get("fire_time") is not None
            and f.get("fire_time") is not None
            and f["fire_time"] > g["fire_time"] + deploy_deadline
        ),
        "timing:late_deployment",
    )
    classifier.add_rule(
        Outcome.DETECTED_SAFE,
        lambda f, g: (f.get("detected") or 0) > (g.get("detected") or 0),
        "detected",
    )
    classifier.add_rule(
        Outcome.MASKED,
        lambda f, g: (f.get("ecc_corrected") or 0)
        > (g.get("ecc_corrected") or 0),
        "masked:ecc",
    )
    return classifier
