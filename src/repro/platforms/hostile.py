"""A deliberately misbehaving DUT — the executor layer's crash-test dummy.

Fault-tolerant campaign execution (per-run deadlines, worker-crash
retry, checkpoint/resume) can only be pinned down by a platform whose
injected faults attack the *campaign machinery itself*: runs that
livelock the kernel, raise out of a process body, or hard-kill the
worker process.  This prototype models exactly that — "runaway
firmware" as a fault class — through the generic ``behavior``
injection point kind (:mod:`repro.core.injector`).

The nominal DUT is trivial and fully deterministic: a firmware loop
incrementing a cycle counter over a small scratch memory, so fault-free
runs classify as ``NO_EFFECT`` and a scratch-memory SEU shows up as
ordinary ``SDC`` — giving equivalence tests a mix of conclusive
outcomes next to the hostile ones.

Behavior modes (injected via :data:`LIVELOCK` / :data:`RAISE` /
:data:`CRASH`):

* ``livelock`` — the firmware spins on zero-delay yields forever;
  simulation time stops advancing and only the kernel's wall-clock
  deadline (``RunSpec.deadline_s``) can end the run.
* ``raise`` — the firmware raises :class:`HostileFirmwareError`; the
  kernel surfaces it as a ``ProcessError`` and the executor degrades
  the run to a terminal ``error`` record.
* ``die`` — the firmware calls ``os._exit``, killing the *worker
  process* mid-run.  **Parallel backend only**: in a serial campaign
  this kills the campaign process itself.  The pool sees
  ``BrokenProcessPool`` and exercises the retry path.

Registered as ``"hostile-dut"`` so pool workers can rebuild it from
the registry key alone.
"""

from __future__ import annotations

import os
import typing as _t

from ..core.classification import build_standard_classifier
from ..faults import FaultDescriptor, FaultKind, Persistence
from ..hw import Memory
from ..kernel import Module, Simulator

#: Firmware cycle period (kernel time units).
TICK = 1_000

#: Default campaign duration giving a few dozen firmware cycles.
DURATION = 40 * TICK


class HostileFirmwareError(RuntimeError):
    """Raised by the firmware when the ``raise`` mode is injected."""


class BehaviorPoint:
    """``behavior``-kind injection point flipping firmware modes."""

    kind = "behavior"
    modes = ("livelock", "raise", "die")

    def __init__(self, owner: "HostileDut"):
        self._owner = owner

    def trigger(self, mode: str) -> None:
        # Only latch the mode here: this runs inside the stressor's
        # injection process, whose exceptions are swallowed as
        # injection errors.  The firmware process acts on the latch at
        # its next cycle, so the misbehavior escapes through the
        # kernel exactly like a real runaway control loop would.
        self._owner.mode = mode

    def clear(self) -> None:
        self._owner.mode = None


class HostileDut(Module):
    """Counter firmware over a scratch RAM, with a behavior trap."""

    def __init__(self, name: str, sim: Simulator):
        super().__init__(name, sim=sim)
        self.scratch = Memory("scratch", parent=self, size=16)
        self.scratch.load(0, bytes(range(16)))
        self.mode: _t.Optional[str] = None
        self.cycles = 0
        self.register_injection_point("firmware", BehaviorPoint(self))
        self.process(self._firmware(), name="firmware")

    def _firmware(self):
        while True:
            yield TICK
            if self.mode == "livelock":
                while True:
                    yield 0  # zero-delay spin: wall clock burns, sim time stalls
            if self.mode == "raise":
                raise HostileFirmwareError(
                    "injected firmware runaway (mode=raise)"
                )
            if self.mode == "die":
                os._exit(17)  # hard worker kill, bypasses all handlers  # vp-lint: disable=VP010 - crashing the worker is this platform's purpose
            self.cycles += 1


def build_hostile(sim: Simulator) -> Module:
    return HostileDut("hostile", sim=sim)


def observe(root: Module) -> dict:
    return {
        "cycles": root.cycles,
        "scratch_image": bytes(root.scratch.data).hex(),
    }


def hostile_classifier():
    return build_standard_classifier(
        value_keys=["scratch_image", "cycles"],
    )


#: The behavior-mode fault descriptors campaigns inject.
LIVELOCK = FaultDescriptor(
    name="firmware_livelock",
    kind=FaultKind.BEHAVIOR_MODE,
    persistence=Persistence.PERMANENT,
    params={"mode": "livelock"},
)
RAISE = FaultDescriptor(
    name="firmware_raise",
    kind=FaultKind.BEHAVIOR_MODE,
    persistence=Persistence.PERMANENT,
    params={"mode": "raise"},
)
CRASH = FaultDescriptor(
    name="firmware_die",
    kind=FaultKind.BEHAVIOR_MODE,
    persistence=Persistence.PERMANENT,
    params={"mode": "die"},
)

#: Injection-point path of the behavior trap (root module is "hostile").
TRAP_PATH = "hostile.firmware"
#: Injection-point path of the scratch memory (benign SEU target).
SCRATCH_PATH = "hostile.scratch.array"
