"""Adaptive cruise control (ACC) virtual prototype.

A two-ECU distributed system over CAN — the paper's archetype of "new
functions ... realized by the interaction of several electronic
components" (Sec. 1):

* **Sensor ECU** — radar distance + wheel speed channels, an RTOS with
  a 10 ms `sense` task that publishes an E2E-protected (CRC + alive
  counter) CAN frame.
* **Actuator ECU** — an RTOS with a 20 ms `control` task that
  validates the message (CRC, counter, freshness), computes a brake
  demand from time-to-collision, and drives the brake actuator.

The timing dimension is the point of this platform ("the right value
at the wrong time can still be an error", Sec. 3.4): error-correction
overheads injected into the tasks, CAN retransmissions, and stale
signals all surface as *timing* failures distinct from value failures.
"""

from __future__ import annotations

import typing as _t

from ..core import Classifier, Outcome
from ..hw import AdcSensor, BrakeActuator, CanBus, CanFrame, CanNode, CrcChecker
from ..hw.sensors import piecewise
from ..kernel import Module, Simulator, simtime
from ..sw import ComSignal, Rte, Rtos, Runnable, Task, map_runnable
from ..tlm import GenericPayload

ACC_CAN_ID = 0x120
SENSE_PERIOD = simtime.ms(10)
CONTROL_PERIOD = simtime.ms(20)
CONTROL_DEADLINE = simtime.ms(15)
SIGNAL_TIMEOUT = simtime.ms(50)

#: Distance (m) below which full braking is demanded.
CRITICAL_DISTANCE = 20.0
#: Distance above which no braking is needed.
FREE_DISTANCE = 80.0


def closing_scenario(duration: int) -> _t.Callable[[int], float]:
    """Lead vehicle closes in from 100 m to 10 m over *duration*."""
    steps = 20
    segments = [
        (duration * i // steps, 100.0 - 90.0 * i / (steps - 1))
        for i in range(steps)
    ]
    return piecewise(segments)


class SensorEcu(Module):
    """Measures and broadcasts distance + speed."""

    def __init__(
        self, name: str, parent: Module, bus: CanBus, duration: int
    ):
        super().__init__(name, parent=parent)
        self.radar = AdcSensor(
            "radar", parent=self,
            source=closing_scenario(duration),
            period=simtime.ms(5),
            vmin=0.0, vmax=120.0, bits=12,
        )
        self.speed = AdcSensor(
            "speed", parent=self,
            source=lambda now: 30.0,  # m/s ego speed
            period=simtime.ms(5),
            vmin=0.0, vmax=60.0, bits=12,
        )
        self.node = CanNode("can", parent=self, bus=bus)
        self.rtos = Rtos("os", parent=self)
        self._counter = 0
        self.frames_published = 0
        sense = Task(
            "sense", priority=5, wcet=simtime.ms(1),
            period=SENSE_PERIOD, deadline=SENSE_PERIOD,
            body=self._sense_job,
        )
        self.rtos.add_task(sense)
        self.rtos.start()

    def _sense_job(self, job) -> None:
        distance_m = self.radar.code_to_volts(self.radar.output.read())
        speed_ms = self.speed.code_to_volts(self.speed.output.read())
        payload = bytes(
            [
                int(min(max(distance_m, 0), 120) * 2) & 0xFF,  # 0.5 m units
                int(min(max(speed_ms, 0), 60) * 4) & 0xFF,     # 0.25 m/s units
            ]
        )
        protected = CrcChecker.protect(payload, self._counter)
        self._counter = (self._counter + 1) & 0xF
        self.node.send(CanFrame(ACC_CAN_ID, protected))
        self.frames_published += 1


class ActuatorEcu(Module):
    """Validates messages and commands the brake."""

    def __init__(self, name: str, parent: Module, bus: CanBus):
        super().__init__(name, parent=parent)
        self.node = CanNode(
            "can", parent=self, bus=bus,
            accept=lambda can_id: can_id == ACC_CAN_ID,
        )
        self.brake = BrakeActuator("brake", parent=self)
        self.rtos = Rtos("os", parent=self)
        self.rte = Rte(self.sim)
        self.rte.define("distance", initial=100.0, timeout=SIGNAL_TIMEOUT)
        self.rte.define("speed", initial=0.0, timeout=SIGNAL_TIMEOUT)
        self.checker = CrcChecker("e2e")
        self.stale_cycles = 0
        self.brake_crossings: _t.List[int] = []
        self.node.on_receive.append(self._on_frame)
        control = Runnable("control", self._control_job)
        map_runnable(
            self.rtos, self.rte, control,
            priority=5, wcet=simtime.ms(2),
            period=CONTROL_PERIOD, deadline=CONTROL_DEADLINE,
        )
        self.rtos.start()

    def _on_frame(self, frame: CanFrame) -> None:
        payload = self.checker.check(bytes(frame.data))
        if payload is None or len(payload) != 2:
            return  # rejected: corruption or stale counter
        self.rte.write("distance", payload[0] / 2.0)
        self.rte.write("speed", payload[1] / 4.0)

    def _demand_for(self, distance: float) -> float:
        if distance >= FREE_DISTANCE:
            return 0.0
        if distance <= CRITICAL_DISTANCE:
            return 100.0
        span = FREE_DISTANCE - CRITICAL_DISTANCE
        return (FREE_DISTANCE - distance) / span * 100.0

    def _control_job(self, runnable) -> None:
        distance, fresh = self.rte.read("distance")
        if not fresh:
            self.stale_cycles += 1
            # Degraded mode: hold last demand, do not release brakes.
            return
        demand = self._demand_for(distance)
        previous = self.brake.demand
        self.brake.tsock.deliver(
            GenericPayload.write_word(0x0, int(demand * 100)), 0
        )
        if previous < 30.0 <= demand:
            self.brake_crossings.append(self.sim.now)


class AccPlatform(Module):
    """Both ECUs on one CAN bus."""

    def __init__(self, sim: Simulator, duration: int, name: str = "acc"):
        super().__init__(name, sim=sim)
        self.duration = duration
        self.bus = CanBus("can0", parent=self, bit_time=2000)
        self.sensor_ecu = SensorEcu(
            "sensor_ecu", parent=self, bus=self.bus, duration=duration
        )
        self.actuator_ecu = ActuatorEcu(
            "actuator_ecu", parent=self, bus=self.bus
        )


DEFAULT_DURATION = simtime.ms(600)


def build_acc(sim: Simulator) -> AccPlatform:
    return AccPlatform(sim, duration=DEFAULT_DURATION)


def observe(root: Module) -> dict:
    platform = root
    actuator = platform.actuator_ecu
    control_task = actuator.rtos.task("control")
    return {
        "final_pressure": round(actuator.brake.pressure, 1),
        "braked_hard": actuator.brake.pressure >= 60.0,
        "brake_crossing": (
            actuator.brake_crossings[0] if actuator.brake_crossings else None
        ),
        "deadline_misses": (
            platform.sensor_ecu.rtos.total_deadline_misses
            + actuator.rtos.total_deadline_misses
        ),
        "stale_cycles": actuator.stale_cycles,
        "crc_rejects": (
            actuator.checker.crc_failures + actuator.checker.counter_failures
        ),
        "bus_retransmissions": platform.bus.retransmissions,
        "bus_crc_errors": platform.bus.crc_errors_detected,
        "worst_control_response": control_task.worst_response_time,
    }


def acc_classifier(crossing_slack: int = simtime.ms(60)) -> Classifier:
    """Hazard: the vehicle never brakes while closing on the lead car.

    Timing: braking happens but late, or deadlines are missed.  Value:
    wrong final pressure.  Detected: E2E rejections / stale handling.
    Masked: CAN retransmissions absorbing wire corruption.
    """
    classifier = Classifier()
    classifier.add_rule(
        Outcome.HAZARDOUS,
        lambda f, g: not f.get("braked_hard"),
        "hazard:no_braking",
    )
    classifier.add_rule(
        Outcome.TIMING_FAILURE,
        lambda f, g: (
            f.get("brake_crossing") is not None
            and g.get("brake_crossing") is not None
            and f["brake_crossing"] > g["brake_crossing"] + crossing_slack
        ),
        "timing:late_braking",
    )
    classifier.add_rule(
        Outcome.TIMING_FAILURE,
        lambda f, g: (f.get("deadline_misses") or 0)
        > (g.get("deadline_misses") or 0),
        "timing:deadline_miss",
    )
    classifier.add_rule(
        Outcome.SDC,
        lambda f, g: abs(
            (f.get("final_pressure") or 0) - (g.get("final_pressure") or 0)
        ) > 5.0 and f.get("braked_hard"),
        "value:final_pressure",
    )
    classifier.add_rule(
        Outcome.DETECTED_SAFE,
        lambda f, g: (f.get("crc_rejects") or 0) > (g.get("crc_rejects") or 0),
        "detected:e2e",
    )
    classifier.add_rule(
        Outcome.DETECTED_SAFE,
        lambda f, g: (f.get("stale_cycles") or 0)
        > (g.get("stale_cycles") or 0),
        "detected:stale",
    )
    classifier.add_rule(
        Outcome.MASKED,
        lambda f, g: (f.get("bus_retransmissions") or 0)
        > (g.get("bus_retransmissions") or 0),
        "masked:can_retransmission",
    )
    return classifier
