"""Ready-made automotive virtual prototypes used by the examples,
tests, and benchmarks: the CAPS airbag system, a distributed adaptive
cruise control, and an electric power steering unit."""

from . import acc, airbag, steering

__all__ = ["acc", "airbag", "steering"]
