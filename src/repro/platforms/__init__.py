"""Ready-made automotive virtual prototypes used by the examples,
tests, and benchmarks: the CAPS airbag system, a distributed adaptive
cruise control, and an electric power steering unit.

Each prototype is also registered in the platform :mod:`registry` so
campaign workers in other processes can rebuild it from its key alone
(``"airbag-normal"``, ``"airbag-crash"``, ``"acc"``, ``"steering"``).
"""

from . import acc, airbag, hostile, steering
from .registry import (
    PlatformBundle,
    available_platforms,
    get_classifier,
    get_platform,
    register_platform,
)
from ..kernel import simtime

#: Deadline used by the registered crash-scenario classifier (G2): the
#: squib must fire within this margin of the golden deployment time.
CRASH_DEPLOY_DEADLINE = simtime.ms(10)


def _crash_classifier():
    return airbag.crash_classifier(CRASH_DEPLOY_DEADLINE)


def _steering_factory(sim):
    return steering.build_steering()(sim)


register_platform(
    "airbag-normal",
    airbag.build_normal_operation,
    airbag.observe,
    airbag.normal_operation_classifier,
    description="CAPS airbag, normal operation (safety goal G1: "
    "no spurious deployment)",
    trace_signals=airbag.trace_signals,
    reset=airbag.warm_reset,
    capture_state=airbag.capture_state,
    restore_state=airbag.restore_state,
    reach_surface=airbag.reach_surface,
)
register_platform(
    "airbag-crash",
    airbag.build_crash_scenario,
    airbag.observe,
    _crash_classifier,
    description="CAPS airbag, crash pulse at 50 ms (goal G2: deploy "
    "in time)",
    trace_signals=airbag.trace_signals,
    reset=airbag.warm_reset,
    capture_state=airbag.capture_state,
    restore_state=airbag.restore_state,
    reach_surface=airbag.reach_surface,
)
register_platform(  # vp-lint: disable=VP009 - distributed CAN state is rebuilt fresh; warm reset unproven for it
    "acc",
    acc.build_acc,
    acc.observe,
    acc.acc_classifier,
    description="distributed adaptive cruise control over CAN",
)
register_platform(  # vp-lint: disable=VP009 - servo factory closes over tuned controller state; stays fresh-build
    "steering",
    _steering_factory,
    steering.observe,
    steering.steering_classifier,
    description="electric power steering servo, nominal load",
    capture_state=steering.capture_state,
    restore_state=steering.restore_state,
)
register_platform(  # vp-lint: disable=VP009 - deliberately crashes/livelocks; must never be reused warm
    "hostile-dut",
    hostile.build_hostile,
    hostile.observe,
    hostile.hostile_classifier,
    description="deliberately misbehaving DUT (livelock/raise/die "
    "behavior faults) used by the fault-tolerance test suite",
)

__all__ = [
    "acc",
    "airbag",
    "hostile",
    "steering",
    "PlatformBundle",
    "available_platforms",
    "get_classifier",
    "get_platform",
    "register_platform",
    "CRASH_DEPLOY_DEADLINE",
]
