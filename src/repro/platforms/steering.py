"""Electric power steering virtual prototype.

Carries the paper's mission-profile example end to end (Sec. 3.2): the
operating state "steering against a curbstone" puts a high load on the
servo, and the vibration stress at the column mounting point raises the
probability of wiring faults (open load, short to ground) on the
position sensor.

The platform: a steering angle command source, a position sensor on
the servo shaft, a controller closing the loop, and the servo motor
with stall/overcurrent modeling.  The operating state chosen by the
campaign scenario sets the servo's external load.
"""

from __future__ import annotations

import typing as _t

from ..core import Classifier, Outcome
from ..hw import AdcSensor, RateChecker, ServoMotor
from ..hw.sensors import piecewise
from ..kernel import Module, Simulator, simtime
from ..mission import OperatingState
from ..tlm import GenericPayload

CONTROL_PERIOD = simtime.ms(2)
#: Position units the controller may command per cycle (rate limit).
MAX_STEP = 40.0


def parking_maneuver(duration: int) -> _t.Callable[[int], float]:
    """Commanded steering angle (millidegree-scale units) over time."""
    return piecewise(
        [
            (0, 0.0),
            (duration // 5, 300.0),
            (2 * duration // 5, 300.0),
            (3 * duration // 5, -300.0),
            (4 * duration // 5, 0.0),
        ]
    )


class SteeringController(Module):
    """Closed-loop position controller with plausibility checking."""

    def __init__(
        self,
        name: str,
        parent: Module,
        command_source: _t.Callable[[int], float],
        position_sensor: AdcSensor,
        servo: ServoMotor,
    ):
        super().__init__(name, parent=parent)
        self.command_source = command_source
        self.position_sensor = position_sensor
        self.servo = servo
        # The servo slews at most 80 units/ms = 160 per 2 ms sample;
        # anything above that is physically implausible.
        self.rate_checker = RateChecker("position_rate", max_delta=180.0)
        self.detected_errors = 0
        self.degraded_cycles = 0
        self.tracking_error_sum = 0.0
        self.cycles = 0
        self.process(self._control, name="control")

    def _measured_position(self) -> float:
        code = self.position_sensor.output.read()
        volts = self.position_sensor.code_to_volts(code)
        # 2.5 V midpoint maps to 0; 1 V per 200 units.
        return (volts - 2.5) * 200.0

    def _control(self):
        while True:
            yield CONTROL_PERIOD
            self.cycles += 1
            target = self.command_source(self.sim.now)
            measured = self._measured_position()
            if not self.rate_checker.check(measured):
                # Implausible sensor jump: freeze output (safe state).
                self.detected_errors += 1
                self.degraded_cycles += 1
                continue
            if self.servo.overcurrent_fault:
                self.detected_errors += 1
                self.degraded_cycles += 1
                continue
            error = target - measured
            step = min(max(error, -MAX_STEP), MAX_STEP)
            demand = self.servo.command + step
            self.servo.tsock.deliver(
                GenericPayload.write_word(0x0, int(demand) & 0xFFFFFFFF), 0
            )
            self.tracking_error_sum += abs(target - self.servo.position)


class SteeringPlatform(Module):
    """Servo + shaft sensor + controller."""

    def __init__(
        self,
        sim: Simulator,
        duration: int,
        external_load: float = 0.0,
        name: str = "eps",
    ):
        super().__init__(name, sim=sim)
        self.duration = duration
        self.servo = ServoMotor(
            "servo", parent=self,
            slew_rate=80.0, update_period=simtime.ms(1),
            stall_load=10.0, overcurrent_limit=15,
        )
        self.servo.external_load = external_load
        # The shaft sensor reads the true servo position.
        self.position_sensor = AdcSensor(
            "position", parent=self,
            source=lambda now: 2.5 + self.servo.position / 200.0,
            period=CONTROL_PERIOD,
        )
        self.controller = SteeringController(
            "controller", parent=self,
            command_source=parking_maneuver(duration),
            position_sensor=self.position_sensor,
            servo=self.servo,
        )

    def capture_state(self) -> dict:
        """Deep-capture mutable module state (snapshot-fork support)."""
        controller = self.controller
        checker = controller.rate_checker
        return {
            "servo": self.servo.capture_state(),
            "position_sensor": self.position_sensor.capture_state(),
            "controller": (
                controller.detected_errors,
                controller.degraded_cycles,
                controller.tracking_error_sum,
                controller.cycles,
            ),
            "rate_checker": (
                checker.previous, checker.checks, checker.violations,
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Re-seed from a :meth:`capture_state` capture (repeatable)."""
        controller = self.controller
        checker = controller.rate_checker
        self.servo.restore_state(state["servo"])
        self.position_sensor.restore_state(state["position_sensor"])
        (controller.detected_errors, controller.degraded_cycles,
         controller.tracking_error_sum, controller.cycles) = (
            state["controller"]
        )
        (checker.previous, checker.checks, checker.violations) = (
            state["rate_checker"]
        )


DEFAULT_DURATION = simtime.ms(400)


def build_steering(
    state: _t.Optional[OperatingState] = None,
) -> _t.Callable[[Simulator], SteeringPlatform]:
    """Platform factory parameterised by the operating state.

    The state's ``servo_load`` functional load becomes the servo's
    external load — this is how mission-profile operating states enter
    the stress test (Fig. 2 -> Fig. 3 hand-off).
    """
    load = 0.0
    if state is not None:
        load = state.loads.get("servo_load", 0.0)

    def factory(sim: Simulator) -> SteeringPlatform:
        return SteeringPlatform(
            sim, duration=DEFAULT_DURATION, external_load=load
        )

    return factory


def capture_state(root: SteeringPlatform) -> dict:
    """Registry ``capture_state`` hook for the steering bundle."""
    return root.capture_state()


def restore_state(root: SteeringPlatform, state: dict) -> None:
    """Registry ``restore_state`` hook for the steering bundle."""
    root.restore_state(state)


def observe(root: Module) -> dict:
    platform = root
    mean_tracking_error = (
        platform.controller.tracking_error_sum
        / max(platform.controller.cycles, 1)
    )
    return {
        "final_position": round(platform.servo.position, 0),
        "mean_tracking_error": round(mean_tracking_error, -1),
        "large_error": mean_tracking_error > 250.0,
        "overcurrent": platform.servo.overcurrent_fault,
        "detected": platform.controller.detected_errors,
        "degraded_cycles": platform.controller.degraded_cycles,
        "cycles": platform.controller.cycles,
    }


def steering_classifier() -> Classifier:
    """Hazard: large uncommanded/uncorrected steering deviation while
    the controller believes everything is fine (no detection)."""
    classifier = Classifier()
    classifier.add_rule(
        Outcome.HAZARDOUS,
        lambda f, g: f.get("large_error") and not (
            (f.get("detected") or 0) > (g.get("detected") or 0)
        ),
        "hazard:silent_large_deviation",
    )
    classifier.add_rule(
        Outcome.SDC,
        lambda f, g: f.get("final_position") != g.get("final_position")
        and not f.get("large_error"),
        "value:final_position",
    )
    classifier.add_rule(
        Outcome.TIMING_FAILURE,
        lambda f, g: (f.get("degraded_cycles") or 0)
        > (g.get("degraded_cycles") or 0) + 20,
        "timing:extended_degradation",
    )
    classifier.add_rule(
        Outcome.DETECTED_SAFE,
        lambda f, g: (f.get("detected") or 0) > (g.get("detected") or 0),
        "detected",
    )
    return classifier
