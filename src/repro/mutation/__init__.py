"""Mutation analysis for testbench qualification (substrate S10)."""

from .binary import (
    BinaryMutation,
    BinaryMutationEngine,
    BinaryMutationResult,
    apply_mutation,
    enumerate_binary_mutations,
)
from .engine import (
    Mutant,
    MutantSchema,
    MutationResult,
    Testbench,
    generate_mutants,
    run_mutation_analysis,
)
from .operators import (
    DEFAULT_OPERATORS,
    MutationSite,
    apply_site,
    collect_sites,
)

__all__ = [
    "BinaryMutation",
    "BinaryMutationEngine",
    "BinaryMutationResult",
    "apply_mutation",
    "enumerate_binary_mutations",
    "Mutant",
    "MutantSchema",
    "MutationResult",
    "Testbench",
    "generate_mutants",
    "run_mutation_analysis",
    "DEFAULT_OPERATORS",
    "MutationSite",
    "apply_site",
    "collect_sites",
]
