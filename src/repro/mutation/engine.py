"""The mutation-analysis engine: testbench qualification by fault
seeding.

Workflow (Sec. 2.4): seed one mutation into the DUT model, re-run the
testbench, and check whether it *kills* (detects) the mutant.  The
**mutation score** — killed / total — "provides an advanced metric to
assess a testbench's quality compared with coverage based metrics";
survivors point at behaviour the testbench never checks.

The engine mutates plain Python functions (the behavioural models this
framework's DUTs are written as): it re-parses the function source,
applies one operator per mutant, and compiles each mutant in the
original function's globals.  The *mutant schema* option compiles all
mutants in one pass and switches between them at call time — the
standard trick for amortising compilation cost ([21]), measured by the
E7 benchmark.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import typing as _t

from ..kernel import DeadlineExceeded
from .operators import (
    DEFAULT_OPERATORS,
    MutationSite,
    apply_site,
    collect_sites,
)


class Mutant:
    """One seeded fault: a compiled variant of the original function."""

    def __init__(self, site: MutationSite, fn: _t.Callable):
        self.site = site
        self.fn = fn
        self.killed: _t.Optional[bool] = None
        self.kill_reason: str = ""

    def __repr__(self) -> str:  # pragma: no cover
        status = {True: "killed", False: "SURVIVED", None: "untested"}[
            self.killed
        ]
        return f"Mutant({self.site.operator}, {self.site.description}, {status})"


def _function_tree(fn: _t.Callable) -> ast.Module:
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    # Strip decorators: re-decorating a mutant usually double-wraps it.
    fn_def = tree.body[0]
    if isinstance(fn_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        fn_def.decorator_list = []
    return tree


def _compile_tree(tree: ast.Module, fn: _t.Callable) -> _t.Callable:
    code = compile(tree, filename=f"<mutant:{fn.__name__}>", mode="exec")
    namespace: _t.Dict[str, _t.Any] = dict(fn.__globals__)
    exec(code, namespace)  # noqa: S102 - deliberate: mutants are code
    return namespace[fn.__name__]


def generate_mutants(
    fn: _t.Callable,
    operators: _t.Sequence[str] = DEFAULT_OPERATORS,
) -> _t.List[Mutant]:
    """All first-order mutants of *fn* under the given operators."""
    tree = _function_tree(fn)
    sites = collect_sites(tree, operators)
    mutants: _t.List[Mutant] = []
    for site in sites:
        mutated = apply_site(_function_tree(fn), operators, site.index)
        try:
            mutant_fn = _compile_tree(mutated, fn)
        except SyntaxError:
            continue  # stillborn mutant (rare; e.g. deleted lone body)
        mutants.append(Mutant(site, mutant_fn))
    return mutants


class MutationResult:
    """Outcome of one qualification run."""

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.mutants: _t.List[Mutant] = []
        self.baseline_ok = False

    @property
    def total(self) -> int:
        return len(self.mutants)

    @property
    def killed(self) -> _t.List[Mutant]:
        return [m for m in self.mutants if m.killed]

    @property
    def survivors(self) -> _t.List[Mutant]:
        return [m for m in self.mutants if m.killed is False]

    @property
    def score(self) -> float:
        """Mutation score: killed / total (1.0 for an empty set)."""
        if not self.mutants:
            return 1.0
        return len(self.killed) / self.total

    def by_operator(self) -> _t.Dict[str, _t.Tuple[int, int]]:
        """operator -> (killed, total)."""
        stats: _t.Dict[str, _t.List[int]] = {}
        for mutant in self.mutants:
            entry = stats.setdefault(mutant.site.operator, [0, 0])
            entry[1] += 1
            if mutant.killed:
                entry[0] += 1
        return {op: (k, t) for op, (k, t) in stats.items()}

    def report(self) -> _t.Dict[str, _t.Any]:
        return {
            "function": self.function_name,
            "mutants": self.total,
            "killed": len(self.killed),
            "survived": len(self.survivors),
            "score": self.score,
            "by_operator": self.by_operator(),
            "survivor_sites": [
                m.site.description for m in self.survivors
            ],
        }


#: A testbench: returns True when it FAILS the DUT (i.e. detects the
#: fault).  Raising AssertionError counts as detection too.
Testbench = _t.Callable[[_t.Callable], bool]


def run_mutation_analysis(
    fn: _t.Callable,
    testbench: Testbench,
    operators: _t.Sequence[str] = DEFAULT_OPERATORS,
    mutants: _t.Optional[_t.List[Mutant]] = None,
) -> MutationResult:
    """Qualify *testbench* against the mutants of *fn*.

    The baseline (unmutated function) must pass — a testbench that
    flags the original cannot qualify anything.
    """
    result = MutationResult(fn.__name__)
    baseline_detects = _detects(testbench, fn)
    result.baseline_ok = not baseline_detects
    if baseline_detects:
        raise ValueError(
            f"testbench rejects the unmutated {fn.__name__!r}; "
            "fix the testbench or the model first"
        )
    result.mutants = (
        mutants if mutants is not None else generate_mutants(fn, operators)
    )
    for mutant in result.mutants:
        mutant.killed = _detects(testbench, mutant.fn)
    return result


def _detects(testbench: Testbench, fn: _t.Callable) -> bool:
    try:
        return bool(testbench(fn))
    except AssertionError:
        return True
    except DeadlineExceeded:
        # The wall-clock budget is the campaign's, not the mutant's:
        # swallowing it as "killed" would silently eat the deadline and
        # let a hung qualification run to completion.
        raise
    except Exception:
        # A crashing DUT is conspicuously broken: counts as killed.
        return True


class MutantSchema:
    """All mutants behind one switchable callable (mutant schemata).

    Instead of one compile per mutant, the schema compiles once and
    selects the active mutant by index at call time; index ``None``
    runs the original.  The speedup is what benchmark E7 measures.
    """

    def __init__(
        self,
        fn: _t.Callable,
        operators: _t.Sequence[str] = DEFAULT_OPERATORS,
    ):
        self.original = fn
        self.mutants = generate_mutants(fn, operators)
        self.active: _t.Optional[int] = None

    def select(self, index: _t.Optional[int]) -> None:
        if index is not None and not 0 <= index < len(self.mutants):
            raise IndexError(f"no mutant {index}")
        self.active = index

    def __call__(self, *args, **kwargs):
        if self.active is None:
            return self.original(*args, **kwargs)
        return self.mutants[self.active].fn(*args, **kwargs)

    def qualify(self, testbench: Testbench) -> MutationResult:
        """Run the testbench against every mutant through the schema."""
        result = MutationResult(self.original.__name__)
        if _detects(testbench, self.original):
            raise ValueError("testbench rejects the original")
        result.baseline_ok = True
        result.mutants = self.mutants
        for index, mutant in enumerate(self.mutants):
            self.select(index)
            mutant.killed = _detects(testbench, self)
        self.select(None)
        return result
