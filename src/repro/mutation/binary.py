"""Binary mutation testing of embedded software (refs [22], [30]).

Becker et al.'s XEMU line mutates the *binary* of embedded software
and executes it on an emulator — qualifying tests against faults at
the level the hardware actually runs.  This module is that flow for
vp16 images:

* :func:`enumerate_binary_mutations` lists instruction-level mutations
  of a program image (operator swaps, branch-condition inversions,
  immediate perturbations, register substitutions — mirroring the
  source-level operators at ISA level);
* :class:`BinaryMutationEngine` executes each mutant on the ISS inside
  a fresh platform and asks the testbench whether it noticed.

Because mutants run on the instruction-set simulator, the method also
exercises detection *mechanisms* (traps on illegal opcodes, watchdogs
against runaway mutants) exactly as a HIL rig would.
"""

from __future__ import annotations

import typing as _t

from ..hw.cpu.isa import (
    INSTRUCTION_BYTES,
    IllegalInstruction,
    Instruction,
    Op,
    decode,
    encode,
)
from ..kernel import DeadlineExceeded

#: ISA-level operator swaps (binary AOR/ROR analogue).
_OP_SWAPS: _t.Dict[Op, _t.Tuple[Op, ...]] = {
    Op.ADD: (Op.SUB,),
    Op.SUB: (Op.ADD,),
    Op.AND: (Op.OR,),
    Op.OR: (Op.AND,),
    Op.XOR: (Op.AND,),
    Op.ADDI: (Op.XORI,),
    Op.BEQ: (Op.BNE,),
    Op.BNE: (Op.BEQ,),
    Op.BLT: (Op.BGE,),
    Op.BGE: (Op.BLT,),
    Op.SLL: (Op.SRL,),
    Op.SRL: (Op.SLL,),
    Op.LD: (Op.LDB,),
    Op.ST: (Op.STB,),
}

_IMM_OPS = {
    Op.LDI, Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI,
    Op.LD, Op.LDB, Op.ST, Op.STB,
}


class BinaryMutation(_t.NamedTuple):
    """One mutated instruction word at a byte offset."""

    offset: int
    original_word: int
    mutated_word: int
    description: str


def _mutations_of(instr: Instruction, word: int) -> _t.Iterator[_t.Tuple[int, str]]:
    # Operator swaps.
    for replacement in _OP_SWAPS.get(instr.op, ()):
        yield (
            encode(instr._replace(op=replacement)),
            f"{instr.op.name}->{replacement.name}",
        )
    # Immediate perturbation.
    if instr.op in _IMM_OPS:
        for delta in (1, -1):
            candidate = instr.imm + delta
            if -2048 <= candidate <= 2047:
                yield (
                    encode(instr._replace(imm=candidate)),
                    f"imm{delta:+d}",
                )
    # Source-register substitution (rs1 -> r0).
    if instr.rs1 != 0 and instr.op not in (Op.NOP, Op.HALT, Op.LDI, Op.LUI):
        yield (encode(instr._replace(rs1=0)), "rs1->r0")
    # Statement deletion: replace with NOP.
    if instr.op not in (Op.NOP, Op.HALT):
        yield (
            encode(Instruction(Op.NOP, 0, 0, 0, 0)),
            f"{instr.op.name}->NOP",
        )


def enumerate_binary_mutations(
    image: _t.Union[bytes, bytearray],
    code_end: _t.Optional[int] = None,
) -> _t.List[BinaryMutation]:
    """All first-order instruction mutations of *image*.

    ``code_end`` bounds the mutated region (data words after the code
    should not be touched — mutating constants is the memory fault
    model's job, not the software mutation model's).
    """
    if len(image) % INSTRUCTION_BYTES:
        raise ValueError("image length must be word aligned")
    end = len(image) if code_end is None else code_end
    mutations: _t.List[BinaryMutation] = []
    for offset in range(0, end, INSTRUCTION_BYTES):
        word = int.from_bytes(
            image[offset : offset + INSTRUCTION_BYTES], "little"
        )
        try:
            instr = decode(word)
        except IllegalInstruction:
            continue
        for mutated_word, description in _mutations_of(instr, word):
            if mutated_word != word:
                mutations.append(
                    BinaryMutation(
                        offset, word, mutated_word,
                        f"@{offset:#06x}: {description}",
                    )
                )
    return mutations


def apply_mutation(
    image: _t.Union[bytes, bytearray], mutation: BinaryMutation
) -> bytes:
    """A copy of *image* with the mutation applied."""
    mutated = bytearray(image)
    mutated[mutation.offset : mutation.offset + INSTRUCTION_BYTES] = (
        mutation.mutated_word.to_bytes(INSTRUCTION_BYTES, "little")
    )
    return bytes(mutated)


class BinaryMutationResult:
    """Score keeping, mirroring the source-level engine."""

    def __init__(self):
        self.verdicts: _t.List[_t.Tuple[BinaryMutation, bool]] = []

    def record(self, mutation: BinaryMutation, killed: bool) -> None:
        self.verdicts.append((mutation, killed))

    @property
    def total(self) -> int:
        return len(self.verdicts)

    @property
    def killed(self) -> int:
        return sum(1 for _, killed in self.verdicts if killed)

    @property
    def survivors(self) -> _t.List[BinaryMutation]:
        return [m for m, killed in self.verdicts if not killed]

    @property
    def score(self) -> float:
        return self.killed / self.total if self.total else 1.0


class BinaryMutationEngine:
    """Qualifies an ISS-level testbench against binary mutants.

    Parameters
    ----------
    image:
        The unmutated program image.
    testbench:
        ``fn(image) -> bool`` — builds a platform, loads *image*, runs,
        and returns True when it *detects* misbehaviour.  Typically it
        compares ISS outputs/memory against expectations within an
        instruction budget (runaway mutants must not hang it).
    """

    def __init__(
        self,
        image: _t.Union[bytes, bytearray],
        testbench: _t.Callable[[bytes], bool],
        code_end: _t.Optional[int] = None,
    ):
        self.image = bytes(image)
        self.testbench = testbench
        self.mutations = enumerate_binary_mutations(self.image, code_end)

    def qualify(self) -> BinaryMutationResult:
        if self._detects(self.image):
            raise ValueError("testbench rejects the unmutated binary")
        result = BinaryMutationResult()
        for mutation in self.mutations:
            mutated = apply_mutation(self.image, mutation)
            result.record(mutation, self._detects(mutated))
        return result

    def _detects(self, image: bytes) -> bool:
        try:
            return bool(self.testbench(image))
        except DeadlineExceeded:
            # Deadline aborts belong to the campaign's budget machinery;
            # treating one as "detected" would hide the timeout.
            raise
        except Exception:  # noqa: BLE001 - crash counts as detection
            return True
