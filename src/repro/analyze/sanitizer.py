"""The delta-race sanitizer: scheduler write-write conflict detection.

Signals have SystemC ``sc_signal`` semantics: every write in one delta
cycle stages a value and the *last* staged value commits at the update
phase.  When two **distinct processes** write the same signal in the
same delta, "last" is decided by process scheduling order — the
platform's behavior silently depends on an ordering the kernel keeps
deterministic but the model never specified.  Such platforms pass
every equivalence test today and break the day an unrelated change
(an extra sensitivity, a refactored spawn order) reorders the
evaluation phase.

The sanitizer is opt-in scheduler instrumentation
(``Simulator(sanitize=True)`` or the ``REPRO_SANITIZE=1`` environment
variable) that observes every staged write, keyed by the process the
scheduler is currently stepping, and records a :class:`DeltaRace` for
each distinct-writer conflict: both process names, the signal, the
simulation time, and the delta index.  Races are de-duplicated by
(signal, writer pair) so a racy loop produces one report plus an
occurrence count, not an unbounded flood.

Disabled (the default), the only cost is one ``is not None`` branch
per staged write and per process step — below measurement noise on
the campaign perf smoke.

This module must stay import-light: the kernel scheduler imports it
lazily, so it cannot import the kernel back at module level.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..kernel.process import Process
    from ..kernel.signal import SignalBase

#: Sanitizer actions on a detected race.
RECORD = "record"
RAISE = "raise"


@dataclasses.dataclass(frozen=True)
class DeltaRace:
    """One same-delta write-write conflict between distinct processes."""

    signal: str
    writers: _t.Tuple[str, str]
    time: int
    delta: int
    values: _t.Tuple[_t.Any, _t.Any]

    def render(self) -> str:
        first, second = self.writers
        staged_first, staged_second = self.values
        return (
            f"delta-race on signal {self.signal!r} at t={self.time} "
            f"delta={self.delta}: {first!r} staged {staged_first!r}, "
            f"then {second!r} staged {staged_second!r} — commit order "
            f"depends on process scheduling"
        )


class DeltaRaceError(RuntimeError):
    """Raised (``on_race="raise"``) at the second conflicting write."""

    def __init__(self, race: DeltaRace):
        super().__init__(race.render())
        self.race = race


@dataclasses.dataclass(frozen=True)
class SanitizeConfig:
    """Sanitizer behavior knobs.

    ``on_race`` — ``"record"`` collects reports for later inspection;
    ``"raise"`` throws :class:`DeltaRaceError` from the writing
    process (the kernel surfaces it as a ``ProcessError``), pinning
    the exact stack that lost the race.  ``max_reports`` bounds the
    report list; further distinct races only bump ``race_count``.
    """

    on_race: str = RECORD
    max_reports: int = 1000

    def __post_init__(self):
        if self.on_race not in (RECORD, RAISE):
            raise ValueError(f"unknown on_race mode {self.on_race!r}")
        if self.max_reports < 1:
            raise ValueError("max_reports must be positive")


class DeltaRaceSanitizer:
    """Per-simulator write-write conflict detector.

    The scheduler drives three hooks: :meth:`on_write` for every
    staged write (with the currently stepping process), and
    :meth:`end_delta` at each delta-cycle boundary, which closes the
    same-delta window.  :meth:`on_reset` clears the in-flight window
    on :meth:`Simulator.reset` but **keeps** collected reports — the
    sanitizer gathers evidence; a kernel reset must not destroy it.
    """

    def __init__(self, config: _t.Optional[SanitizeConfig] = None):
        self.config = config or SanitizeConfig()
        self.reports: _t.List[DeltaRace] = []
        #: Total conflicts observed, including de-duplicated repeats.
        self.race_count = 0
        # signal -> (writing process, value it staged)
        self._writes: _t.Dict["SignalBase", _t.Tuple["Process", _t.Any]] = {}
        self._seen: _t.Set[_t.Tuple[str, str, str]] = set()

    # -- scheduler hooks -----------------------------------------------

    def on_write(
        self,
        signal: "SignalBase",
        process: _t.Optional["Process"],
        now: int,
        delta: int,
    ) -> None:
        """Record one staged write; flag distinct-writer conflicts.

        *process* is ``None`` for writes outside any process body
        (elaboration code, testbench driving between ``run()`` calls);
        those are construction-order deterministic and never conflict.
        """
        if process is None:
            return
        staged = self._writes.get(signal)
        if staged is None:
            self._writes[signal] = (process, signal.staged)
            return
        first, first_value = staged
        if first is process:
            # Same process re-staging is ordinary last-write-wins
            # within one deterministic body — not a race.
            self._writes[signal] = (process, signal.staged)
            return
        self.race_count += 1
        race = DeltaRace(
            signal=signal.name,
            writers=(first.name, process.name),
            time=now,
            delta=delta,
            values=(first_value, signal.staged),
        )
        key = (race.signal, race.writers[0], race.writers[1])
        if key not in self._seen and len(self.reports) < self.config.max_reports:
            self._seen.add(key)
            self.reports.append(race)
        # The later writer now owns the staged value.
        self._writes[signal] = (process, signal.staged)
        if self.config.on_race == RAISE:
            raise DeltaRaceError(race)

    def end_delta(self) -> None:
        """Close the same-delta conflict window."""
        if self._writes:
            self._writes.clear()

    def on_reset(self) -> None:
        """Kernel warm reset: drop in-flight state, keep the evidence."""
        self._writes.clear()

    # -- inspection ----------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.reports

    def report(self) -> _t.Dict[str, _t.Any]:
        """JSON-ready summary (CI smoke artifact, test assertions)."""
        return {
            "races": [dataclasses.asdict(race) for race in self.reports],
            "race_count": self.race_count,
            "distinct": len(self.reports),
        }


def resolve_sanitize(
    sanitize: _t.Union[None, bool, SanitizeConfig, DeltaRaceSanitizer],
) -> _t.Optional[DeltaRaceSanitizer]:
    """Normalize the ``Simulator(sanitize=...)`` argument.

    ``True`` builds a default recorder, a :class:`SanitizeConfig`
    wraps it, an existing :class:`DeltaRaceSanitizer` is shared as-is
    (lets one detector watch several kernels), ``None``/``False``
    disables.
    """
    if sanitize is None or sanitize is False:
        return None
    if sanitize is True:
        return DeltaRaceSanitizer()
    if isinstance(sanitize, SanitizeConfig):
        return DeltaRaceSanitizer(sanitize)
    if isinstance(sanitize, DeltaRaceSanitizer):
        return sanitize
    raise TypeError(f"cannot interpret sanitize={sanitize!r}")
