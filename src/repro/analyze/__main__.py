"""Entry point for ``python -m repro.analyze``."""

import os
import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream pager/head closed the pipe early; that is not a lint
    # failure.  Redirect stdout to devnull so interpreter shutdown does
    # not print a second traceback while flushing.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)  # vp-lint: disable=VP010 - CLI entry point; the exit code is the contract
