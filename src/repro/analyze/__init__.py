"""Correctness tooling for virtual-prototype platforms.

Two complementary halves (see DESIGN.md, "Static analysis &
sanitizers"):

* **VP-lint** — an AST-based static analyzer whose rules (stable
  codes ``VP001``…) encode the platform-soundness hazards this
  codebase has already paid for: warm-reuse reclamation leaks,
  determinism breakers (global RNG, wall-clock reads), private kernel
  state access, swallowed ``DeadlineExceeded``, unpicklable run
  specs.  Run it as ``python -m repro.analyze [paths]``.
* **Reach** — static fault-propagation reachability
  (:mod:`repro.analyze.reach`): extracts the structural dataflow
  graph of an elaborated platform, computes forward cones from every
  fault site to every detector and output, audits detector coverage
  (:class:`CoverageAuditReport`), and prunes provably-unobservable
  injections from campaigns (``Campaign.run(prune=...)``).  Run it as
  ``python -m repro.analyze reach --platform <name>``.
* **Sanitizers** — opt-in dynamic checks: the delta-race sanitizer
  (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``) flags
  same-delta write-write conflicts between distinct processes, and
  :func:`check_order_sensitivity` re-runs a spec under seeded
  permutations of the runnable queue, byte-diffing trace digests to
  expose scheduler-order-dependent platforms.

Together they turn the soundness contracts the kernel team enforced
by review (PRs 2-4) into machine-checked gates every platform and
every future PR passes through CI.
"""

from .findings import ERROR, WARNING, Finding
from .linter import LintContext, iter_python_files, lint_file, lint_paths, lint_source
from .ordercheck import (
    OrderProbe,
    OrderSensitivityReport,
    check_order_sensitivity,
)
from .reach import (
    CoverageAuditReport,
    GateReachability,
    ModelGraph,
    ReachabilityPruner,
    ReachReport,
    SiteReach,
    analyze_platform,
    analyze_root,
    extract_graph,
)
from .reporters import render_json, render_sarif, render_text, summarize
from .rules import RULES, Rule, rule_table
from .sanitizer import (
    DeltaRace,
    DeltaRaceError,
    DeltaRaceSanitizer,
    SanitizeConfig,
    resolve_sanitize,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "LintContext",
    "RULES",
    "Rule",
    "rule_table",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize",
    "CoverageAuditReport",
    "GateReachability",
    "ModelGraph",
    "ReachReport",
    "ReachabilityPruner",
    "SiteReach",
    "analyze_platform",
    "analyze_root",
    "extract_graph",
    "DeltaRace",
    "DeltaRaceError",
    "DeltaRaceSanitizer",
    "SanitizeConfig",
    "resolve_sanitize",
    "OrderProbe",
    "OrderSensitivityReport",
    "check_order_sensitivity",
]
