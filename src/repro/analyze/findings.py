"""Finding records and the severity contract of VP-lint.

Severities are a two-level contract (see DESIGN.md, "Static analysis &
sanitizers"):

* ``error`` — a *soundness* hazard: the flagged construct can break
  determinism (fresh-vs-warm, serial-vs-parallel byte-identity), leak
  kernel state across warm runs, or swallow the campaign's control
  exceptions.  Errors are never acceptable unfixed; an intentional
  instance must carry a pragma explaining itself.
* ``warning`` — a *robustness* contract gap: the construct is correct
  today but forfeits a guarantee the rest of the system relies on
  (e.g. a platform registered without a warm-reset hook silently pays
  fresh elaboration for every run).

Both levels fail the CLI by default; ``--min-severity error`` relaxes
that for exploratory sweeps.
"""

from __future__ import annotations

import dataclasses
import typing as _t

ERROR = "error"
WARNING = "warning"

#: Sort weight — higher is more severe.
_SEVERITY_RANK = {ERROR: 2, WARNING: 1}


def severity_rank(severity: str) -> int:
    return _SEVERITY_RANK.get(severity, 0)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    severity: str = ERROR
    rule: str = ""

    def sort_key(self) -> _t.Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
