"""Finding reporters: human-readable text and machine-readable JSON.

The JSON layout is schema-versioned because CI uploads it as an
artifact and downstream tooling (dashboards, PR annotations) parses
it; bump ``REPORT_SCHEMA_VERSION`` on incompatible changes.
"""

from __future__ import annotations

import json
import typing as _t

from .findings import Finding
from .rules import rule_table

REPORT_SCHEMA_VERSION = 1


def summarize(findings: _t.Sequence[Finding]) -> _t.Dict[str, _t.Any]:
    by_code: _t.Dict[str, int] = {}
    by_severity: _t.Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
        by_severity[finding.severity] = (
            by_severity.get(finding.severity, 0) + 1
        )
    return {
        "total": len(findings),
        "by_code": dict(sorted(by_code.items())),
        "by_severity": dict(sorted(by_severity.items())),
    }


def render_text(
    findings: _t.Sequence[Finding], files_checked: int
) -> str:
    lines = [finding.render() for finding in findings]
    counts = summarize(findings)
    if findings:
        per_code = ", ".join(
            f"{code}: {n}" for code, n in counts["by_code"].items()
        )
        lines.append(
            f"vp-lint: {counts['total']} finding(s) in "
            f"{files_checked} file(s) ({per_code})"
        )
    else:
        lines.append(f"vp-lint: {files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(
    findings: _t.Sequence[Finding], files_checked: int
) -> str:
    payload = {
        "schema": REPORT_SCHEMA_VERSION,
        "tool": "vp-lint",
        "files_checked": files_checked,
        "summary": summarize(findings),
        "findings": [finding.to_jsonable() for finding in findings],
        "rules": rule_table(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF severity levels for VP-lint's two-tier model.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(
    findings: _t.Sequence[Finding], files_checked: int
) -> str:
    """SARIF 2.1.0 — the interchange format GitHub code scanning
    ingests, so VP-lint findings annotate PR diffs the same way
    CodeQL's do.  One run, one driver (``vp-lint``), the rule table as
    the driver's rule catalogue; ``VP000`` parse errors appear as
    results without a catalogue entry, which SARIF permits.
    """
    rules = [
        {
            "id": row["code"],
            "name": row["name"],
            "shortDescription": {"text": row["summary"]},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(row["severity"], "warning"),
            },
        }
        for row in rule_table()
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "vp-lint",
                        "version": str(REPORT_SCHEMA_VERSION),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
