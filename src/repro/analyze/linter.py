"""VP-lint driver: parse, run rules, apply pragmas.

The linter is a single AST walk per file; every registered rule sees
every node and yields :class:`~repro.analyze.findings.Finding`s, which
are then filtered through the file's pragma index.  Files inside the
kernel package (``repro/kernel/``) skip the rules marked
``kernel_internal_ok`` — the kernel implements the abstractions those
rules protect.
"""

from __future__ import annotations

import ast
import pathlib
import typing as _t

from .findings import ERROR, Finding, severity_rank
from .pragmas import PragmaIndex
from .rules import RULES, Rule, collect_mutable_globals

#: Consecutive path components marking kernel-internal sources.
_KERNEL_PARTS = ("repro", "kernel")


class LintContext:
    """Per-file state shared by every rule during one walk."""

    def __init__(
        self,
        path: str,
        tree: ast.Module,
        source: str,
        kernel_internal: bool,
    ):
        self.path = path
        self.tree = tree
        self.source = source
        self.kernel_internal = kernel_internal
        self.mutable_globals = collect_mutable_globals(tree)


def _is_kernel_internal(path: str) -> bool:
    parts = pathlib.PurePath(path).parts
    return any(
        parts[i: i + 2] == _KERNEL_PARTS for i in range(len(parts) - 1)
    )


def _select_rules(
    select: _t.Optional[_t.Iterable[str]] = None,
    ignore: _t.Optional[_t.Iterable[str]] = None,
) -> _t.List[Rule]:
    codes = set(RULES)
    if select is not None:
        wanted = {code.upper() for code in select}
        _reject_unknown(wanted, "--select")
        codes &= wanted
    if ignore is not None:
        dropped = {code.upper() for code in ignore}
        # An unknown --ignore code used to silently no-op, which hid
        # typos: "--ignore VP0009" ignored nothing and nobody noticed.
        _reject_unknown(dropped, "--ignore")
        codes -= dropped
    return [RULES[code] for code in sorted(codes)]


def _reject_unknown(codes: _t.Set[str], flag: str) -> None:
    unknown = codes - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule code(s) in {flag}: "
            f"{', '.join(sorted(unknown))}; "
            f"known codes: {', '.join(sorted(RULES))}"
        )


def lint_source(
    source: str,
    path: str = "<string>",
    select: _t.Optional[_t.Iterable[str]] = None,
    ignore: _t.Optional[_t.Iterable[str]] = None,
) -> _t.List[Finding]:
    """Lint one source text.  Returns findings sorted by location."""
    rules = _select_rules(select, ignore)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                code="VP000",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                severity=ERROR,
                rule="parse-error",
            )
        ]
    kernel_internal = _is_kernel_internal(path)
    ctx = LintContext(path, tree, source, kernel_internal)
    pragmas = PragmaIndex(source)
    active = [
        r for r in rules
        if not (kernel_internal and r.kernel_internal_ok)
    ]
    findings: _t.List[Finding] = []
    for node in ast.walk(tree):
        for r in active:
            for finding in r.check_node(node, ctx):
                if not pragmas.suppressed(finding.code, finding.line):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: _t.Union[str, pathlib.Path],
    select: _t.Optional[_t.Iterable[str]] = None,
    ignore: _t.Optional[_t.Iterable[str]] = None,
) -> _t.List[Finding]:
    file_path = pathlib.Path(path)
    source = file_path.read_text(encoding="utf-8", errors="replace")
    return lint_source(source, str(file_path), select=select, ignore=ignore)


def iter_python_files(
    paths: _t.Iterable[_t.Union[str, pathlib.Path]],
) -> _t.List[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: _t.Dict[pathlib.Path, None] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen.setdefault(sub, None)
        elif path.suffix == ".py" or path.is_file():
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return list(seen)


def lint_paths(
    paths: _t.Iterable[_t.Union[str, pathlib.Path]],
    select: _t.Optional[_t.Iterable[str]] = None,
    ignore: _t.Optional[_t.Iterable[str]] = None,
    min_severity: str = "warning",
) -> _t.Tuple[_t.List[Finding], int]:
    """Lint every ``*.py`` under *paths*.

    Returns ``(findings, files_checked)``; findings below
    *min_severity* are dropped.
    """
    threshold = severity_rank(min_severity)
    findings: _t.List[Finding] = []
    files = iter_python_files(paths)
    for file_path in files:
        findings.extend(
            f for f in lint_file(file_path, select=select, ignore=ignore)
            if severity_rank(f.severity) >= threshold
        )
    findings.sort(key=Finding.sort_key)
    return findings, len(files)
