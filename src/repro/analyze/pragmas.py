"""``# vp-lint:`` suppression pragmas.

Three scopes:

* line — ``some_code()  # vp-lint: disable=VP004`` suppresses the
  listed codes (or ``all``) for findings anchored to that physical
  line.  For multi-line statements the anchor is the statement's
  *first* line (the AST node's ``lineno``).
* next line — ``# vp-lint: disable-next-line=VP004`` on a line of its
  own suppresses the codes for the *following* physical line.  Same
  effect as the line scope, for statements too long to share a line
  with their pragma comment.
* file — ``# vp-lint: disable-file=VP005`` anywhere in the file
  (conventionally in the module docstring block or right below the
  imports) suppresses the codes for the whole file.

A pragma is an *allowlist entry*, not an escape hatch: the convention
(enforced by review, demonstrated throughout this repo) is that every
pragma line carries a short rationale comment explaining why the
flagged construct is intentional.
"""

from __future__ import annotations

import re
import typing as _t

_PRAGMA_RE = re.compile(
    r"#\s*vp-lint:\s*(?P<kind>disable(?:-file|-next-line)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)

#: Sentinel meaning "every rule code".
ALL = "all"


class PragmaIndex:
    """Per-file index of suppression pragmas, built from the source."""

    def __init__(self, source: str):
        self.file_codes: _t.Set[str] = set()
        self.line_codes: _t.Dict[int, _t.Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "vp-lint" not in text:
                continue
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            codes = {
                code.strip().upper() if code.strip() != ALL else ALL
                for code in match.group("codes").split(",")
                if code.strip()
            }
            kind = match.group("kind")
            if kind == "disable-file":
                self.file_codes |= codes
            elif kind == "disable-next-line":
                # Registers under lineno+1, so it composes with a
                # same-line pragma there (codes union) and anchors
                # exactly like the line scope would.
                self.line_codes.setdefault(lineno + 1, set()).update(codes)
            else:
                self.line_codes.setdefault(lineno, set()).update(codes)

    def suppressed(self, code: str, line: int) -> bool:
        if ALL in self.file_codes or code in self.file_codes:
            return True
        at_line = self.line_codes.get(line)
        if at_line is None:
            return False
        return ALL in at_line or code in at_line
