"""Scheduler-order sensitivity checking.

The kernel's evaluation phase is deterministic (FIFO within a phase),
but — like SystemC — the *specification* says a well-formed platform
must not depend on the order runnable processes execute within one
delta.  A platform that does is one refactor away from changing
behavior with no test failing, because every run reproduces the same
(accidental) order.

This checker makes the dependence visible: it executes the same
:class:`~repro.core.runspec.RunSpec` once under the default FIFO
order and then under *seeded permutations* of the runnable queue
(``Simulator(order_seed=...)`` shuffles the queue at each delta-cycle
boundary, deterministically per seed), and byte-compares the
resulting :meth:`TraceDigest.canonical()
<repro.observe.digest.TraceDigest.canonical>` encodings.  Any
divergence names the platform scheduler-order-dependent — the dynamic
counterpart of the static delta-race rule, and the test that catches
races the write-write detector cannot see (read-write ordering through
immediate notifications, for example).
"""

from __future__ import annotations

import dataclasses
import functools
import typing as _t

from ..core.runspec import RunSpec, execute_runspec
from ..core.scenario import ErrorScenario
from ..kernel import Simulator
from ..observe.config import TraceConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..platforms.registry import PlatformBundle


@dataclasses.dataclass(frozen=True)
class OrderProbe:
    """One permuted execution: which seed, what digest bytes."""

    order_seed: _t.Optional[int]
    canonical: str
    outcome: str

    @property
    def digest_size(self) -> int:
        return len(self.canonical)


@dataclasses.dataclass(frozen=True)
class OrderSensitivityReport:
    """Baseline digest vs. seeded-permutation digests for one spec."""

    platform: str
    scenario: str
    permutations: int
    baseline: OrderProbe
    probes: _t.Tuple[OrderProbe, ...]

    @property
    def divergent(self) -> _t.Tuple[int, ...]:
        """Order seeds whose digest bytes differ from the baseline."""
        return tuple(
            probe.order_seed for probe in self.probes
            if probe.canonical != self.baseline.canonical
        )

    @property
    def order_sensitive(self) -> bool:
        return bool(self.divergent)

    def render(self) -> str:
        if not self.order_sensitive:
            return (
                f"order-check {self.platform}/{self.scenario}: "
                f"{self.permutations} permutation(s) byte-identical"
            )
        return (
            f"order-check {self.platform}/{self.scenario}: digest "
            f"diverged under order seed(s) "
            f"{', '.join(map(str, self.divergent))} — platform behavior "
            f"depends on process scheduling order"
        )


def _resolve_bundle(
    platform: _t.Union[str, "PlatformBundle"],
) -> _t.Tuple["PlatformBundle", _t.Any, _t.Optional[str]]:
    """``(bundle, classifier, registry_key)`` for *platform*."""
    if isinstance(platform, str):
        from ..platforms import registry

        return (
            registry.get_platform(platform),
            registry.get_classifier(platform),
            platform,
        )
    return platform, platform.classifier_factory(), None


def check_order_sensitivity(
    platform: _t.Union[str, "PlatformBundle"],
    scenario: _t.Optional[ErrorScenario] = None,
    duration: int = 1,
    run_seed: int = 0,
    permutations: int = 3,
    order_seed_base: int = 1000,
    trace: _t.Optional[TraceConfig] = None,
) -> OrderSensitivityReport:
    """Probe *platform* for scheduler-order dependence.

    *platform* is a registry key or a
    :class:`~repro.platforms.registry.PlatformBundle`; *scenario*
    defaults to a fault-free run (order sensitivity in nominal
    behavior is already a finding — injections only widen the net).
    Every execution builds a fresh kernel (warm reuse is disabled), so
    permuted runs cannot contaminate worker caches.
    """
    if permutations < 1:
        raise ValueError("permutations must be positive")
    bundle, classifier, key = _resolve_bundle(platform)
    if scenario is None:
        scenario = ErrorScenario("order-check", [])
    # Golden reference: one fresh fault-free run under default order.
    golden_sim = Simulator()
    golden_root = bundle.factory(golden_sim)
    golden_sim.run(until=duration)
    golden = bundle.observe(golden_root)
    spec = RunSpec(
        index=0,
        scenario=scenario,
        run_seed=run_seed,
        duration=duration,
        platform=key,
        golden=golden,
        trace=trace or TraceConfig(),
        reuse_platform=False,
    )

    def probe(order_seed: _t.Optional[int]) -> OrderProbe:
        kernel_factory = (
            None if order_seed is None
            else functools.partial(Simulator, order_seed=order_seed)
        )
        outcome = execute_runspec(
            spec,
            bundle.factory,
            bundle.observe,
            classifier,
            trace_signals=bundle.trace_signals,
            kernel_factory=kernel_factory,
        )
        assert outcome.digest is not None  # spec.trace is always set
        return OrderProbe(
            order_seed=order_seed,
            canonical=outcome.digest.canonical(),
            outcome=outcome.outcome.name,
        )

    baseline = probe(None)
    probes = tuple(
        probe(order_seed_base + k) for k in range(permutations)
    )
    return OrderSensitivityReport(
        platform=key or getattr(bundle, "name", "<bundle>"),
        scenario=scenario.name,
        permutations=permutations,
        baseline=baseline,
        probes=probes,
    )
