"""Static fault-propagation reachability analysis.

The paper's Sec. 3.4 argument — brute-force fault injection wastes
most of its budget on injections that cannot matter — asks for an
analysis that knows, *before* running a single scenario, which fault
sites can structurally reach which detection mechanisms and outputs.
This module computes exactly that from an **elaborated** platform:

* a :class:`ModelGraph` — the structural dataflow graph whose nodes
  are modules, signals, fault sites, detectors, and outputs;
* forward **reachability cones** from every injection site to every
  detector (the watchdog/ECC/TMR/lockstep mechanism vocabulary of
  :mod:`repro.observe.hooks`) and every declared output;
* a :class:`CoverageAuditReport` (``canonical()`` bytes) listing dead
  sites, undetectable-but-hazardous sites, and per-mechanism
  structural coverage;
* a :class:`ReachabilityPruner` that campaign execution uses to skip
  statically-dead injections (see ``Campaign.run(prune=...)``) and to
  pre-score guided strategies by static distance-to-detector;
* :class:`GateReachability` — *exact* net-level fanout cones for
  gate-level circuits, straight from the levelized
  :class:`~repro.gate.vector.GateProgram` structure.

Soundness model
---------------

The behavioral graph is a deliberate **over-approximation**: an edge
means "data *may* flow here", absence of a path means "data *cannot*
flow here".  Edges come from three observable facts about an
elaborated module tree:

* **ownership** — a module is connected to every signal it created and
  every process it spawned;
* **references** — a module is connected to every module/signal an
  attribute, closure cell, bound-method receiver, or one of its plain
  container/objects (lists, dicts, helper objects like RTOS tasks)
  refers to.  Python code addresses collaborators through exactly
  these channels, so a subtree that nothing references cannot be read
  or written by any process body;
* **wait registrations** — a process suspended on a signal's
  ``changed`` event connects the signal to the process's owner module.

Module↔module and module↔signal edges are kept *bidirectional*
(holding a reference allows both reading and writing), which keeps the
cone sound at the cost of precision; gate-level cones from
:class:`GateReachability` are exact and directed.  The one analyzability
caveat: a module addressed only via ``find()``/``children`` traversal
at runtime escapes the reference scan — none of the shipped platforms
do that, and the soundness gate in CI (dynamic
:class:`~repro.observe.graph.PropagationGraph` detection edges ⊆ static
cone on every built-in platform) pins the contract.

A site is only ever called **dead** when the platform declares its
observation surface (registry ``reach_surface`` metadata): without
knowing what ``observe()`` reads, "no path to anything observed" is
not computable, so analysis degrades to "nothing prunable" instead of
guessing.
"""

from __future__ import annotations

import json
import typing as _t

from ..kernel import Module, Simulator
from ..kernel.process import Process
from ..kernel.signal import SignalBase

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..core.scenario import ErrorScenario, FaultSpace

#: Bump when the audit payload layout changes shape.
REACH_SCHEMA_VERSION = 1

#: Attributes that express tree *structure*, not dataflow: following
#: them would short-circuit every cone through the hierarchy root.
#: (Attribute references to child modules are still followed — `self.x
#: = AdcSensor(...)` is how a parent's process body reaches the child —
#: this set only excludes the kernel's own bookkeeping.)
_STRUCTURAL_ATTRS = frozenset({
    "parent",
    "children",
    "sim",
    "basename",
    "_owned_signals",
    "_owned_processes",
    "_injection_points",
})

#: Terminal value types the reference scan never descends into.
_ATOMIC_TYPES = (
    str, bytes, bytearray, int, float, complex, bool, type(None),
)

#: How deep the reference scan follows plain helper objects (RTOS task
#: lists, TLM sockets, payload structs).  Two container hops below a
#: module attribute covers every idiom in the shipped platforms; the
#: limit exists so cyclic helper structures terminate.
_SCAN_DEPTH = 4


class ModelGraph:
    """A small directed graph over string node ids.

    Node id conventions (mirroring the dynamic
    :class:`~repro.observe.graph.PropagationGraph` vocabulary):
    ``mod:<full_name>``, ``sig:<signal name>``, ``site:<path>``,
    ``detect:<module>:<mechanism>``, ``out:<name>``.
    """

    def __init__(self) -> None:
        self.kinds: _t.Dict[str, str] = {}
        self._succ: _t.Dict[str, _t.Set[str]] = {}

    def add_node(self, node: str, kind: str) -> None:
        self.kinds.setdefault(node, kind)
        self._succ.setdefault(node, set())

    def add_edge(self, src: str, dst: str) -> None:
        """One directed may-flow edge."""
        self.add_node(src, self.kinds.get(src, "?"))
        self.add_node(dst, self.kinds.get(dst, "?"))
        self._succ[src].add(dst)

    def link(self, a: str, b: str) -> None:
        """A bidirectional (read *and* write capable) connection."""
        self.add_edge(a, b)
        self.add_edge(b, a)

    def successors(self, node: str) -> _t.FrozenSet[str]:
        return frozenset(self._succ.get(node, ()))

    @property
    def nodes(self) -> _t.Tuple[str, ...]:
        return tuple(sorted(self.kinds))

    @property
    def edge_count(self) -> int:
        return sum(len(dsts) for dsts in self._succ.values())

    def distances(self, start: str) -> _t.Dict[str, int]:
        """BFS hop counts from *start* to every reachable node."""
        if start not in self.kinds:
            return {}
        dist = {start: 0}
        frontier = [start]
        while frontier:
            nxt: _t.List[str] = []
            for node in frontier:
                for succ in self._succ.get(node, ()):
                    if succ not in dist:
                        dist[succ] = dist[node] + 1
                        nxt.append(succ)
            frontier = nxt
        return dist

    def reachable(self, start: str) -> _t.FrozenSet[str]:
        return frozenset(self.distances(start))


def _collect_refs(value: _t.Any, depth: int, seen: _t.Set[int],
                  out: _t.List[_t.Any]) -> None:
    """Gather Module/SignalBase objects reachable from *value* through
    containers, closures, bound methods, and plain helper objects."""
    if isinstance(value, _ATOMIC_TYPES) or isinstance(value, type):
        return
    if isinstance(value, (Module, SignalBase)):
        out.append(value)
        return
    if isinstance(value, (Simulator, Process)):
        # Descending into the kernel would connect everything to
        # everything through its global registries — a helper holding
        # `sim` is addressing the scheduler, not another component.
        return
    if depth <= 0 or id(value) in seen:
        return
    seen.add(id(value))
    # Bound methods carry their receiver; plain functions may close
    # over modules/signals (sensor `source=lambda now: ...self.servo...`).
    receiver = getattr(value, "__self__", None)
    if receiver is not None:
        _collect_refs(receiver, depth - 1, seen, out)
    func = getattr(value, "__func__", value)
    closure = getattr(func, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                _collect_refs(cell.cell_contents, depth - 1, seen, out)
            except ValueError:  # pragma: no cover - empty cell
                continue
    if isinstance(value, dict):
        for item in value.values():
            _collect_refs(item, depth - 1, seen, out)
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            _collect_refs(item, depth - 1, seen, out)
        return
    inner = getattr(value, "__dict__", None)
    if isinstance(inner, dict):
        for item in inner.values():
            _collect_refs(item, depth - 1, seen, out)


def _module_node(module: Module) -> str:
    return f"mod:{module.full_name}"


def _signal_node(signal: SignalBase) -> str:
    return f"sig:{signal.name}"


class SiteReach(_t.NamedTuple):
    """The forward cone of one fault site, projected onto sinks."""

    path: str
    #: Detector mechanisms with at least one reachable instance.
    mechanisms: _t.Tuple[str, ...]
    #: Reachable ``detect:<module>:<mechanism>`` node ids.
    detectors: _t.Tuple[str, ...]
    #: Reachable declared-output names.
    outputs: _t.Tuple[str, ...]
    #: BFS hops to the nearest detector (``None`` = unreachable).
    detector_distance: _t.Optional[int]


class CoverageAuditReport:
    """The detector-coverage audit over one platform's fault sites."""

    def __init__(
        self,
        platform: _t.Optional[str],
        sites: _t.Mapping[str, SiteReach],
        detectors: _t.Mapping[str, _t.Tuple[str, ...]],
        outputs: _t.Tuple[str, ...],
        surface_known: bool,
    ):
        self.platform = platform
        self.sites = dict(sites)
        self.detectors = {m: tuple(v) for m, v in sorted(detectors.items())}
        self.outputs = tuple(outputs)
        self.surface_known = surface_known

    # -- the three audit questions ------------------------------------

    def dead_sites(self) -> _t.Tuple[str, ...]:
        """Sites with no path to any detector *or* output — injection
        provably silent.  Always empty when the platform did not
        declare its observation surface (we cannot know what "output"
        means, so nothing may be called dead)."""
        if not self.surface_known:
            return ()
        return tuple(
            path for path, reach in sorted(self.sites.items())
            if not reach.mechanisms and not reach.outputs
        )

    def undetectable_hazardous(self) -> _t.Tuple[str, ...]:
        """Sites that reach an output but no detection mechanism: a
        fault there can corrupt observable behavior with nothing armed
        to catch it — the structural coverage gaps a safety argument
        has to explain."""
        return tuple(
            path for path, reach in sorted(self.sites.items())
            if reach.outputs and not reach.mechanisms
        )

    def mechanism_coverage(self) -> _t.Dict[str, float]:
        """Per mechanism: the fraction of fault sites whose cone holds
        at least one detector of that mechanism."""
        if not self.sites:
            return {m: 0.0 for m in self.detectors}
        total = len(self.sites)
        return {
            mechanism: sum(
                1 for reach in self.sites.values()
                if mechanism in reach.mechanisms
            ) / total
            for mechanism in self.detectors
        }

    # -- serialization --------------------------------------------------

    def to_jsonable(self) -> _t.Dict[str, _t.Any]:
        return {
            "schema": REACH_SCHEMA_VERSION,
            "tool": "vp-reach",
            "platform": self.platform,
            "surface_known": self.surface_known,
            "site_count": len(self.sites),
            "detectors": {m: list(v) for m, v in self.detectors.items()},
            "outputs": list(self.outputs),
            "dead_sites": list(self.dead_sites()),
            "undetectable_hazardous": list(self.undetectable_hazardous()),
            "mechanism_coverage": {
                m: round(cov, 6)
                for m, cov in sorted(self.mechanism_coverage().items())
            },
            "sites": {
                path: {
                    "mechanisms": list(reach.mechanisms),
                    "outputs": list(reach.outputs),
                    "detector_distance": reach.detector_distance,
                }
                for path, reach in sorted(self.sites.items())
            },
        }

    def canonical(self) -> bytes:
        """Canonical audit bytes — the comparison/citation currency,
        same contract as ``WordErrorProfile.canonical()``."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        ).encode()

    def render_text(self) -> str:
        name = self.platform or "<anonymous>"
        lines = [
            f"reach audit: {name} — {len(self.sites)} fault site(s), "
            f"{sum(len(v) for v in self.detectors.values())} detector(s), "
            f"{len(self.outputs)} output(s)"
            + ("" if self.surface_known else " [surface unknown]"),
        ]
        for mechanism, coverage in sorted(self.mechanism_coverage().items()):
            lines.append(f"  coverage[{mechanism}]: {coverage:.1%}")
        dead = self.dead_sites()
        lines.append(f"  dead sites: {len(dead)}")
        lines.extend(f"    {path}" for path in dead)
        gaps = self.undetectable_hazardous()
        lines.append(f"  undetectable-but-hazardous sites: {len(gaps)}")
        lines.extend(f"    {path}" for path in gaps)
        return "\n".join(lines)


class ReachReport:
    """The full analysis product: graph + per-site cones + audit."""

    def __init__(
        self,
        graph: ModelGraph,
        sites: _t.Dict[str, SiteReach],
        detectors: _t.Dict[str, _t.Tuple[str, ...]],
        outputs: _t.Tuple[str, ...],
        surface_known: bool,
        platform: _t.Optional[str] = None,
    ):
        self.graph = graph
        self.sites = sites
        self.detectors = detectors
        self.outputs = outputs
        self.surface_known = surface_known
        self.platform = platform

    def site_mechanisms(self, path: str) -> _t.FrozenSet[str]:
        """Detector mechanisms statically reachable from *path*.

        Unknown paths get the universe-of-discourse answer (every
        mechanism): claiming anything about a site we never analyzed
        would be exactly the unsoundness this module exists to avoid.
        """
        reach = self.sites.get(path)
        if reach is None:
            return frozenset(self.detectors)
        return frozenset(reach.mechanisms)

    def audit(self) -> CoverageAuditReport:
        return CoverageAuditReport(
            self.platform, self.sites, self.detectors, self.outputs,
            self.surface_known,
        )

    def dead_sites(self) -> _t.FrozenSet[str]:
        return frozenset(self.audit().dead_sites())

    def distance_hints(
        self, space: "FaultSpace", scale: float = 1.0
    ) -> _t.Dict[_t.Tuple[str, str], float]:
        """Static priors for guided search, keyed like
        ``WeakSpotStrategy(static_hints=...)`` expects.

        Sites *near* a detector score low (the mechanism will likely
        catch them), sites far from every detector score high (if they
        reach outputs at all, nothing stands in the way) — the static
        analogue of hunting for weak spots.  Dead sites score 0.
        """
        distances = [
            reach.detector_distance
            for reach in self.sites.values()
            if reach.detector_distance is not None
        ]
        horizon = (max(distances) + 1) if distances else 1
        hints: _t.Dict[_t.Tuple[str, str], float] = {}
        for path, descriptor in space.pairs:
            reach = self.sites.get(path)
            if reach is None:
                continue  # unknown site: leave the strategy's default
            if not reach.mechanisms and not reach.outputs \
                    and self.surface_known:
                score = 0.0
            elif reach.detector_distance is None:
                score = scale  # reaches outputs, no detector in the way
            else:
                score = scale * reach.detector_distance / horizon
            hints[(path, descriptor.name)] = score
        return hints


def extract_graph(
    root: Module,
    sim: _t.Optional[Simulator] = None,
    surface: _t.Optional[_t.Mapping[str, _t.Any]] = None,
    extra_outputs: _t.Optional[_t.Mapping[str, SignalBase]] = None,
) -> _t.Tuple[ModelGraph, _t.Dict[str, _t.Tuple[str, ...]],
              _t.Tuple[str, ...]]:
    """Build the structural dataflow graph of an elaborated tree.

    Returns ``(graph, detectors, outputs)`` where *detectors* maps
    mechanism → sorted detector-node ids and *outputs* is the sorted
    tuple of declared-output names.  *surface* is the registry
    ``reach_surface`` payload; *extra_outputs* the bundle's
    ``trace_signals`` mapping (traced signals are outputs by
    definition — deviation events are observed on them).
    """
    graph = ModelGraph()
    owner_of_process: _t.Dict[int, Module] = {}
    modules = list(root.walk())
    for module in modules:
        mod_node = _module_node(module)
        graph.add_node(mod_node, "module")
        for signal in module.owned_signals:
            if isinstance(signal, SignalBase):
                graph.add_node(_signal_node(signal), "signal")
                graph.link(mod_node, _signal_node(signal))
        for process in module.owned_processes:
            owner_of_process[id(process)] = module
    # Reference edges: attributes, closures, callbacks, helper objects.
    for module in modules:
        mod_node = _module_node(module)
        for attr, value in vars(module).items():
            if attr in _STRUCTURAL_ATTRS:
                continue
            refs: _t.List[_t.Any] = []
            _collect_refs(value, _SCAN_DEPTH, set(), refs)
            for ref in refs:
                if ref is module:
                    continue
                if isinstance(ref, Module):
                    graph.link(mod_node, _module_node(ref))
                else:
                    graph.add_node(_signal_node(ref), "signal")
                    graph.link(mod_node, _signal_node(ref))
    # Wait registrations: signal -> process owner (kernel read-only
    # introspection; populated for whatever has already suspended).
    if sim is not None:
        for signal in sim.signals:
            sig_node = _signal_node(signal)
            for process in signal.changed.waiters:
                owner = owner_of_process.get(id(process))
                if owner is not None:
                    graph.add_node(sig_node, "signal")
                    graph.add_edge(sig_node, _module_node(owner))
    # Injection sites: directed into the owning module plus whatever
    # the point object itself references (CAN wire points hold the bus).
    by_full_name = {module.full_name: module for module in modules}
    for path, point in root.all_injection_points().items():
        site_node = f"site:{path}"
        graph.add_node(site_node, "site")
        owner = by_full_name.get(path.rsplit(".", 1)[0])
        if owner is not None:
            graph.add_edge(site_node, _module_node(owner))
        refs: _t.List[_t.Any] = []
        _collect_refs(point, _SCAN_DEPTH, set(), refs)
        for ref in refs:
            if isinstance(ref, Module):
                graph.add_edge(site_node, _module_node(ref))
            else:
                graph.add_node(_signal_node(ref), "signal")
                graph.add_edge(site_node, _signal_node(ref))
    # Detectors: DETECTION_MECHANISMS class declarations + surface extras.
    detectors: _t.Dict[str, _t.Set[str]] = {}
    for module in modules:
        for mechanism in getattr(type(module), "DETECTION_MECHANISMS", ()):
            node = f"detect:{module.full_name}:{mechanism}"
            graph.add_node(node, "detector")
            graph.add_edge(_module_node(module), node)
            detectors.setdefault(mechanism, set()).add(node)
    surface = surface or {}
    for mechanism, extras in (surface.get("detectors") or {}).items():
        for module in extras:
            node = f"detect:{module.full_name}:{mechanism}"
            graph.add_node(node, "detector")
            graph.add_edge(_module_node(module), node)
            detectors.setdefault(mechanism, set()).add(node)
    # Outputs: the declared observation surface + traced signals.
    outputs: _t.Set[str] = set()
    for sink in surface.get("outputs") or ():
        if isinstance(sink, Module):
            name, src = sink.full_name, _module_node(sink)
        else:
            name, src = sink.name, _signal_node(sink)
            graph.add_node(src, "signal")
        node = f"out:{name}"
        graph.add_node(node, "output")
        graph.add_edge(src, node)
        outputs.add(name)
    for name, signal in (extra_outputs or {}).items():
        node = f"out:{name}"
        graph.add_node(_signal_node(signal), "signal")
        graph.add_node(node, "output")
        graph.add_edge(_signal_node(signal), node)
        outputs.add(name)
    return (
        graph,
        {m: tuple(sorted(nodes)) for m, nodes in sorted(detectors.items())},
        tuple(sorted(outputs)),
    )


def analyze_root(
    root: Module,
    sim: _t.Optional[Simulator] = None,
    surface: _t.Optional[_t.Mapping[str, _t.Any]] = None,
    extra_outputs: _t.Optional[_t.Mapping[str, SignalBase]] = None,
    surface_known: _t.Optional[bool] = None,
    platform: _t.Optional[str] = None,
) -> ReachReport:
    """Analyze an already-elaborated module tree."""
    graph, detectors, outputs = extract_graph(
        root, sim=sim, surface=surface, extra_outputs=extra_outputs
    )
    if surface_known is None:
        surface_known = surface is not None
    mechanism_of = {
        node: mechanism
        for mechanism, nodes in detectors.items()
        for node in nodes
    }
    output_names = {f"out:{name}": name for name in outputs}
    sites: _t.Dict[str, SiteReach] = {}
    for path in sorted(root.all_injection_points()):
        distances = graph.distances(f"site:{path}")
        hit_detectors = sorted(
            node for node in distances if node in mechanism_of
        )
        hit_outputs = sorted(
            output_names[node] for node in distances if node in output_names
        )
        detector_distance = min(
            (distances[node] for node in hit_detectors), default=None
        )
        sites[path] = SiteReach(
            path=path,
            mechanisms=tuple(sorted({
                mechanism_of[node] for node in hit_detectors
            })),
            detectors=tuple(hit_detectors),
            outputs=tuple(hit_outputs),
            detector_distance=detector_distance,
        )
    return ReachReport(
        graph, sites, dict(detectors), outputs, surface_known, platform
    )


def analyze_platform(name: str, settle: int = 1) -> ReachReport:
    """Analyze a registered platform by key.

    Builds a throwaway instance, lets it settle *settle* time units so
    elaboration-time wait registrations are armed (processes park on
    their first ``yield`` — pure structure, no faults injected), then
    extracts the graph.  The instance is discarded afterwards.
    """
    from ..platforms import registry

    bundle = registry.get_platform(name)
    sim = Simulator()
    root = bundle.factory(sim)
    if settle > 0:
        sim.run(until=settle)
    surface = (
        bundle.reach_surface(root)
        if bundle.reach_surface is not None else None
    )
    extra_outputs = (
        bundle.trace_signals(root)
        if bundle.trace_signals is not None else None
    )
    return analyze_root(
        root, sim=sim, surface=surface, extra_outputs=extra_outputs,
        surface_known=bundle.reach_surface is not None, platform=name,
    )


class ReachabilityPruner:
    """Execution-level filter over statically-dead injections.

    Passed to ``Campaign.run(prune=...)``: the campaign plans the
    *identical* spec stream either way (same RNG draws, seeds, and
    indices — the planner never sees the pruner), then skips execution
    of any fresh spec whose injections all target dead sites.  Skips
    become explicit ``pruned:unreachable`` records, never silent
    drops, and are excluded from the checkpoint journal so resuming
    re-derives them from the same static analysis.
    """

    def __init__(self, report: ReachReport):
        self.report = report
        self.dead = report.dead_sites()

    @classmethod
    def for_platform(cls, name: str) -> "ReachabilityPruner":
        return cls(analyze_platform(name))

    def is_dead(self, scenario: "ErrorScenario") -> bool:
        """True when *every* injection of the scenario targets a
        provably-dead site (multi-injection scenarios stay live if any
        single site might matter)."""
        injections = scenario.injections
        if not injections or not self.dead:
            return False
        return all(
            injection.target_path in self.dead for injection in injections
        )

    def static_hints(
        self, space: "FaultSpace", scale: float = 1.0
    ) -> _t.Dict[_t.Tuple[str, str], float]:
        """Distance-to-detector priors for ``WeakSpotStrategy``."""
        return self.report.distance_hints(space, scale=scale)


class GateReachability:
    """Exact directed net-level reachability of a gate circuit.

    Built from the levelized :class:`~repro.gate.vector.GateProgram`
    structure: combinational edges follow gate input→output indices,
    sequential edges follow flop D→Q (next cycle).  Unlike the
    behavioral :class:`ModelGraph` this is not an approximation — the
    netlist *is* the dataflow.
    """

    def __init__(self, program) -> None:
        if not hasattr(program, "ops"):  # accept a Netlist too
            from ..gate.vector import GateProgram

            program = GateProgram(program)
        self.program = program
        self._net_of = {idx: net for net, idx in program.index.items()}
        self._succ: _t.Dict[int, _t.Set[int]] = {}
        for _opcode, out_idx, in_idxs in program.ops:
            for in_idx in in_idxs:
                self._succ.setdefault(in_idx, set()).add(out_idx)
        for d_idx, q_idx in zip(
            program.flop_d_indices.tolist(),
            program.flop_out_indices.tolist(),
        ):
            self._succ.setdefault(d_idx, set()).add(q_idx)
        self._outputs = frozenset(
            idx for _net, idx in program.output_indices
        )

    def cone(self, net: str) -> _t.FrozenSet[str]:
        """Every net name the fault effect at *net* can propagate to
        (including *net* itself)."""
        start = self.program.index[net]
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: _t.List[int] = []
            for idx in frontier:
                for succ in self._succ.get(idx, ()):
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append(succ)
            frontier = nxt
        return frozenset(self._net_of[idx] for idx in seen)

    def reaches_output(self, net: str) -> bool:
        start = self.program.index[net]
        if start in self._outputs:
            return True
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: _t.List[int] = []
            for idx in frontier:
                for succ in self._succ.get(idx, ()):
                    if succ in self._outputs:
                        return True
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append(succ)
            frontier = nxt
        return False

    def dead_nets(self) -> _t.Tuple[str, ...]:
        """Nets whose fault effects cannot reach any circuit output —
        the gate-level analogue of dead fault sites."""
        return tuple(sorted(
            net for net in self.program.index
            if not self.reaches_output(net)
        ))
