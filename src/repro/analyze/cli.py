"""``python -m repro.analyze`` — the VP-lint and reach command line.

Two drivers behind one entry point:

* ``python -m repro.analyze [paths...]`` — VP-lint (the default, so
  the CI invocation predating the subcommand keeps working).  Exit
  codes: 0 clean, 1 findings at or above the severity threshold, 2
  usage error.  CI runs it over ``src examples benchmarks`` and gates
  merges on exit 0; the JSON report (``--json-output``) and SARIF
  report (``--sarif-output``) are uploaded as build artifacts.
* ``python -m repro.analyze reach --platform <name>`` — the static
  fault-propagation reachability audit (:mod:`repro.analyze.reach`).
  Exit codes: 0 analyzed, 1 coverage gaps found *and*
  ``--fail-on-gaps`` given, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

from .linter import lint_paths
from .reporters import render_json, render_sarif, render_text
from .rules import rule_table


def _parse_codes(raw: _t.Optional[str]) -> _t.Optional[_t.List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description=(
            "VP-lint: static soundness checks for virtual-prototype "
            "platform code (warm-reuse leaks, determinism hazards, "
            "swallowed deadlines)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to lint (default: src examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--json-output", metavar="FILE",
        help="additionally write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--sarif-output", metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE "
        "(GitHub code-scanning upload)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--min-severity", choices=("warning", "error"), default="warning",
        help="drop findings below this severity (default: warning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def lint_main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for row in rule_table():
            print(
                f"{row['code']}  {row['severity']:<7}  "
                f"{row['name']}: {row['summary']}"
            )
        return 0
    try:
        findings, files_checked = lint_paths(
            args.paths,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            min_severity=args.min_severity,
        )
    except (FileNotFoundError, ValueError) as exc:
        parser.exit(2, f"vp-lint: error: {exc}\n")
    if args.json_output:
        pathlib.Path(args.json_output).write_text(
            render_json(findings, files_checked) + "\n", encoding="utf-8"
        )
    if args.sarif_output:
        pathlib.Path(args.sarif_output).write_text(
            render_sarif(findings, files_checked) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(render_json(findings, files_checked))
    elif args.format == "sarif":
        print(render_sarif(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


def build_reach_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze reach",
        description=(
            "Static fault-propagation reachability audit: which fault "
            "sites can structurally reach which detectors and outputs."
        ),
    )
    parser.add_argument(
        "--platform", metavar="NAME", action="append", dest="platforms",
        help="registered platform key to analyze (repeatable; "
        "default: every registered platform)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--json-output", metavar="FILE",
        help="additionally write the JSON report to FILE",
    )
    parser.add_argument(
        "--fail-on-gaps", action="store_true",
        help="exit 1 when any audited platform has dead or "
        "undetectable-but-hazardous fault sites",
    )
    return parser


def reach_main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = build_reach_parser()
    args = parser.parse_args(argv)
    from ..platforms import registry  # built-ins register on import
    from .reach import analyze_platform

    names = args.platforms or list(registry.available_platforms())
    audits = []
    for name in names:
        try:
            audits.append(analyze_platform(name).audit())
        except KeyError as exc:
            parser.exit(2, f"vp-reach: error: {exc.args[0]}\n")
    payload = {
        "tool": "vp-reach",
        "platforms": [audit.to_jsonable() for audit in audits],
    }
    rendered_json = json.dumps(payload, indent=2, sort_keys=True)
    if args.json_output:
        pathlib.Path(args.json_output).write_text(
            rendered_json + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(rendered_json)
    else:
        print("\n\n".join(audit.render_text() for audit in audits))
    gaps = any(
        audit.dead_sites() or audit.undetectable_hazardous()
        for audit in audits
    )
    return 1 if (gaps and args.fail_on_gaps) else 0


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["reach"]:
        return reach_main(argv[1:])
    return lint_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())  # vp-lint: disable=VP010 - CLI entry point; the exit code is the contract
