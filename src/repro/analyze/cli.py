"""``python -m repro.analyze`` — the VP-lint command line.

Exit codes: 0 clean, 1 findings at or above the severity threshold,
2 usage error.  CI runs ``python -m repro.analyze src examples`` and
gates merges on exit 0; the JSON report (``--json-output``) is
uploaded as a build artifact.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing as _t

from .linter import lint_paths
from .reporters import render_json, render_text
from .rules import rule_table


def _parse_codes(raw: _t.Optional[str]) -> _t.Optional[_t.List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description=(
            "VP-lint: static soundness checks for virtual-prototype "
            "platform code (warm-reuse leaks, determinism hazards, "
            "swallowed deadlines)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to lint (default: src examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format written to stdout (default: text)",
    )
    parser.add_argument(
        "--json-output", metavar="FILE",
        help="additionally write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--min-severity", choices=("warning", "error"), default="warning",
        help="drop findings below this severity (default: warning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for row in rule_table():
            print(
                f"{row['code']}  {row['severity']:<7}  "
                f"{row['name']}: {row['summary']}"
            )
        return 0
    try:
        findings, files_checked = lint_paths(
            args.paths,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            min_severity=args.min_severity,
        )
    except (FileNotFoundError, ValueError) as exc:
        parser.exit(2, f"vp-lint: error: {exc}\n")
    if args.json_output:
        pathlib.Path(args.json_output).write_text(
            render_json(findings, files_checked) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())  # vp-lint: disable=VP010 - CLI entry point; the exit code is the contract
