"""The VP-lint rule registry.

Every rule encodes a platform-soundness hazard this repository has
already paid for in review time or equivalence-test debugging (PRs
2-4: warm-reset leaks, mutable initial values, notifications lost to
fast paths, swallowed deadlines).  Codes are stable — reports, pragmas,
and CI artifacts refer to them — so a rule is never renumbered, only
retired.

Rules with ``kernel_internal_ok = True`` do not apply inside
``repro/kernel/``: the kernel *implements* the abstractions those
rules protect (it may construct signals, spawn processes, and touch
its own private state by definition).  Everywhere else, intentional
violations must carry a ``# vp-lint: disable=...`` pragma with a
rationale.
"""

from __future__ import annotations

import ast
import pathlib
import typing as _t

from .findings import ERROR, WARNING, Finding

if _t.TYPE_CHECKING:  # pragma: no cover
    from .linter import LintContext


RULES: _t.Dict[str, "Rule"] = {}


def rule(cls: _t.Type["Rule"]) -> _t.Type["Rule"]:
    """Register a rule class (instantiated once) under its code."""
    instance = cls()
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return cls


class Rule:
    """Base class: one hazard, one stable code."""

    code: str = "VP000"
    name: str = "rule"
    severity: str = ERROR
    summary: str = ""
    #: True when the rule is definitionally satisfied inside the
    #: kernel package (which implements the protected abstraction).
    kernel_internal_ok: bool = False

    def check_node(
        self, node: ast.AST, ctx: "LintContext"
    ) -> _t.Iterator[Finding]:
        return iter(())

    def finding(
        self, node: ast.AST, ctx: "LintContext", message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=self.severity,
            rule=self.name,
        )


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def _call_name(node: ast.Call) -> _t.Optional[str]:
    """``f(...)`` -> ``"f"``; ``a.b.f(...)`` -> ``"f"``; else None."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attr_base_name(node: ast.Attribute) -> _t.Optional[str]:
    """``base.attr`` -> ``"base"`` when base is a plain name."""
    if isinstance(node.value, ast.Name):
        return node.value.id
    return None


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def collect_mutable_globals(tree: ast.Module) -> _t.Set[str]:
    """Module-level names bound to mutable containers.

    Passing such a name as a signal's initial value aliases shared
    mutable state into the channel — exactly the leak class the warm
    reuse fixes in PR 4 closed (VP003).
    """
    names: _t.Set[str] = set()
    for stmt in tree.body:
        targets: _t.List[ast.expr] = []
        value: _t.Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------

_CHANNEL_CLASSES = {"Signal", "Wire", "Clock"}


@rule
class DirectChannelConstruction(Rule):
    """Channels built outside the ``Module`` helpers are invisible to
    ``Module.detach()``: on a warm kernel they accumulate in
    ``Simulator._signals`` forever, growing memory and reset cost with
    every run."""

    code = "VP001"
    name = "direct-channel-construction"
    severity = ERROR
    summary = (
        "Signal/Wire/Clock constructed directly; use Module.signal/"
        "wire/clock so detach() can reclaim it"
    )
    kernel_internal_ok = True

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        name = _call_name(node)
        if name in _CHANNEL_CLASSES:
            yield self.finding(
                node, ctx,
                f"{name}(...) constructed directly — channels created "
                f"outside the Module helpers (Module.{name.lower()}) "
                f"escape detach() reclamation on a warm kernel",
            )


@rule
class DirectProcessSpawn(Rule):
    """Processes spawned via ``sim.spawn`` instead of
    ``Module.process`` are not owned by any module subtree, so
    ``detach()`` cannot kill and unregister them."""

    code = "VP002"
    name = "direct-process-spawn"
    severity = ERROR
    summary = (
        "Simulator.spawn called directly; use Module.process so "
        "detach() can reclaim the process"
    )
    kernel_internal_ok = True

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr == "spawn":
            yield self.finding(
                node, ctx,
                ".spawn(...) called directly — processes created outside "
                "Module.process escape detach() reclamation on a warm "
                "kernel",
            )


_SIGNAL_HELPERS = {"signal", "wire"} | _CHANNEL_CLASSES


@rule
class SharedMutableInitial(Rule):
    """A module-level mutable container passed as a signal initial
    value aliases shared state into the channel: an in-place mutation
    during one run leaks into every later reader of the global."""

    code = "VP003"
    name = "shared-mutable-initial"
    severity = WARNING
    summary = (
        "module-level mutable container passed as a signal initial "
        "value; pass a copy or an immutable"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        if _call_name(node) not in _SIGNAL_HELPERS:
            return
        suspects = list(node.args) + [kw.value for kw in node.keywords]
        for arg in suspects:
            if (
                isinstance(arg, ast.Name)
                and arg.id in ctx.mutable_globals
            ):
                yield self.finding(
                    node, ctx,
                    f"signal initial value {arg.id!r} is a shared "
                    f"module-level mutable container — pass a copy "
                    f"(e.g. list({arg.id})) so per-run mutation cannot "
                    f"leak through the alias",
                )


_GLOBAL_RNG_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "seed",
}


@rule
class UnseededRandomness(Rule):
    """The process-global RNG is shared across every run in a worker:
    fresh-vs-warm and serial-vs-parallel executions consume it in
    different orders, breaking byte-identity.  Runs must draw from a
    ``random.Random(run_seed)`` instance."""

    code = "VP004"
    name = "unseeded-randomness"
    severity = ERROR
    summary = (
        "module-global random.* call (or seedless random.Random()); "
        "use a per-run random.Random(seed) instance"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if _attr_base_name(func) != "random":
            return
        if func.attr in _GLOBAL_RNG_FUNCS:
            yield self.finding(
                node, ctx,
                f"random.{func.attr}() draws from the process-global "
                f"RNG — worker execution order leaks into results; use "
                f"a seeded random.Random instance (run specs carry a "
                f"per-run seed)",
            )
        elif func.attr == "Random" and not node.args and not node.keywords:
            yield self.finding(
                node, ctx,
                "random.Random() without a seed falls back to OS "
                "entropy — pass the run seed explicitly",
            )


_WALLCLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


@rule
class WallClockInModel(Rule):
    """Wall-clock reads make simulation content depend on host speed
    and scheduling: the same seed stops reproducing the same bytes.
    Simulated time is ``sim.now``; the only legitimate wall-clock
    users are the deadline watchdog and throughput accounting, which
    carry pragmas."""

    code = "VP005"
    name = "wall-clock-in-model"
    severity = ERROR
    summary = (
        "wall-clock call (time.time/perf_counter/datetime.now); model "
        "code must use simulated time (sim.now)"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = _attr_base_name(func)
        if base is None and isinstance(func.value, ast.Attribute):
            # datetime.datetime.now(...)
            base = func.value.attr
        if (base, func.attr) in _WALLCLOCK_CALLS:
            yield self.finding(
                node, ctx,
                f"{base}.{func.attr}() reads the wall clock — results "
                f"become host-speed dependent; use sim.now (simulated "
                f"time) or move the measurement to campaign accounting",
            )


_PRIVATE_KERNEL_STATE = {
    "_signals", "_processes", "_runnable", "_wheel", "_update_queue",
    "_delta_events", "_delta_resumes", "_timed_now", "_elab_snapshot",
    "_current", "_next", "_value", "_update_pending",
    "_waiters", "_pending_kind",
}


@rule
class PrivateKernelState(Rule):
    """Reaching into kernel-private state bypasses the invariants the
    scheduler maintains (update staging, elaboration snapshots, waiter
    bookkeeping) — mutations through these attributes are exactly the
    corruptions the warm-reuse equivalence tests exist to catch."""

    code = "VP006"
    name = "private-kernel-state"
    severity = ERROR
    summary = (
        "direct access to private kernel state (_signals, _processes, "
        "Signal._current, ...); use the public API"
    )
    kernel_internal_ok = True

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Attribute):
            return
        if node.attr not in _PRIVATE_KERNEL_STATE:
            return
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            # A class touching its *own* private attribute that merely
            # shares a name with kernel state is not a violation.
            return
        yield self.finding(
            node, ctx,
            f"access to private kernel state .{node.attr} — use the "
            f"public kernel API (read()/write()/staged/stats()) so "
            f"scheduler invariants hold",
        )


_CONTROL_EXCEPTIONS = {"DeadlineExceeded", "KeyboardInterrupt"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _handler_names(handler: ast.ExceptHandler) -> _t.Set[str]:
    names: _t.Set[str] = set()
    nodes: _t.List[ast.expr] = []
    if handler.type is not None:
        nodes = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
    for expr in nodes:
        if isinstance(expr, ast.Name):
            names.add(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.add(expr.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(sub, ast.Raise) and sub.exc is None
        for sub in ast.walk(handler)
    )


@rule
class BroadExceptionHandler(Rule):
    """A bare/broad except around simulation code swallows
    ``DeadlineExceeded`` — the hung run is misclassified as an
    ordinary error instead of degrading to the TIMEOUT record the
    fault-tolerance layer expects.  Acceptable only when an earlier
    handler re-raises the control exceptions or the broad handler
    itself re-raises."""

    code = "VP007"
    name = "broad-exception-handler"
    severity = ERROR
    summary = (
        "bare `except:` / `except Exception` without a preceding "
        "DeadlineExceeded re-raise clause"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Try):
            return
        control_handled = False
        for handler in node.handlers:
            names = _handler_names(handler)
            if names & _CONTROL_EXCEPTIONS:
                control_handled = True
                continue
            broad = handler.type is None or bool(names & _BROAD_EXCEPTIONS)
            if not broad or control_handled or _reraises(handler):
                continue
            what = (
                "bare `except:`" if handler.type is None
                else f"`except {'/'.join(sorted(names & _BROAD_EXCEPTIONS))}`"
            )
            yield Finding(
                code=self.code,
                message=(
                    f"{what} can swallow DeadlineExceeded — add an "
                    f"`except DeadlineExceeded: raise` clause before it "
                    f"(or re-raise inside the handler)"
                ),
                path=ctx.path,
                line=handler.lineno,
                col=handler.col_offset + 1,
                severity=self.severity,
                rule=self.name,
            )


@rule
class UnpicklableRunSpecPayload(Rule):
    """RunSpecs cross the process-pool pickle boundary; a lambda (or
    generator expression) embedded in one fails at dispatch time —
    on the parallel backend only, long after the serial tests passed."""

    code = "VP008"
    name = "unpicklable-runspec-payload"
    severity = ERROR
    summary = (
        "lambda/generator expression inside a RunSpec(...) payload; "
        "specs must stay picklable for pool dispatch"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        if _call_name(node) != "RunSpec":
            return
        suspects = list(node.args) + [kw.value for kw in node.keywords]
        for arg in suspects:
            for sub in ast.walk(arg):
                if isinstance(sub, (ast.Lambda, ast.GeneratorExp)):
                    kind = (
                        "lambda" if isinstance(sub, ast.Lambda)
                        else "generator expression"
                    )
                    yield self.finding(
                        sub, ctx,
                        f"{kind} inside a RunSpec payload does not "
                        f"pickle — the spec will fail at pool dispatch; "
                        f"use a module-level function or plain data",
                    )
                    break


@rule
class UnresettableRegistration(Rule):
    """A platform registered without a ``reset`` hook is rebuilt from
    scratch for every run — correct, but it silently forfeits warm
    reuse.  Declare the choice: provide the hook, or pragma the
    registration with the reason it must stay fresh-build."""

    code = "VP009"
    name = "unresettable-registration"
    severity = WARNING
    summary = (
        "register_platform(...) without a reset= hook; platform "
        "silently forfeits warm reuse"
    )

    #: reset is the 7th positional parameter of register_platform.
    _RESET_POSITION = 7

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        if _call_name(node) != "register_platform":
            return
        if len(node.args) >= self._RESET_POSITION:
            return
        if any(kw.arg == "reset" for kw in node.keywords):
            return
        yield self.finding(
            node, ctx,
            "register_platform(...) without reset= — the platform is "
            "rebuilt for every run; add a warm-reset hook restoring "
            "module state, or pragma this line with why it must stay "
            "fresh-build",
        )


@rule
class ForklessWarmRegistration(Rule):
    """A platform registered with a ``reset`` hook but no
    ``capture_state``/``restore_state`` pair supports warm reuse but
    not snapshot-fork execution: every fork-enabled campaign silently
    falls back to per-run simulation for it.  A module whose state a
    ``reset`` hook can rebuild can almost always be deep-captured too
    — declare the choice either way."""

    code = "VP011"
    name = "forkless-warm-registration"
    severity = WARNING
    summary = (
        "register_platform(...) with reset= but no capture_state=; "
        "platform silently forfeits snapshot-fork execution"
    )

    #: capture_state is the 8th positional parameter of
    #: register_platform (after reset).
    _CAPTURE_POSITION = 8

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        if _call_name(node) != "register_platform":
            return
        has_reset = (
            len(node.args) >= UnresettableRegistration._RESET_POSITION
            or any(kw.arg == "reset" for kw in node.keywords)
        )
        if not has_reset:
            return
        has_capture = (
            len(node.args) >= self._CAPTURE_POSITION
            or any(kw.arg == "capture_state" for kw in node.keywords)
        )
        if has_capture:
            return
        yield self.finding(
            node, ctx,
            "register_platform(...) declares reset= but no "
            "capture_state=/restore_state= — fork-enabled campaigns "
            "silently fall back to per-run simulation; add snapshot "
            "hooks, or pragma this line with why mid-run capture is "
            "unsupported",
        )


@rule
class ProcessExitInModel(Rule):
    """``os._exit``/``sys.exit`` in platform code kills the executing
    process — in a serial campaign that is the campaign itself.  Only
    the hostile crash-test platform may do this, explicitly."""

    code = "VP010"
    name = "process-exit-in-model"
    severity = ERROR
    summary = (
        "os._exit/sys.exit call in model code; raise or stop() the "
        "simulation instead"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = _attr_base_name(func)
        if (base, func.attr) in (("os", "_exit"), ("sys", "exit")):
            yield self.finding(
                node, ctx,
                f"{base}.{func.attr}() terminates the executing "
                f"process — in a serial campaign that is the campaign; "
                f"raise an exception or call sim.stop() instead",
            )


#: Draw/state functions on numpy's module-level legacy RNG.  Like the
#: stdlib set above, ``seed``/state calls are included: seeding the
#: *shared* generator is exactly the cross-run leak being banned.
_NUMPY_GLOBAL_RNG_FUNCS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "lognormal", "exponential", "poisson", "beta",
    "gamma", "binomial", "multinomial", "multivariate_normal",
    "triangular", "weibull", "pareto", "bytes", "seed", "get_state",
    "set_state",
}

_NUMPY_MODULE_NAMES = {"numpy", "np"}


@rule
class UnseededNumpyRandomness(Rule):
    """VP004's numpy sibling.  ``numpy.random.*`` draws from the
    process-global legacy RNG and ``default_rng()`` without a seed
    falls back to OS entropy — both break byte-reproducibility the
    moment the vector engine or the risk sampler runs in a different
    worker order.  Model and strategy code must hold an explicitly
    seeded ``numpy.random.Generator``."""

    code = "VP012"
    name = "unseeded-numpy-randomness"
    severity = ERROR
    summary = (
        "numpy.random.* global-RNG call or seedless default_rng(); "
        "use an explicitly seeded numpy Generator"
    )

    def _unseeded(self, node: ast.Call) -> bool:
        return not node.args and not node.keywords

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        func = node.func
        # Bare call imported via `from numpy.random import default_rng`.
        if (
            isinstance(func, ast.Name)
            and func.id == "default_rng"
            and self._unseeded(node)
        ):
            yield self.finding(
                node, ctx,
                "default_rng() without a seed falls back to OS entropy "
                "— pass the run seed explicitly",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        # numpy.random.<fn>(...) / np.random.<fn>(...)
        via_module = (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in _NUMPY_MODULE_NAMES
        )
        # random.<fn>(...) where `from numpy import random` — the
        # global-draw names below don't collide with the stdlib set
        # VP004 owns, so only default_rng is claimed here.
        via_bare = _attr_base_name(func) == "random"
        if via_module and func.attr in _NUMPY_GLOBAL_RNG_FUNCS:
            yield self.finding(
                node, ctx,
                f"numpy.random.{func.attr}() draws from the "
                f"process-global numpy RNG — worker execution order "
                f"leaks into results; use a seeded "
                f"numpy.random.Generator (e.g. "
                f"Generator(PCG64(run_seed)))",
            )
        elif (
            (via_module or via_bare)
            and func.attr == "default_rng"
            and self._unseeded(node)
        ):
            yield self.finding(
                node, ctx,
                "default_rng() without a seed falls back to OS entropy "
                "— pass the run seed explicitly",
            )


_POOL_CLASSES = {"ProcessPoolExecutor", "ThreadPoolExecutor"}
_SOCKET_FACTORIES = {"socket", "create_connection", "create_server"}

#: Consecutive path components of the sanctioned execution layers —
#: the modules that *implement* make_executor backends may of course
#: construct pools, threads, and sockets.
_EXECUTION_LAYER_PARTS = (
    ("repro", "distributed"),
    ("repro", "core", "executors.py"),
)


def _in_execution_layer(path: str) -> bool:
    parts = pathlib.PurePath(path).parts
    for marker in _EXECUTION_LAYER_PARTS:
        width = len(marker)
        if any(
            parts[i: i + width] == marker
            for i in range(len(parts) - width + 1)
        ):
            return True
    return False


@rule
class DirectConcurrencyConstruction(Rule):
    """Campaign/model code constructing its own pools, threads, or
    sockets bypasses the executor registry: such runs escape the
    RetryPolicy/timeout accounting, journal checkpointing, and the
    serial-equivalence contract that ``make_executor`` backends (and
    ``repro.distributed``) provide.  The execution layers themselves
    are exempt — they implement that contract."""

    code = "VP013"
    name = "direct-concurrency-construction"
    severity = WARNING
    summary = (
        "ProcessPoolExecutor/Thread/socket constructed directly; route "
        "execution through make_executor or repro.distributed"
    )

    def check_node(self, node, ctx):
        if not isinstance(node, ast.Call):
            return
        if _in_execution_layer(ctx.path):
            return
        func = node.func
        name = _call_name(node)
        if name in _POOL_CLASSES:
            yield self.finding(
                node, ctx,
                f"{name}(...) constructed directly — pool runs bypass "
                f"RetryPolicy/timeout accounting and journaling; use "
                f"make_executor(backend='parallel') instead",
            )
            return
        if name == "Thread" and (
            isinstance(func, ast.Name)
            or _attr_base_name(func) == "threading"
        ):
            yield self.finding(
                node, ctx,
                "threading.Thread(...) constructed directly — "
                "hand-rolled worker threads escape the executor "
                "contract; use make_executor or repro.distributed",
            )
            return
        # Only the module-level factories: `socket.socket(...)` /
        # `socket.create_*(...)`.  Attribute *access* named `socket`
        # (e.g. a TLM endpoint `entry.socket.deliver(...)`) is not a
        # construction and must not fire.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SOCKET_FACTORIES
            and _attr_base_name(func) == "socket"
        ):
            yield self.finding(
                node, ctx,
                f"socket.{func.attr}(...) opens a raw socket — "
                f"distributed execution belongs behind "
                f"repro.distributed's coordinator/worker protocol, not "
                f"ad-hoc connections in campaign code",
            )


def rule_table() -> _t.List[_t.Dict[str, str]]:
    """Stable-ordered rule metadata (docs, --list-rules)."""
    return [
        {
            "code": code,
            "name": r.name,
            "severity": r.severity,
            "summary": r.summary,
        }
        for code, r in sorted(RULES.items())
    ]
