"""Timed-dataflow (TDF) analog modeling, SystemC-AMS style.

Sec. 3.3: "Digital based methodologies have to be extended towards AMS
(Analogue Mixed Signal) designs", citing the SystemC-AMS work of Li et
al. [37].  This module is the AMS extension of this framework: static
single-rate dataflow graphs whose blocks process one sample per
timestep, embedded into the discrete-event kernel as a clocked process
— exactly the SystemC-AMS TDF model of computation.

Every block output passes through an :class:`~repro.hw.sensors.AnalogFault`
stage and each block registers an ``"analog"`` injection point, so TDF
front-ends participate in fault campaigns with the same descriptors as
plain sensors (offset/gain drift, stuck, open, noise).
"""

from __future__ import annotations

import typing as _t

from ..hw.sensors import AnalogFault, AnalogInjectionPoint
from ..kernel import Module


class TdfBlock:
    """One dataflow block: named inputs -> named outputs, one sample at
    a time.

    Subclasses implement :meth:`processing`; state (for filters,
    delays) lives on the instance.
    """

    inputs: _t.Tuple[str, ...] = ("in",)
    outputs: _t.Tuple[str, ...] = ("out",)

    def __init__(self, name: str, rng=None):
        self.name = name
        self.fault = AnalogFault()
        self.rng = rng
        self.samples_processed = 0

    def processing(
        self, inputs: _t.Dict[str, float], time: int
    ) -> _t.Dict[str, float]:
        raise NotImplementedError

    def _apply_fault(self, value: float) -> float:
        fault = self.fault
        if fault.open_circuit:
            return 0.0
        if fault.stuck_value is not None:
            return fault.stuck_value
        value = value * fault.gain + fault.offset
        if fault.noise_sigma:
            rng = self.rng if self.rng is not None else fault.noise_rng
            if rng is None:
                raise RuntimeError(
                    f"block {self.name!r}: noise fault armed but no rng"
                )
            value += rng.gauss(0.0, fault.noise_sigma)
        return value

    def execute(
        self, inputs: _t.Dict[str, float], time: int
    ) -> _t.Dict[str, float]:
        self.samples_processed += 1
        produced = self.processing(inputs, time)
        return {
            port: self._apply_fault(value)
            for port, value in produced.items()
        }

    def reset(self) -> None:
        """Clear internal state; overridden by stateful blocks."""


# ---------------------------------------------------------------------------
# The standard block library
# ---------------------------------------------------------------------------

class Source(TdfBlock):
    """Signal source: ``fn(time_units) -> float``."""

    inputs = ()

    def __init__(self, name: str, fn: _t.Callable[[int], float]):
        super().__init__(name)
        self.fn = fn

    def processing(self, inputs, time):
        return {"out": self.fn(time)}


class Gain(TdfBlock):
    def __init__(self, name: str, k: float):
        super().__init__(name)
        self.k = k

    def processing(self, inputs, time):
        return {"out": inputs["in"] * self.k}


class Offset(TdfBlock):
    def __init__(self, name: str, bias: float):
        super().__init__(name)
        self.bias = bias

    def processing(self, inputs, time):
        return {"out": inputs["in"] + self.bias}


class Adder(TdfBlock):
    inputs = ("a", "b")

    def processing(self, inputs, time):
        return {"out": inputs["a"] + inputs["b"]}


class LowPass(TdfBlock):
    """First-order IIR low-pass: y += alpha * (x - y)."""

    def __init__(self, name: str, alpha: float):
        super().__init__(name)
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0,1]")
        self.alpha = alpha
        self.state = 0.0

    def processing(self, inputs, time):
        self.state += self.alpha * (inputs["in"] - self.state)
        return {"out": self.state}

    def reset(self):
        self.state = 0.0


class Saturation(TdfBlock):
    def __init__(self, name: str, low: float, high: float):
        super().__init__(name)
        if high < low:
            raise ValueError("empty saturation range")
        self.low = low
        self.high = high

    def processing(self, inputs, time):
        return {"out": min(max(inputs["in"], self.low), self.high)}


class Comparator(TdfBlock):
    """Threshold detector with hysteresis; output is 0.0 / 1.0."""

    def __init__(self, name: str, threshold: float, hysteresis: float = 0.0):
        super().__init__(name)
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.state = 0.0

    def processing(self, inputs, time):
        value = inputs["in"]
        if self.state > 0.5:
            if value < self.threshold - self.hysteresis:
                self.state = 0.0
        else:
            if value > self.threshold:
                self.state = 1.0
        return {"out": self.state}

    def reset(self):
        self.state = 0.0


class Delay(TdfBlock):
    """One-sample delay (z^-1); breaks dataflow cycles.

    The graph latches the delay's input *after* the whole step has
    executed, so the output at step n is the driving value computed at
    step n-1 even when the driver runs later in the schedule.
    """

    sequential = True

    def __init__(self, name: str, initial: float = 0.0):
        super().__init__(name)
        self.initial = initial
        self.state = initial

    def processing(self, inputs, time):
        return {"out": self.state}

    def latch(self, value: float) -> None:
        self.state = value

    def reset(self):
        self.state = self.initial


class Quantizer(TdfBlock):
    """ADC-style quantizer to *bits* over [vmin, vmax]."""

    def __init__(self, name: str, bits: int, vmin: float, vmax: float):
        super().__init__(name)
        if vmax <= vmin or not 1 <= bits <= 24:
            raise ValueError("bad quantizer configuration")
        self.bits = bits
        self.vmin = vmin
        self.vmax = vmax

    def processing(self, inputs, time):
        value = min(max(inputs["in"], self.vmin), self.vmax)
        levels = (1 << self.bits) - 1
        code = round((value - self.vmin) / (self.vmax - self.vmin) * levels)
        return {"out": self.vmin + code / levels * (self.vmax - self.vmin)}


# ---------------------------------------------------------------------------
# The graph
# ---------------------------------------------------------------------------

class TdfGraph(Module):
    """A single-rate dataflow graph clocked by the DES kernel.

    Blocks execute in topological order each *timestep*; ``Delay``
    blocks are sequential (their output is last cycle's input) and so
    may close feedback loops.  Output samples of watched ports are
    recorded in :attr:`traces`.
    """

    def __init__(self, name: str, parent: Module, timestep: int):
        super().__init__(name, parent=parent)
        if timestep <= 0:
            raise ValueError("timestep must be positive")
        self.timestep = timestep
        self.blocks: _t.Dict[str, TdfBlock] = {}
        #: (src_block, src_port) feeding (dst_block, dst_port)
        self._wires: _t.Dict[_t.Tuple[str, str], _t.Tuple[str, str]] = {}
        self._order: _t.Optional[_t.List[TdfBlock]] = None
        self.values: _t.Dict[_t.Tuple[str, str], float] = {}
        self.traces: _t.Dict[_t.Tuple[str, str], _t.List[float]] = {}
        self.samples = 0
        self.process(self._run(), name="tdf")

    def add(self, block: TdfBlock) -> TdfBlock:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        self.blocks[block.name] = block
        self._order = None
        self.register_injection_point(
            block.name,
            AnalogInjectionPoint(
                f"{self.full_name}.{block.name}", block.fault
            ),
        )
        return block

    def connect(
        self, src: str, dst: str,
        src_port: str = "out", dst_port: str = "in",
    ) -> None:
        """Wire ``src.src_port`` to ``dst.dst_port``."""
        source = self.blocks[src]
        sink = self.blocks[dst]
        if src_port not in source.outputs:
            raise ValueError(f"{src}: no output {src_port!r}")
        if dst_port not in sink.inputs:
            raise ValueError(f"{dst}: no input {dst_port!r}")
        key = (dst, dst_port)
        if key in self._wires:
            raise ValueError(f"{dst}.{dst_port} already driven")
        self._wires[key] = (src, src_port)
        self._order = None

    def watch(self, block: str, port: str = "out") -> None:
        """Record every sample of ``block.port`` into :attr:`traces`."""
        self.traces[(block, port)] = []

    # -- scheduling ---------------------------------------------------------

    def _schedule(self) -> _t.List[TdfBlock]:
        if self._order is not None:
            return self._order
        for (dst, dst_port) in [
            (name, port)
            for name, block in self.blocks.items()
            for port in block.inputs
        ]:
            if (dst, dst_port) not in self._wires:
                raise ValueError(f"unconnected input {dst}.{dst_port}")
        order: _t.List[TdfBlock] = []
        ready: _t.Set[str] = {
            name
            for name, block in self.blocks.items()
            if getattr(block, "sequential", False) or not block.inputs
        }
        order.extend(
            self.blocks[name] for name in sorted(ready)
        )
        remaining = [
            block for name, block in sorted(self.blocks.items())
            if name not in ready
        ]
        while remaining:
            progress = False
            still = []
            for block in remaining:
                feeders = {
                    self._wires[(block.name, port)][0]
                    for port in block.inputs
                }
                if feeders <= ready:
                    order.append(block)
                    ready.add(block.name)
                    progress = True
                else:
                    still.append(block)
            if not progress:
                raise ValueError(
                    "dataflow cycle without a Delay block: "
                    f"{[b.name for b in still]}"
                )
            remaining = still
        self._order = order
        return order

    def _run(self):
        while True:
            yield self.timestep
            self.step()

    def step(self) -> None:
        """Execute one sample of the whole graph."""
        order = self._schedule()
        for block in order:
            inputs = {
                port: self.values.get(self._wires[(block.name, port)], 0.0)
                for port in block.inputs
            }
            outputs = block.execute(inputs, self.sim.now)
            for port, value in outputs.items():
                self.values[(block.name, port)] = value
                trace = self.traces.get((block.name, port))
                if trace is not None:
                    trace.append(value)
        for block in order:
            if getattr(block, "sequential", False):
                source = self._wires[(block.name, block.inputs[0])]
                block.latch(self.values.get(source, 0.0))
        self.samples += 1

    def value_of(self, block: str, port: str = "out") -> float:
        return self.values.get((block, port), 0.0)
