"""Analog/AMS-lite: timed-dataflow modeling (substrate S12)."""

from .tdf import (
    Adder,
    Comparator,
    Delay,
    Gain,
    LowPass,
    Offset,
    Quantizer,
    Saturation,
    Source,
    TdfBlock,
    TdfGraph,
)

__all__ = [
    "Adder",
    "Comparator",
    "Delay",
    "Gain",
    "LowPass",
    "Offset",
    "Quantizer",
    "Saturation",
    "Source",
    "TdfBlock",
    "TdfGraph",
]
