"""E13 — observability overhead on the Fig. 3 campaign loop.

Tracing is only admissible if it does not distort the experiment it
observes.  This suite prices the three trace modes on the same seeded
CAPS campaign:

* ``off`` — the PR-2 baseline, no recorder armed;
* ``digest`` — bounded rings + event digest riding ``RunOutcome``
  (the always-on candidate; budget: <= 15% runs/s overhead);
* ``full`` — digest plus per-run JSONL spill to disk (the debugging
  mode, priced but not budgeted).

Every run emits ``BENCH_trace.json`` so the overhead trajectory is
tracked across PRs alongside ``BENCH_campaign.json``.
"""
# vp-lint: disable-file=VP005 - benchmark: wall-clock timing is the measurement, not model behavior

import json
import pathlib
import time

from repro.core import RandomStrategy, TraceConfig

from _workloads import airbag_campaign, airbag_space

TRACE_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_trace.json"
RUNS = 40
REPEATS = 3
DIGEST_OVERHEAD_BUDGET = 0.15


def timed_campaign(trace):
    """One seeded CAPS campaign; returns (result, wall_s)."""
    campaign = airbag_campaign()
    campaign.golden()  # prime outside the timed region for every mode
    if trace is not None:
        campaign.golden_signals()  # ditto for the trace reference
    strategy = RandomStrategy(airbag_space(), faults_per_scenario=1)
    start = time.perf_counter()
    result = campaign.run(strategy, runs=RUNS, trace=trace)
    return result, time.perf_counter() - start


def best_rate(trace):
    """Best-of-N runs/s — the repeatable cost, not scheduler noise."""
    best = None
    result = None
    for _ in range(REPEATS):
        result, wall = timed_campaign(trace)
        rate = RUNS / wall
        if best is None or rate > best:
            best = rate
    return result, best


def emit_trace_bench(entries):
    payload = {
        "experiment": "trace_overhead",
        "workload": {"platform": "airbag-normal", "runs": RUNS},
        "budget_digest_overhead": DIGEST_OVERHEAD_BUDGET,
        "modes": entries,
    }
    TRACE_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return TRACE_BENCH_PATH


def test_trace_overhead_json(tmp_path):
    off_result, off_rate = best_rate(None)
    digest_result, digest_rate = best_rate(TraceConfig())
    full_config = TraceConfig(mode="full", spill_dir=str(tmp_path))
    full_result, full_rate = best_rate(full_config)

    # Tracing must be observational: outcomes are untouched.
    assert (
        digest_result.outcome_histogram() == off_result.outcome_histogram()
    )
    assert (
        full_result.outcome_histogram() == off_result.outcome_histogram()
    )
    # Digest mode delivers: every record carries one.
    assert len(digest_result.digests()) == RUNS
    # Full mode spilled one JSONL per run.
    assert len(list(tmp_path.glob("run-*.jsonl"))) >= RUNS

    def entry(mode, rate):
        return {
            "mode": mode,
            "runs_per_s": round(rate, 2),
            "overhead_vs_off": round(off_rate / rate - 1.0, 4),
        }

    entries = [
        entry("off", off_rate),
        entry("digest", digest_rate),
        entry("full", full_rate),
    ]
    path = emit_trace_bench(entries)
    assert path.exists()

    digest_overhead = off_rate / digest_rate - 1.0
    assert digest_overhead <= DIGEST_OVERHEAD_BUDGET, (
        f"digest tracing costs {digest_overhead:.1%} runs/s "
        f"(budget {DIGEST_OVERHEAD_BUDGET:.0%}): "
        f"off {off_rate:.1f}/s vs digest {digest_rate:.1f}/s"
    )


def test_digest_only_campaign_loop(benchmark):
    """pytest-benchmark view of the digest-mode loop, comparable to
    ``test_fig3_campaign_of_20`` (same workload, tracing on)."""

    def run_campaign():
        campaign = airbag_campaign()
        strategy = RandomStrategy(airbag_space(), faults_per_scenario=1)
        return campaign.run(strategy, runs=20, trace=True)

    result = benchmark(run_campaign)
    assert result.runs == 20
    assert len(result.digests()) == 20
    graph = result.propagation()
    benchmark.extra_info["traced_runs"] = graph.runs
    benchmark.extra_info["detection_mechanisms"] = sorted(
        graph.detection_latencies
    )
