"""E6 — cross-layer fault-model accuracy (Cho et al. [40]).

Regenerates the Sec. 3.4 claim that "error injection at high level of
abstraction may result in different results than injecting errors at
the gate level", and that a *derived* fault model closes the gap:

1. **ground truth** — an SEU campaign over every net of a registered
   8-bit adder produces the gate-level word-error profile (masking
   rate, single-bit vs multi-bit patterns);
2. **naive high-level model** — the conventional uniform single bit
   flip: zero masking, never multi-bit;
3. **derived model** — samples patterns from the measured profile.

All three are pushed through the same consumer (a range checker that
flags impossible sums), and the outcome histograms are compared by
total-variation distance: naive is far from the truth, derived is
close — the paper's cross-layer derivation in one number.
"""

import random

import pytest

from repro.core import (
    derived_descriptor,
    error_pattern_outcomes,
    naive_descriptor,
    normalize_counts,
    pattern_histogram,
    total_variation_distance,
)
from repro.gate import registered_adder, run_campaign

from _workloads import adder_vectors

WIDTH = 8


def gate_truth(engine="vector"):
    """The gate-level SEU ground truth, produced by the E17 vector
    engine by default — byte-identical to the scalar engine (pinned
    below), just cheap enough to recompute per test."""
    circuit = registered_adder(WIDTH)
    profile, _ = run_campaign(
        circuit,
        output_bus="out",
        vector_source=adder_vectors(circuit),
        kinds=("seu",),
        runs_per_site=3,
        seed=17,
        engine=engine,
    )
    return profile


def test_gate_truth_engine_equivalence():
    """The derivation below is engine-agnostic: scalar and vector
    campaigns produce byte-identical word-error profiles."""
    assert gate_truth("scalar").canonical() == gate_truth("vector").canonical()


def consumer_outcome(pattern: int) -> str:
    """How the downstream logic experiences a given error pattern.

    A plausibility check catches corruptions touching the high nibble
    (impossible jumps in the physical quantity); low-bit noise passes
    silently (SDC).
    """
    if pattern == 0:
        return "masked"
    if pattern >> 4:
        return "detected"
    return "sdc"


def test_gate_truth_profile(benchmark):
    profile = benchmark(gate_truth)
    shape = pattern_histogram(profile)
    benchmark.extra_info["profile"] = {
        key: round(value, 3) for key, value in shape.items()
    }
    # Gate-level reality: a large fraction of SEUs are logically
    # masked, and carry-chain upsets make multi-bit patterns common.
    assert shape["masked"] > 0.2
    assert shape["multi_bit"] > 0.05


def test_model_accuracy_shape(benchmark):
    profile = gate_truth()
    truth = error_pattern_outcomes(profile, consumer_outcome)

    naive = naive_descriptor("naive", width=WIDTH)
    derived = derived_descriptor("derived", profile)

    rng = random.Random(5)

    def simulate_model(descriptor, samples=2000):
        import collections

        counts = collections.Counter()
        model_profile = descriptor.params["profile"]
        for _ in range(samples):
            pattern = model_profile.sample_pattern(rng)
            counts[consumer_outcome(pattern or 0)] += 1
        return normalize_counts(counts)

    naive_hist = simulate_model(naive)
    derived_hist = benchmark(simulate_model, derived)

    naive_distance = total_variation_distance(truth, naive_hist)
    derived_distance = total_variation_distance(truth, derived_hist)
    benchmark.extra_info["tv_distance_naive"] = round(naive_distance, 3)
    benchmark.extra_info["tv_distance_derived"] = round(derived_distance, 3)
    benchmark.extra_info["truth"] = {
        key: round(value, 3) for key, value in truth.items()
    }
    benchmark.extra_info["naive"] = {
        key: round(value, 3) for key, value in naive_hist.items()
    }

    # Paper shape ([40]): the naive high-level model misestimates the
    # outcome distribution substantially; the derived model tracks it.
    assert naive_distance > 0.15
    assert derived_distance < naive_distance / 3


def test_derived_model_rejects_empty_profile():
    from repro.gate.faults import WordErrorProfile

    with pytest.raises(ValueError):
        derived_descriptor("empty", WordErrorProfile())
