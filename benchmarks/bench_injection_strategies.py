"""E5 — Monte Carlo vs coverage-guided vs weak-spot injection.

Regenerates the Sec. 3.4 argument: "Standard Monte-Carlo techniques
may fail to identify the critical error effects leading to system
failure because failure probabilities are extremely low ... a
systematic approach is required that stresses the system at its
possible weak spots."

The protected CAPS platform only fails hazardously under a *double*
sensor fault driving both redundant channels high together.  Each
strategy gets the same per-run budget (two faults per scenario) and we
measure **runs to first hazard** over several seeds:

* random Monte Carlo usually burns the whole budget without a hazard;
* coverage-guided closes the fault space but doesn't seek severity;
* the weak-spot strategy learns that the sensor front-ends react and
  combines them — finding the hazard within a few dozen runs.
"""

import pytest

from repro.core import (
    CoverageGuidedStrategy,
    FaultSpaceCoverage,
    Outcome,
    RandomStrategy,
    WeakSpotStrategy,
)

from _workloads import airbag_campaign, airbag_space

RUN_BUDGET = 60
SEEDS = [11, 22, 33]


def make_strategy(name: str, space, coverage):
    if name == "random":
        return RandomStrategy(space, faults_per_scenario=2)
    if name == "coverage_guided":
        return CoverageGuidedStrategy(space, coverage, faults_per_scenario=2)
    if name == "weak_spot":
        return WeakSpotStrategy(
            space, faults_per_scenario=2, exploration=0.2
        )
    raise ValueError(name)


def hazard_search(name: str, seed: int, backend="serial", batch_size=None):
    """One bounded hazard hunt; returns the CampaignResult."""
    campaign = airbag_campaign(seed=seed)
    space = airbag_space(padded=True)
    coverage = FaultSpaceCoverage(space)
    strategy = make_strategy(name, space, coverage)
    return campaign.run(
        strategy, runs=RUN_BUDGET, coverage=coverage,
        stop_on=Outcome.HAZARDOUS,
        backend=backend, batch_size=batch_size,
    )


def runs_to_first_hazard(name: str, seed: int) -> int:
    """RUN_BUDGET+1 when the strategy never found the hazard."""
    result = hazard_search(name, seed)
    first = result.first_run_with(Outcome.HAZARDOUS)
    return first if first is not None else RUN_BUDGET + 1


@pytest.mark.parametrize("name", ["random", "coverage_guided", "weak_spot"])
def test_strategy_cost(benchmark, name):
    costs = benchmark(
        lambda: [runs_to_first_hazard(name, seed) for seed in SEEDS]
    )
    benchmark.extra_info["runs_to_first_hazard"] = costs
    benchmark.extra_info["found"] = sum(c <= RUN_BUDGET for c in costs)
    benchmark.extra_info["kernel"] = (
        hazard_search(name, SEEDS[0]).report().get("kernel")
    )


def test_strategy_batched_feedback_consistency(benchmark):
    """Batched feedback (the parallel-backend granularity) must not
    change what the adaptive search finds — only when it learns.  Same
    seed, same batch size: the weak-spot hunt lands on the same first
    hazard whether feedback arrives per batch on the serial or the
    pooled backend."""
    import os

    batched = benchmark(
        lambda: hazard_search(
            "weak_spot", SEEDS[0], batch_size=6
        ).first_run_with(Outcome.HAZARDOUS)
    )
    if (os.cpu_count() or 1) >= 2:
        pooled = hazard_search(
            "weak_spot", SEEDS[0], backend="parallel", batch_size=6
        ).first_run_with(Outcome.HAZARDOUS)
        assert pooled == batched
    benchmark.extra_info["first_hazard_batched"] = batched


def test_strategy_shape(benchmark):
    """The headline comparison: weak-spot beats Monte Carlo decisively."""
    costs = {
        name: [runs_to_first_hazard(name, seed) for seed in SEEDS]
        for name in ("random", "coverage_guided", "weak_spot")
    }
    benchmark(lambda: runs_to_first_hazard("weak_spot", SEEDS[0]))
    mean = {name: sum(c) / len(c) for name, c in costs.items()}
    benchmark.extra_info["mean_runs_to_hazard"] = {
        name: round(value, 1) for name, value in mean.items()
    }
    # Shape: the adaptive strategy finds the hazard within budget on
    # every seed, and on average far faster than plain Monte Carlo.
    assert all(c <= RUN_BUDGET for c in costs["weak_spot"])
    assert mean["weak_spot"] < mean["random"]
