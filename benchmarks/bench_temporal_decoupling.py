"""E4 — temporal decoupling: speed vs timing accuracy against quantum.

Regenerates the Sec. 3.4 claim that "synchronization poses an extreme
overhead ... approaches are required that increase simulation
performance ... e.g., by temporal decoupling".  A multi-initiator
platform (four loosely-timed CPUs hammering one memory) is simulated
at quanta from 10 to 100,000 time units:

* wall-clock time falls with the quantum (fewer kernel syncs);
* *timing accuracy* degrades: a watchdog-style observer samples bus
  traffic each 1,000 units, and with large quanta transactions bunch
  at quantum boundaries, so the observer's per-window counts drift
  from the cycle-faithful reference.

The crossover — how much quantum you can afford before the analysis
degrades — is exactly the engineering trade the paper describes.
"""

import pytest

from repro.hw import Memory, Vp16Cpu, assemble
from repro.kernel import Module, Simulator
from repro.tlm import Router

WORKER = """
        ldi  r1, 0x200
        ldi  r2, 0
        ldi  r3, 200
    loop:
        ld   r4, r1, 0
        addi r4, r4, 1
        st   r1, r4, 0
        addi r2, r2, 1
        bne  r2, r3, loop
        halt
"""


def build(quantum: int):
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=5)
    mem = Memory("mem", parent=top, size=4096, read_latency=10, write_latency=10)
    router.map_target(0x0, 4096, mem.tsock)
    program = assemble(WORKER)
    mem.load(0, program.image)
    cpus = []
    for index in range(4):
        cpu = Vp16Cpu(
            f"cpu{index}", parent=top, clock_period=10, quantum=quantum
        )
        cpu.isock.bind(router.tsock)
        cpu.start(pc=0)
        cpus.append(cpu)
    # Observer: samples memory write counter each 1000 units.
    samples = []

    def observer():
        while True:
            yield 1000
            samples.append(mem.writes)

    top.process(observer(), name="observer")
    return sim, top, mem, cpus, samples


def run_with_quantum(quantum: int):
    sim, top, mem, cpus, samples = build(quantum)
    sim.run(until=150_000)
    syncs = sum(cpu.qk.sync_count for cpu in cpus)
    return samples, syncs, mem.writes


QUANTA = [10, 100, 1_000, 10_000, 100_000]


@pytest.mark.parametrize("quantum", QUANTA)
def test_quantum_sweep(benchmark, quantum):
    samples, syncs, writes = benchmark(run_with_quantum, quantum)
    assert writes == 4 * 200  # functional result identical at any quantum
    benchmark.extra_info["kernel_syncs"] = syncs


def test_decoupling_shape(benchmark):
    """Syncs fall with quantum; observer accuracy degrades."""
    reference, ref_syncs, _ = run_with_quantum(10)
    results = {}
    for quantum in QUANTA:
        samples, syncs, writes = run_with_quantum(quantum)
        # Timing error: mean absolute difference of the observer's
        # per-window progression vs the near-cycle-accurate reference.
        error = sum(
            abs(a - b) for a, b in zip(samples, reference)
        ) / max(len(reference), 1)
        results[quantum] = {"syncs": syncs, "timing_error": round(error, 1)}
    benchmark(run_with_quantum, 1_000)  # headline series
    benchmark.extra_info["sweep"] = {str(q): r for q, r in results.items()}

    syncs_series = [results[q]["syncs"] for q in QUANTA]
    error_series = [results[q]["timing_error"] for q in QUANTA]
    # Shape: kernel synchronisations strictly fall with quantum ...
    assert all(a >= b for a, b in zip(syncs_series, syncs_series[1:]))
    assert syncs_series[0] > 10 * syncs_series[-1]
    # ... while the observer's timing error grows.
    assert error_series[-1] > error_series[0]
