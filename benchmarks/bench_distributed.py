"""Distributed-backend throughput — the ``BENCH_distributed.json``
emitter (E19).

The loopback :class:`~repro.distributed.LocalCluster` runs the exact
coordinator/worker protocol a multi-host fleet would, so its
runs-per-second row is the honest lower bound on what distribution
buys: real subprocesses, real sockets, JSON frames, per-worker shard
journals.  Two rows:

* ``serial`` — the in-process reference loop on the same spec stream;
* ``distributed`` — a 4-worker loopback cluster, attempted when the
  host can make it meaningful (>= 2 CPUs or ``REPRO_FORCE_POOL=1``)
  and recorded as an explicit ``skipped: single-cpu`` row otherwise.

Content before cost, as everywhere in this suite: the distributed
histogram and matched-rule stream must equal serial's before a
throughput number is recorded.  ``REPRO_DIST_BENCH_RUNS`` shrinks the
campaign for CI smoke runs.
"""

import os

import pytest

from _workloads import (
    CPUS,
    POOL_OK,
    campaign_bench_entry,
    emit_distributed_bench,
    skipped_entry,
    timed_campaign,
    timed_distributed_campaign,
)

DIST_RUNS = int(os.environ.get("REPRO_DIST_BENCH_RUNS", "240"))
DIST_WORKERS = 4
ACCEPT_RUNS = 480


def test_distributed_backend_throughput_json():
    """Emit BENCH_distributed.json: serial vs 4-worker loopback."""
    serial, serial_wall = timed_campaign(
        "serial", runs=DIST_RUNS, batch_size=DIST_RUNS
    )
    entries = [campaign_bench_entry("serial", serial, serial_wall, 1)]
    assert entries[0]["robustness"]["completed"] == serial.runs
    if POOL_OK:
        distributed, dist_wall = timed_distributed_campaign(
            DIST_RUNS, workers=DIST_WORKERS
        )
        assert distributed.outcome_histogram() == serial.outcome_histogram()
        assert [r.matched_rules for r in distributed.records] == [
            r.matched_rules for r in serial.records
        ]
        entries.append(
            campaign_bench_entry(
                "distributed", distributed, dist_wall, DIST_WORKERS
            )
        )
    else:
        entries.append(skipped_entry("distributed", "single-cpu"))
    path = emit_distributed_bench(entries)
    assert path.exists()


@pytest.mark.skipif(
    CPUS < DIST_WORKERS,
    reason=f"speedup acceptance needs >= {DIST_WORKERS} CPUs",
)
def test_distributed_speedup_acceptance():
    """>= 2x runs/sec on a 4-worker loopback cluster, identical
    results run for run."""
    serial, serial_wall = timed_campaign(
        "serial", runs=ACCEPT_RUNS, batch_size=ACCEPT_RUNS
    )
    distributed, dist_wall = timed_distributed_campaign(
        ACCEPT_RUNS, workers=DIST_WORKERS
    )
    assert distributed.outcome_histogram() == serial.outcome_histogram()
    assert [r.matched_rules for r in distributed.records] == [
        r.matched_rules for r in serial.records
    ]
    serial_rate = ACCEPT_RUNS / serial_wall
    dist_rate = ACCEPT_RUNS / dist_wall
    assert dist_rate >= 2.0 * serial_rate, (
        f"distributed {dist_rate:.1f} runs/s vs serial "
        f"{serial_rate:.1f} runs/s"
    )
