"""E2 (Fig. 3) — the closed-loop error effect simulation.

Regenerates the paper's Fig. 3 architecture as a running artifact: the
stressor injects scenario faults through the injectors into the CAPS
virtual prototype, the run is classified against the golden reference,
and coverage is updated.  Benchmarked quantities:

* one full loop iteration (scenario -> simulate -> classify), the
  quantity that bounds campaign throughput;
* a 20-run campaign including coverage update and strategy feedback;
* the serial-vs-parallel backend comparison: the same seeded campaign
  through the planner/executor split, fanned over a process pool —
  the lever the paper names when it calls simulation speed the limit
  of quantitative evaluation.

``extra_info`` records the outcome distribution — the quantitative
evaluation the paper says repeated stress tests enable — and the
backend comparison lands in ``BENCH_campaign.json`` so the speedup
trajectory is tracked across PRs.
"""

import os
import time

import pytest

from repro.core import (
    FaultSpaceCoverage,
    Outcome,
    RandomStrategy,
)

from _workloads import (
    airbag_campaign,
    airbag_space,
    campaign_bench_entry,
    emit_campaign_bench,
)

CPUS = os.cpu_count() or 1
SPEEDUP_RUNS = 160
SPEEDUP_WORKERS = 4
SPEEDUP_BATCH = 16


def test_fig3_single_loop_iteration(benchmark):
    campaign = airbag_campaign()
    campaign.golden()  # prime the cache: measure the loop, not setup
    space = airbag_space()
    strategy = RandomStrategy(space, faults_per_scenario=1)
    import random

    rng = random.Random(0)
    scenarios = [strategy.next_scenario(rng) for _ in range(200)]
    state = {"i": 0}

    def one_iteration():
        scenario = scenarios[state["i"] % len(scenarios)]
        state["i"] += 1
        return campaign.execute_scenario(scenario, run_seed=state["i"])

    outcome, labels, obs, applied = benchmark(one_iteration)
    assert applied >= 1


def test_fig3_campaign_of_20(benchmark):
    def run_campaign():
        campaign = airbag_campaign()
        space = airbag_space()
        coverage = FaultSpaceCoverage(space)
        strategy = RandomStrategy(space, faults_per_scenario=1)
        result = campaign.run(strategy, runs=20, coverage=coverage)
        return result, coverage

    result, coverage = benchmark(run_campaign)
    assert result.runs == 20
    # Single faults never violate the safety goal on this platform.
    assert result.count(Outcome.HAZARDOUS) == 0
    histogram = result.outcome_histogram()
    benchmark.extra_info["outcomes"] = {
        outcome.name: count for outcome, count in histogram.items() if count
    }
    benchmark.extra_info["fault_space_closure"] = round(coverage.closure, 2)
    benchmark.extra_info["kernel"] = result.report().get("kernel")


def test_fig3_deadline_check_overhead(benchmark):
    """The per-run wall-clock deadline is enforced inside the kernel
    loop (a ``perf_counter`` check every 256 process steps), so armed
    campaigns pay a small per-run tax even when no run times out.
    This benchmark keeps that tax visible: it is the same 20-run
    campaign as above, but with a deadline armed that never fires."""

    def run_campaign():
        campaign = airbag_campaign()
        strategy = RandomStrategy(airbag_space(), faults_per_scenario=1)
        return campaign.run(strategy, runs=20, run_timeout_s=60.0)

    result = benchmark(run_campaign)
    assert result.runs == 20
    # The deadline must never fire on this workload: any timed-out run
    # here means the checker is broken, not the platform slow.
    assert result.timed_out == 0 and result.terminally_failed == 0
    benchmark.extra_info["robustness"] = result.report().get(
        "robustness", {"completed": result.runs}
    )


def timed_campaign(backend, runs, workers=None):
    """One seeded CAPS campaign on *backend*; returns (result, wall)."""
    campaign = airbag_campaign()
    campaign.golden()  # prime outside the timed region on both sides
    strategy = RandomStrategy(airbag_space(), faults_per_scenario=2)
    start = time.perf_counter()
    result = campaign.run(
        strategy, runs=runs, backend=backend, workers=workers,
        batch_size=SPEEDUP_BATCH,
    )
    return result, time.perf_counter() - start


def test_fig3_backend_throughput_json():
    """Emit BENCH_campaign.json on every bench run (serial always;
    parallel when the host has more than one CPU)."""
    serial, serial_wall = timed_campaign("serial", runs=40)
    entries = [campaign_bench_entry("serial", serial, serial_wall, 1)]
    # Clean campaigns must account every run as completed — a silent
    # timeout would inflate runs/sec while degrading the result.
    assert entries[0]["robustness"]["completed"] == serial.runs
    if CPUS >= 2:
        workers = min(SPEEDUP_WORKERS, CPUS)
        parallel, parallel_wall = timed_campaign(
            "parallel", runs=40, workers=workers
        )
        entries.append(
            campaign_bench_entry("parallel", parallel, parallel_wall, workers)
        )
        assert (
            parallel.outcome_histogram() == serial.outcome_histogram()
        )
    path = emit_campaign_bench(entries)
    assert path.exists()


@pytest.mark.skipif(
    CPUS < SPEEDUP_WORKERS,
    reason=f"speedup acceptance needs >= {SPEEDUP_WORKERS} CPUs",
)
def test_fig3_parallel_speedup_acceptance():
    """>= 2x runs/sec on 4 workers at >= 120 runs, identical results."""
    serial, serial_wall = timed_campaign("serial", runs=SPEEDUP_RUNS)
    parallel, parallel_wall = timed_campaign(
        "parallel", runs=SPEEDUP_RUNS, workers=SPEEDUP_WORKERS
    )
    assert parallel.outcome_histogram() == serial.outcome_histogram()
    assert [r.matched_rules for r in parallel.records] == [
        r.matched_rules for r in serial.records
    ]
    serial_rate = SPEEDUP_RUNS / serial_wall
    parallel_rate = SPEEDUP_RUNS / parallel_wall
    emit_campaign_bench([
        campaign_bench_entry("serial", serial, serial_wall, 1),
        campaign_bench_entry(
            "parallel", parallel, parallel_wall, SPEEDUP_WORKERS
        ),
    ])
    assert parallel_rate >= 2.0 * serial_rate, (
        f"parallel {parallel_rate:.1f} runs/s vs serial "
        f"{serial_rate:.1f} runs/s"
    )
