"""E2 (Fig. 3) — the closed-loop error effect simulation.

Regenerates the paper's Fig. 3 architecture as a running artifact: the
stressor injects scenario faults through the injectors into the CAPS
virtual prototype, the run is classified against the golden reference,
and coverage is updated.  Benchmarked quantities:

* one full loop iteration (scenario -> simulate -> classify), the
  quantity that bounds campaign throughput;
* a 20-run campaign including coverage update and strategy feedback;
* the always-armed deadline checker's overhead.

``extra_info`` records the outcome distribution — the quantitative
evaluation the paper says repeated stress tests enable.  The backend
comparison (serial warm/fresh, parallel chunked) lives in
``bench_campaign.py``, which emits ``BENCH_campaign.json`` so the
speedup trajectory is tracked across PRs.
"""

from repro.core import (
    FaultSpaceCoverage,
    Outcome,
    RandomStrategy,
)

from _workloads import (
    airbag_campaign,
    airbag_space,
)


def test_fig3_single_loop_iteration(benchmark):
    campaign = airbag_campaign()
    campaign.golden()  # prime the cache: measure the loop, not setup
    space = airbag_space()
    strategy = RandomStrategy(space, faults_per_scenario=1)
    import random

    rng = random.Random(0)
    scenarios = [strategy.next_scenario(rng) for _ in range(200)]
    state = {"i": 0}

    def one_iteration():
        scenario = scenarios[state["i"] % len(scenarios)]
        state["i"] += 1
        return campaign.execute_scenario(scenario, run_seed=state["i"])

    outcome, labels, obs, applied = benchmark(one_iteration)
    assert applied >= 1


def test_fig3_campaign_of_20(benchmark):
    def run_campaign():
        campaign = airbag_campaign()
        space = airbag_space()
        coverage = FaultSpaceCoverage(space)
        strategy = RandomStrategy(space, faults_per_scenario=1)
        result = campaign.run(strategy, runs=20, coverage=coverage)
        return result, coverage

    result, coverage = benchmark(run_campaign)
    assert result.runs == 20
    # Single faults never violate the safety goal on this platform.
    assert result.count(Outcome.HAZARDOUS) == 0
    histogram = result.outcome_histogram()
    benchmark.extra_info["outcomes"] = {
        outcome.name: count for outcome, count in histogram.items() if count
    }
    benchmark.extra_info["fault_space_closure"] = round(coverage.closure, 2)
    benchmark.extra_info["kernel"] = result.report().get("kernel")


def test_fig3_deadline_check_overhead(benchmark):
    """The per-run wall-clock deadline is enforced inside the kernel
    loop (a ``perf_counter`` check every 256 process steps), so armed
    campaigns pay a small per-run tax even when no run times out.
    This benchmark keeps that tax visible: it is the same 20-run
    campaign as above, but with a deadline armed that never fires."""

    def run_campaign():
        campaign = airbag_campaign()
        strategy = RandomStrategy(airbag_space(), faults_per_scenario=1)
        return campaign.run(strategy, runs=20, run_timeout_s=60.0)

    result = benchmark(run_campaign)
    assert result.runs == 20
    # The deadline must never fire on this workload: any timed-out run
    # here means the checker is broken, not the platform slow.
    assert result.timed_out == 0 and result.terminally_failed == 0
    benchmark.extra_info["robustness"] = result.report().get(
        "robustness", {"completed": result.runs}
    )
