"""Risk-engine throughput — the ``BENCH_risk.json`` emitter (E18).

The Monte Carlo risk engine pays two costs on top of a plain campaign:
per-sample environment drawing (Cholesky-correlated trajectories plus
the per-sample Fig. 2 stressor re-derivation) and the report fold
(interval pairs, tail metrics, ASIL gates).  This suite measures the
1k-sample mission campaign on the backends that matter:

* ``serial`` — per-run execution of the sampled stream;
* ``fork`` — the same stream through snapshot-fork groups (the
  sampled strategy pins the injection instant, so whole batches share
  one fault-free prefix exactly like the plain fork workload);
* ``parallel`` — the process pool, attempted when the host can make
  it meaningful (>= 2 CPUs or ``REPRO_FORCE_POOL=1``) and recorded as
  an explicit ``skipped`` row otherwise.

Every emission re-checks the content contract before writing numbers:
all measured backends must produce byte-identical
``RiskReport.canonical()`` output, whose sha is committed alongside
the throughput rows.  ``REPRO_RISK_BENCH_RUNS`` shrinks the campaign
for CI smoke runs.
"""

import hashlib
import os

from _workloads import (
    CPUS,
    POOL_OK,
    campaign_bench_entry,
    emit_risk_bench,
    skipped_entry,
    timed_risk_campaign,
)

RISK_RUNS = int(os.environ.get("REPRO_RISK_BENCH_RUNS", "1000"))
PARALLEL_WORKERS = min(4, max(2, CPUS))


def _entry(label, result, wall, workers, report_wall):
    entry = campaign_bench_entry(label, result, wall, workers)
    entry["report_s"] = round(report_wall, 4)
    return entry


def test_risk_engine_throughput_json():
    """Emit BENCH_risk.json: 1k-sample serial vs fork (+ parallel)."""
    serial_report, serial, serial_wall, serial_report_wall = (
        timed_risk_campaign(RISK_RUNS, fork=False)
    )
    fork_report, forked, fork_wall, fork_report_wall = timed_risk_campaign(
        RISK_RUNS, fork=True
    )
    # Content before cost: the fork fast path must be invisible in the
    # folded report, byte for byte, before its speedup is recorded.
    assert serial_report.canonical() == fork_report.canonical()
    entries = [
        _entry("serial", serial, serial_wall, 1, serial_report_wall),
        _entry("fork", forked, fork_wall, 1, fork_report_wall),
    ]
    assert entries[0]["robustness"]["completed"] == serial.runs
    if POOL_OK:
        pool_report, pooled, pool_wall, pool_report_wall = (
            timed_risk_campaign(
                RISK_RUNS, backend="parallel", workers=PARALLEL_WORKERS
            )
        )
        assert pool_report.canonical() == serial_report.canonical()
        entries.append(
            _entry(
                "parallel", pooled, pool_wall, PARALLEL_WORKERS,
                pool_report_wall,
            )
        )
    else:
        entries.append(skipped_entry("parallel", "single-cpu"))
    sha = hashlib.sha256(
        serial_report.canonical().encode()
    ).hexdigest()[:16]
    path = emit_risk_bench(entries, report_sha=sha)
    assert path.exists()


def test_risk_fork_speedup_acceptance():
    """Snapshot-fork must still pay off under per-sample derivation.

    The sampled strategy does strictly more planning work per run than
    the plain prefix workload; the acceptance floor is therefore lower
    than the raw fork bound (3x) but must stay clearly above break-even
    — a regression that made sampling dominate execution shows up here.
    """
    runs = min(RISK_RUNS, 256)
    _, _, serial_wall, _ = timed_risk_campaign(runs, fork=False)
    _, _, fork_wall, _ = timed_risk_campaign(runs, fork=True)
    speedup = serial_wall / fork_wall
    assert speedup >= 1.5, (
        f"risk fork speedup {speedup:.2f}x over {runs} runs"
    )


def test_risk_repeat_emission_is_byte_identical():
    """Same seeds, same canonical report — the determinism contract
    holds at bench scale, not just at the test suite's 24 runs."""
    runs = min(RISK_RUNS, 200)
    first, _, _, _ = timed_risk_campaign(runs, fork=False)
    second, _, _, _ = timed_risk_campaign(runs, fork=False)
    assert first.canonical() == second.canonical()
