"""E9 — "The right value at the wrong time can still be an error."

Regenerates the Sec. 3.4 timing criterion on the ACC platform: faults
are swept over two classes —

* **value-class** (sensor front-end drifts, CAN corruption) and
* **timing-class** (error-correction overhead injected into the RTOS
  control task, modeling retries/recovery).

The benchmark records how the classifier splits outcomes: the
timing-class faults produce deadline misses and late braking with
*correct* final values, a failure mode invisible to any purely
value-based check — the reason VP safety evaluation must simulate time
and concurrency (kernel + RTOS substrates, not instruction counting).
"""

import pytest

from repro.core import (
    Campaign,
    ErrorScenario,
    Outcome,
    PlannedInjection,
)
from repro.faults import (
    CAN_BIT_CORRUPTION,
    RECOVERY_OVERHEAD,
    SENSOR_OFFSET_DRIFT,
)
from repro.kernel import simtime
from repro.platforms import acc


def make_campaign(seed=3) -> Campaign:
    return Campaign(
        platform_factory=acc.build_acc,
        observe=acc.observe,
        classifier=acc.acc_classifier(),
        duration=acc.DEFAULT_DURATION,
        seed=seed,
    )


def overhead_scenario(repeats: int, extra: int) -> ErrorScenario:
    return ErrorScenario(
        "overheads",
        [
            PlannedInjection(
                simtime.ms(40 + 20 * i),
                "acc.actuator_ecu.os.sched",
                RECOVERY_OVERHEAD.with_params(task="control", extra=extra),
            )
            for i in range(repeats)
        ],
    )


def test_timing_fault_run(benchmark):
    campaign = make_campaign()
    campaign.golden()
    scenario = overhead_scenario(repeats=10, extra=simtime.ms(18))

    outcome, labels, obs, _ = benchmark(
        campaign.execute_scenario, scenario, 1
    )
    # The value is right (full braking) but the deadlines are not.
    assert outcome is Outcome.TIMING_FAILURE
    assert obs["final_pressure"] == campaign.golden()["final_pressure"]
    assert obs["deadline_misses"] > 0
    benchmark.extra_info["deadline_misses"] = obs["deadline_misses"]
    benchmark.extra_info["worst_response_us"] = (
        obs["worst_control_response"] // 1000
    )


@pytest.mark.parametrize("extra_ms", [5, 18, 40])
def test_overhead_severity_sweep(benchmark, extra_ms):
    """Overhead below the deadline slack is absorbed; above, it fails."""
    campaign = make_campaign()
    campaign.golden()
    scenario = overhead_scenario(repeats=10, extra=simtime.ms(extra_ms))
    outcome, labels, obs, _ = benchmark(
        campaign.execute_scenario, scenario, 1
    )
    benchmark.extra_info["outcome"] = outcome.name
    if extra_ms == 5:
        # 2 ms wcet + 5 ms extra < 15 ms deadline: absorbed.
        assert outcome in (Outcome.NO_EFFECT, Outcome.MASKED)
    else:
        assert outcome is Outcome.TIMING_FAILURE


def test_value_vs_timing_split(benchmark):
    """The headline table: outcome classes per fault class."""
    campaign = make_campaign()
    campaign.golden()

    value_class = [
        ErrorScenario(
            "drift",
            [
                PlannedInjection(
                    simtime.ms(30), "acc.sensor_ecu.radar.frontend",
                    SENSOR_OFFSET_DRIFT.with_params(offset=-15.0),
                )
            ],
        ),
        ErrorScenario(
            "wire",
            [
                PlannedInjection(
                    simtime.ms(90), "acc.can0.wire", CAN_BIT_CORRUPTION
                )
            ],
        ),
    ]
    timing_class = [
        overhead_scenario(repeats=8, extra=simtime.ms(17)),
        overhead_scenario(repeats=12, extra=simtime.ms(25)),
    ]

    def classify_all():
        outcomes = {}
        for index, scenario in enumerate(value_class + timing_class):
            outcome, *_ = campaign.execute_scenario(scenario, run_seed=index)
            outcomes[f"{scenario.name}_{index}"] = outcome
        return outcomes

    outcomes = benchmark(classify_all)
    benchmark.extra_info["outcomes"] = {
        name: outcome.name for name, outcome in outcomes.items()
    }
    timing_outcomes = [
        outcome
        for name, outcome in outcomes.items()
        if name.startswith("overheads")
    ]
    # Shape: every timing-class fault lands in TIMING_FAILURE, and no
    # value-class fault does.
    assert all(o is Outcome.TIMING_FAILURE for o in timing_outcomes)
    assert all(
        o is not Outcome.TIMING_FAILURE
        for name, o in outcomes.items()
        if not name.startswith("overheads")
    )
