"""E12 (ablation/extension) — measured diagnostic coverage of lockstep.

FMEDA needs a diagnostic-coverage number for every safety mechanism;
the paper's point is that VP campaigns can *measure* it instead of
estimating.  This bench does exactly that for dual-core lockstep:

* the same summation program runs on a single vp16 core and on a
  :class:`~repro.hw.LockstepCpuPair`;
* identical GPR-SEU campaigns (random register/bit/time) run against
  both configurations;
* diagnostic coverage = detected / (detected + silent corruptions).

Expected shape: the single core only catches upsets that happen to
cause traps (illegal opcodes after PC corruption etc.), so most
corruptions are silent; the lockstep comparator converts nearly all of
them into detections — at the classic price that common-mode faults
stay invisible (asserted too).
"""

import random

import pytest

from repro.hw import LockstepCpuPair, Memory, Vp16Cpu, assemble
from repro.kernel import Module, Simulator
from repro.tlm import Router

PROGRAM = assemble(
    """
        ldi  r1, 0
        ldi  r2, 100
    loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """
)
GOLDEN = sum(range(1, 101))
RUNS = 60
#: Injection window inside the ~7.5 us execution.
WINDOW = (1_000, 6_000)


def run_single_core(inject) -> str:
    """Returns 'detected' | 'sdc' | 'no_effect'."""
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096, read_latency=2, write_latency=2)
    router.map_target(0x0, 4096, mem.tsock)
    cpu = Vp16Cpu("cpu", parent=top, clock_period=10, max_instructions=50_000)
    cpu.isock.bind(router.tsock)
    mem.load(0, PROGRAM.image)
    cpu.start(pc=0)

    def injector():
        time, reg, bit = inject
        yield time
        cpu.injection_points["arch"].flip_reg(reg, bit)

    sim.spawn(injector())  # vp-lint: disable=VP002 - one-shot bench kernel, never warm-reused
    sim.run(until=10_000_000)
    if cpu.trap_cause is not None:
        return "detected"
    if cpu.regs[1] != GOLDEN:
        return "sdc"
    return "no_effect"


def run_lockstep(inject, common_mode: bool = False) -> str:
    sim = Simulator()
    top = Module("top", sim=sim)
    pair = LockstepCpuPair(
        "pair", parent=top, image=PROGRAM.image, compare_interval=500,
        max_instructions=50_000,
    )
    pair.start(pc=0)

    def injector():
        time, reg, bit = inject
        yield time
        targets = pair.cores if common_mode else [pair.cores[0]]
        for core in targets:
            core.injection_points["arch"].flip_reg(reg, bit)

    sim.spawn(injector())  # vp-lint: disable=VP002 - one-shot bench kernel, never warm-reused
    sim.run(until=10_000_000)
    if pair.halted_on_mismatch or any(
        core.trap_cause is not None for core in pair.cores
    ):
        return "detected"
    if pair.cores[0].regs[1] != GOLDEN:
        return "sdc"
    return "no_effect"


def campaign(runner, seed=31, **kwargs):
    rng = random.Random(seed)
    outcomes = {"detected": 0, "sdc": 0, "no_effect": 0}
    for _ in range(RUNS):
        inject = (
            rng.randrange(*WINDOW),
            rng.randrange(1, 4),  # the live registers r1..r3
            rng.randrange(16),
        )
        outcomes[runner(inject, **kwargs)] += 1
    return outcomes


def coverage_of(outcomes) -> float:
    effective = outcomes["detected"] + outcomes["sdc"]
    return outcomes["detected"] / effective if effective else 1.0


def test_single_core_campaign(benchmark):
    outcomes = benchmark.pedantic(
        campaign, args=(run_single_core,), rounds=1, iterations=1
    )
    benchmark.extra_info["outcomes"] = outcomes
    benchmark.extra_info["diagnostic_coverage"] = round(
        coverage_of(outcomes), 3
    )


def test_lockstep_campaign(benchmark):
    outcomes = benchmark.pedantic(
        campaign, args=(run_lockstep,), rounds=1, iterations=1
    )
    benchmark.extra_info["outcomes"] = outcomes
    benchmark.extra_info["diagnostic_coverage"] = round(
        coverage_of(outcomes), 3
    )


def test_lockstep_coverage_shape(benchmark):
    single = campaign(run_single_core)
    lockstep = campaign(run_lockstep)
    common = campaign(run_lockstep, common_mode=True)
    benchmark.pedantic(
        campaign, args=(run_lockstep,), rounds=1, iterations=1
    )
    single_dc = coverage_of(single)
    lockstep_dc = coverage_of(lockstep)
    common_dc = coverage_of(common)
    benchmark.extra_info["dc_single"] = round(single_dc, 3)
    benchmark.extra_info["dc_lockstep"] = round(lockstep_dc, 3)
    benchmark.extra_info["dc_common_mode"] = round(common_dc, 3)
    # Shape: lockstep converts silent corruptions into detections...
    assert lockstep_dc > single_dc + 0.3
    assert lockstep_dc > 0.9
    # ...except for common-mode faults, its textbook blind spot.
    assert common_dc < 0.5
