"""E1 (Fig. 2) — mission-profile flow through the supply chain.

Regenerates the paper's Fig. 2 pipeline: an OEM vehicle profile is
refined to a Tier-1 ECU profile and a semiconductor-level profile,
fault/error descriptions are derived at every level, and a stressor
specification is produced.  The benchmark measures the whole
formalisation pipeline; ``extra_info`` records the derived-rate shape
the paper's Sec. 3.2 example predicts (vibration accelerates wiring
faults far more than temperature accelerates SEUs).
"""

import random
import typing as _t

import pytest

from repro.faults import STANDARD_CATALOG, catalog_by_name
from repro.mission import (
    ProfileTransfer,
    derive_descriptors,
    derive_stressor_spec,
    standard_passenger_car_profile,
)
from repro.risk import StressSampler

TIER1_TRANSFER = ProfileTransfer(
    component_name="steering_ecu",
    temperature_rise_c=25.0,
    vibration_amplification=2.5,
    emi_shielding=0.7,
)
CHIP_TRANSFER = ProfileTransfer(
    component_name="mcu",
    temperature_rise_c=15.0,
    vibration_amplification=1.0,
    emi_shielding=0.5,
)


def full_pipeline():
    oem = standard_passenger_car_profile()
    tier1 = oem.refine(TIER1_TRANSFER)
    chip = tier1.refine(CHIP_TRANSFER)
    specs = [
        derive_stressor_spec(profile, STANDARD_CATALOG, special_boost=10.0)
        for profile in (oem, tier1, chip)
    ]
    return specs


def test_fig2_pipeline(benchmark):
    specs = benchmark(full_pipeline)
    oem_spec, tier1_spec, chip_spec = specs

    base = catalog_by_name()
    tier1_rates = {d.name: d.rate_per_hour for d in tier1_spec.descriptors}

    wiring_acceleration = (
        tier1_rates["sensor_open_load"] / base["sensor_open_load"].rate_per_hour
    )
    seu_acceleration = tier1_rates["sram_seu"] / base["sram_seu"].rate_per_hour

    # Shape (Sec. 3.2): mounting-point vibration drives wiring faults
    # much harder than the thermal profile drives SEUs.
    assert wiring_acceleration > 3 * seu_acceleration
    # Rates only grow as the profile moves into harsher local contexts.
    assert tier1_spec.total_rate_per_hour > oem_spec.total_rate_per_hour
    # The special operating state is over-sampled but still normalised.
    weights = {w.state.name: w.weight for w in tier1_spec.state_weights}
    assert weights["curbstone_steering"] > 0.01  # boosted over 1% share
    assert sum(weights.values()) == pytest.approx(1.0)

    benchmark.extra_info["wiring_acceleration_tier1"] = round(
        wiring_acceleration, 1
    )
    benchmark.extra_info["seu_acceleration_tier1"] = round(seu_acceleration, 2)
    benchmark.extra_info["total_rate_oem"] = f"{oem_spec.total_rate_per_hour:.2e}"
    benchmark.extra_info["total_rate_chip"] = (
        f"{chip_spec.total_rate_per_hour:.2e}"
    )


def test_fig2_derivation_only(benchmark):
    """The descriptor-derivation step alone (per-level cost)."""
    tier1 = standard_passenger_car_profile().refine(TIER1_TRANSFER)
    derived = benchmark(derive_descriptors, tier1, STANDARD_CATALOG)
    assert len(derived) == len(STANDARD_CATALOG)


def sampled_pipeline(
    samples: int = 32,
    seed: int = 0,
    rng: _t.Optional[random.Random] = None,
):
    """Fig. 2 extended by correlated environment sampling.

    Randomness is an explicit parameter end to end: *rng* overrides
    *seed* (the ``_resolve_rng`` convention), and both reach the
    :class:`~repro.risk.StressSampler` untouched — no module-level RNG
    anywhere in the pipeline, so the benchmark is rerunnable
    byte-for-byte.
    """
    tier1 = standard_passenger_car_profile().refine(TIER1_TRANSFER)
    sampler = StressSampler(tier1, seed=seed, rng=rng)
    environments = sampler.draw_many(samples)
    specs = [
        derive_stressor_spec(
            env.effective_profile(tier1), STANDARD_CATALOG,
            special_boost=10.0,
        )
        for env in environments
    ]
    return environments, specs


def test_fig2_sampled_derivation(benchmark):
    """Per-sample re-derivation over drawn environments (seeded)."""
    environments, specs = benchmark(sampled_pipeline, samples=32, seed=17)
    assert len(environments) == len(specs) == 32
    # Sampled temperatures never leave the refined histogram support
    # (before black-swan overlays shift them, events are named).
    support = set(
        standard_passenger_car_profile()
        .refine(TIER1_TRANSFER).temperature.histogram
    )
    for env in environments:
        if not env.events:
            assert set(env.temperature_c) <= support
    # Same seed, same trajectories — whether passed as seed or rng.
    replay, _ = sampled_pipeline(samples=32, seed=17)
    assert [env.to_jsonable() for env in replay] == [
        env.to_jsonable() for env in environments
    ]
    via_rng, _ = sampled_pipeline(samples=32, rng=random.Random(17))
    assert [env.to_jsonable() for env in via_rng] == [
        env.to_jsonable() for env in environments
    ]
    benchmark.extra_info["samples"] = 32
    benchmark.extra_info["event_runs"] = sum(
        1 for env in environments if env.events
    )
