"""E1 (Fig. 2) — mission-profile flow through the supply chain.

Regenerates the paper's Fig. 2 pipeline: an OEM vehicle profile is
refined to a Tier-1 ECU profile and a semiconductor-level profile,
fault/error descriptions are derived at every level, and a stressor
specification is produced.  The benchmark measures the whole
formalisation pipeline; ``extra_info`` records the derived-rate shape
the paper's Sec. 3.2 example predicts (vibration accelerates wiring
faults far more than temperature accelerates SEUs).
"""

import pytest

from repro.faults import STANDARD_CATALOG, catalog_by_name
from repro.mission import (
    ProfileTransfer,
    derive_descriptors,
    derive_stressor_spec,
    standard_passenger_car_profile,
)

TIER1_TRANSFER = ProfileTransfer(
    component_name="steering_ecu",
    temperature_rise_c=25.0,
    vibration_amplification=2.5,
    emi_shielding=0.7,
)
CHIP_TRANSFER = ProfileTransfer(
    component_name="mcu",
    temperature_rise_c=15.0,
    vibration_amplification=1.0,
    emi_shielding=0.5,
)


def full_pipeline():
    oem = standard_passenger_car_profile()
    tier1 = oem.refine(TIER1_TRANSFER)
    chip = tier1.refine(CHIP_TRANSFER)
    specs = [
        derive_stressor_spec(profile, STANDARD_CATALOG, special_boost=10.0)
        for profile in (oem, tier1, chip)
    ]
    return specs


def test_fig2_pipeline(benchmark):
    specs = benchmark(full_pipeline)
    oem_spec, tier1_spec, chip_spec = specs

    base = catalog_by_name()
    tier1_rates = {d.name: d.rate_per_hour for d in tier1_spec.descriptors}

    wiring_acceleration = (
        tier1_rates["sensor_open_load"] / base["sensor_open_load"].rate_per_hour
    )
    seu_acceleration = tier1_rates["sram_seu"] / base["sram_seu"].rate_per_hour

    # Shape (Sec. 3.2): mounting-point vibration drives wiring faults
    # much harder than the thermal profile drives SEUs.
    assert wiring_acceleration > 3 * seu_acceleration
    # Rates only grow as the profile moves into harsher local contexts.
    assert tier1_spec.total_rate_per_hour > oem_spec.total_rate_per_hour
    # The special operating state is over-sampled but still normalised.
    weights = {w.state.name: w.weight for w in tier1_spec.state_weights}
    assert weights["curbstone_steering"] > 0.01  # boosted over 1% share
    assert sum(weights.values()) == pytest.approx(1.0)

    benchmark.extra_info["wiring_acceleration_tier1"] = round(
        wiring_acceleration, 1
    )
    benchmark.extra_info["seu_acceleration_tier1"] = round(seu_acceleration, 2)
    benchmark.extra_info["total_rate_oem"] = f"{oem_spec.total_rate_per_hour:.2e}"
    benchmark.extra_info["total_rate_chip"] = (
        f"{chip_spec.total_rate_per_hour:.2e}"
    )


def test_fig2_derivation_only(benchmark):
    """The descriptor-derivation step alone (per-level cost)."""
    tier1 = standard_passenger_car_profile().refine(TIER1_TRANSFER)
    derived = benchmark(derive_descriptors, tier1, STANDARD_CATALOG)
    assert len(derived) == len(STANDARD_CATALOG)
