"""E11 (ablation) — what each protection mechanism buys.

DESIGN.md calls for ablation benches on the design choices.  The CAPS
platform stacks four mechanisms against a spurious deployment:

* **dual-channel redundancy** (both sensors must agree and exceed),
* the **cross-channel plausibility band**,
* **N-sample debounce**,
* **ECC** on the threshold parameter memory.

Each variant disables one mechanism; the same 120-run two-fault
campaign (seeded identically) runs against every variant, and the
hazardous/SDC counts show what the mechanism was absorbing.  This is
the quantitative what-if analysis the paper says VPs enable ("enabling
what-if analysis of the system when errors are present", Sec. 3.4).
"""

import pytest

from repro.core import (
    Campaign,
    FaultSpace,
    Outcome,
    RandomStrategy,
)
from repro.faults import SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag

from _workloads import BENIGN_CATALOG, STUCK_HIGH

DURATION = simtime.ms(60)
RUNS = 120

VARIANTS = {
    "full_protection": {},
    "no_plausibility": {"plausibility_band": 1 << 20},
    "no_debounce": {"debounce_samples": 1},
    "single_channel": {"dual_channel": False},
    "no_ecc": {"ecc_params": False},
}


def factory_for(variant: str):
    options = VARIANTS[variant]

    def factory(sim: Simulator):
        return airbag.AirbagPlatform(sim, crash_at=None, **options)

    return factory


def run_campaign(variant: str):
    factory = factory_for(variant)
    campaign = Campaign(
        platform_factory=factory,
        observe=airbag.observe,
        classifier=airbag.normal_operation_classifier(),
        duration=DURATION,
        seed=99,
    )
    probe = Simulator()
    space = FaultSpace(
        factory(probe),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH] + BENIGN_CATALOG,
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    strategy = RandomStrategy(space, faults_per_scenario=2)
    return campaign.run(strategy, runs=RUNS)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_variant(benchmark, variant):
    result = benchmark.pedantic(
        run_campaign, args=(variant,), rounds=1, iterations=1
    )
    histogram = result.outcome_histogram()
    benchmark.extra_info["outcomes"] = {
        outcome.name: count for outcome, count in histogram.items() if count
    }


def test_ablation_shape(benchmark):
    """Removing any mechanism must not *reduce* dangerous outcomes;
    removing redundancy must clearly increase them."""
    dangerous = {}
    for variant in VARIANTS:
        result = run_campaign(variant)
        dangerous[variant] = len(result.dangerous())
    benchmark.pedantic(
        run_campaign, args=("full_protection",), rounds=1, iterations=1
    )
    benchmark.extra_info["dangerous_runs"] = dangerous

    baseline = dangerous["full_protection"]
    assert all(count >= baseline for count in dangerous.values())
    # A single channel turns every stuck-high sensor fault into a
    # potential deployment: the strongest mechanism by far.
    assert dangerous["single_channel"] > baseline
    # Without the plausibility band, a disagreeing double-high pair
    # that the band used to reject now fires.
    assert dangerous["no_plausibility"] >= baseline
