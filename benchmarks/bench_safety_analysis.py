"""E8 — classical safety analyses at scale (Sec. 2.1).

Benchmarks the three traditional methods the paper builds on, plus the
simulation bridge it calls for:

* **FTA** — minimal-cut-set extraction and top-event probability on a
  parametric redundant architecture (n channel groups with voters);
* **FMEDA** — ISO 26262 metric computation over a generated worksheet;
* **FPTC** — fixpoint over a chain-with-feedback component graph;
* **FT synthesis from simulation** (ref [8]) — campaign records in,
  quantified fault tree out.
"""

import pytest

from repro.safety import (
    AndGate,
    Asil,
    BasicEvent,
    FailureMode,
    FaultTree,
    Fmeda,
    FptcComponent,
    FptcModel,
    KofNGate,
    OrGate,
    Rule,
)


def redundant_tree(groups: int) -> FaultTree:
    """OR over *groups* 2-of-3 voted channel triples."""
    branches = []
    for g in range(groups):
        events = [
            BasicEvent(f"ch{g}_{i}", 1e-4 * (1 + i)) for i in range(3)
        ]
        branches.append(KofNGate(f"vote{g}", 2, events))
    return FaultTree(OrGate("top", branches))


@pytest.mark.parametrize("groups", [2, 4, 8])
def test_fta_cut_sets(benchmark, groups):
    tree = redundant_tree(groups)
    cut_sets = benchmark(tree.minimal_cut_sets)
    # Each voted triple contributes its 3 double-fault combinations.
    assert len(cut_sets) == 3 * groups
    assert all(len(cs) == 2 for cs in cut_sets)


def test_fta_probability_and_importance(benchmark):
    tree = redundant_tree(4)

    def analyse():
        return tree.top_event_probability(), tree.importance_ranking()

    probability, ranking = benchmark(analyse)
    assert 0 < probability < 1e-5
    # No single points of failure in a fully voted design.
    assert tree.single_points_of_failure() == []
    benchmark.extra_info["top_probability"] = f"{probability:.3e}"


def generated_fmeda(modes: int) -> Fmeda:
    fmeda = Fmeda("generated")
    for index in range(modes):
        fmeda.add(
            FailureMode(
                component=f"part{index % 16}",
                mode=f"mode{index}",
                rate_per_hour=1e-9 * (1 + index % 7),
                safe_fraction=0.3 if index % 3 else 0.0,
                diagnostic_coverage=0.99 if index % 2 else 0.90,
                latent_coverage=0.9,
            )
        )
    return fmeda


def test_fmeda_metrics(benchmark):
    fmeda = generated_fmeda(300)

    def metrics():
        return fmeda.spfm, fmeda.lfm, fmeda.pmhf, fmeda.achieved_asil()

    spfm, lfm, pmhf, asil = benchmark(metrics)
    assert 0.9 < spfm <= 1.0
    assert asil in (Asil.QM, Asil.B, Asil.C, Asil.D)
    benchmark.extra_info["spfm"] = round(spfm, 4)
    benchmark.extra_info["pmhf_per_hour"] = f"{pmhf:.2e}"
    benchmark.extra_info["asil"] = asil.name


def chain_model(length: int) -> FptcModel:
    model = FptcModel()
    model.add_component(
        FptcComponent(
            "source", inputs=[], outputs=["out"], source_tokens=("value",)
        )
    )
    previous = "source"
    for index in range(length):
        name = f"stage{index}"
        rules = []
        if index == length // 2:
            # One mid-chain corrector turns value errors into delays.
            rules = [
                Rule({"in": "value"}, {"out": "late"}),
                Rule({"in": "_"}, {"out": "*"}),
            ]
        model.add_component(
            FptcComponent(name, inputs=["in"], outputs=["out"], rules=rules)
        )
        model.connect(previous, "out", name, "in")
        previous = name
    return model


@pytest.mark.parametrize("length", [10, 40])
def test_fptc_fixpoint(benchmark, length):
    model = chain_model(length)
    result = benchmark(model.solve)
    final = result[f"stage{length - 1}"]["out"]
    # The corrector transformed the value failure into a timing one.
    assert "late" in final
    assert "value" not in final


def test_ft_synthesis_from_campaign(benchmark):
    """Ref [8]: fault trees created from simulation results."""
    from repro.core import (
        CampaignResult,
        ErrorScenario,
        Outcome,
        PlannedInjection,
        RunRecord,
        synthesize_fault_tree,
    )
    from repro.faults import FaultDescriptor, FaultKind

    descriptors = {
        f"fault{i}": FaultDescriptor(
            name=f"fault{i}", kind=FaultKind.BIT_FLIP,
            rate_per_hour=1e-7 * (i + 1),
        )
        for i in range(6)
    }

    result = CampaignResult(duration=1000)
    # Synthesize 60 records: some hazardous pairs, some benign.
    for index in range(60):
        a = descriptors[f"fault{index % 6}"]
        b = descriptors[f"fault{(index + 1) % 6}"]
        scenario = ErrorScenario(
            f"s{index}",
            [
                PlannedInjection(10, f"t{index % 6}", a),
                PlannedInjection(20, f"t{(index + 1) % 6}", b),
            ],
        )
        outcome = Outcome.HAZARDOUS if index % 6 == 0 else Outcome.MASKED
        result.append(
            RunRecord(index, scenario, outcome, [], {}, 2)
        )

    tree = benchmark(
        synthesize_fault_tree, result, descriptors, 8000.0
    )
    assert tree is not None
    assert tree.minimal_cut_sets()
    benchmark.extra_info["cut_sets"] = len(tree.minimal_cut_sets())
    benchmark.extra_info["top_probability"] = (
        f"{tree.top_event_probability():.3e}"
    )
