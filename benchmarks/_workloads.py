"""Shared workload builders for the benchmark suite.

Each experiment file (``bench_*.py``) regenerates one figure or claim
of the paper; the builders here keep the platforms consistent across
them.  See DESIGN.md's experiment index (E1-E10) and EXPERIMENTS.md
for the mapping to the paper.
"""

from __future__ import annotations

import random
import typing as _t

from repro.core import (
    Campaign,
    FaultSpace,
)
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag

#: The stuck-high sensor fault used by strategy experiments.
STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)

#: Mostly-benign fault classes that pad the fault space — realistic
#: small drifts and a stuck-at-nominal, none of which can push a
#: channel over the deploy threshold on their own.
BENIGN_CATALOG = [
    FaultDescriptor(
        name="sensor_stuck_nominal",
        kind=FaultKind.STUCK_VALUE,
        persistence=Persistence.PERMANENT,
        params={"value": 2.6},
        rate_per_hour=1e-7,
    ),
    FaultDescriptor(
        name="sensor_offset_small",
        kind=FaultKind.OFFSET_DRIFT,
        persistence=Persistence.PERMANENT,
        params={"offset": 0.1},
        rate_per_hour=3e-7,
    ),
    FaultDescriptor(
        name="sensor_gain_small",
        kind=FaultKind.GAIN_DRIFT,
        persistence=Persistence.PERMANENT,
        params={"gain": 1.03},
        rate_per_hour=2e-7,
    ),
]

AIRBAG_DURATION = simtime.ms(60)


def airbag_campaign(seed: int = 7) -> Campaign:
    return Campaign(
        platform_factory=airbag.build_normal_operation,
        observe=airbag.observe,
        classifier=airbag.normal_operation_classifier(),
        duration=AIRBAG_DURATION,
        seed=seed,
    )


def airbag_space(
    time_bins: int = 2, padded: bool = False
) -> FaultSpace:
    """The CAPS fault space.

    ``padded=True`` adds the benign catalog, growing the space so that
    the one hazardous combination (both sensors stuck high) becomes a
    genuine needle in a haystack — the configuration the strategy
    comparison (E5) needs.
    """
    descriptors = [SRAM_SEU.with_rate(5e-7), STUCK_HIGH]
    if padded:
        descriptors += BENIGN_CATALOG
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        descriptors,
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=time_bins,
    )


def adder_vectors(circuit) -> _t.Callable[[random.Random], dict]:
    """Random input vectors for an 8-bit adder-style circuit."""
    from repro.gate import GateSimulator

    def source(rng: random.Random) -> dict:
        inputs: dict = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], rng.randrange(256)))
        inputs.update(GateSimulator.pack(circuit.buses["b"], rng.randrange(256)))
        return inputs

    return source
