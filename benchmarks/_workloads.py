"""Shared workload builders for the benchmark suite.

Each experiment file (``bench_*.py``) regenerates one figure or claim
of the paper; the builders here keep the platforms consistent across
them.  See DESIGN.md's experiment index (E1-E10) and EXPERIMENTS.md
for the mapping to the paper.
"""
# vp-lint: disable-file=VP005 - benchmark: wall-clock timing is the measurement, not model behavior

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import random
import time
import typing as _t

from repro.core import (
    Campaign,
    ErrorScenario,
    FaultSpace,
    PlannedInjection,
    Strategy,
)
from repro.faults import FaultDescriptor, FaultKind, Persistence, SRAM_SEU
from repro.kernel import Simulator, simtime
from repro.platforms import airbag

#: The stuck-high sensor fault used by strategy experiments.
STUCK_HIGH = FaultDescriptor(
    name="sensor_stuck_high",
    kind=FaultKind.STUCK_VALUE,
    persistence=Persistence.PERMANENT,
    params={"value": 4.5},
    rate_per_hour=2e-7,
)

#: Mostly-benign fault classes that pad the fault space — realistic
#: small drifts and a stuck-at-nominal, none of which can push a
#: channel over the deploy threshold on their own.
BENIGN_CATALOG = [
    FaultDescriptor(
        name="sensor_stuck_nominal",
        kind=FaultKind.STUCK_VALUE,
        persistence=Persistence.PERMANENT,
        params={"value": 2.6},
        rate_per_hour=1e-7,
    ),
    FaultDescriptor(
        name="sensor_offset_small",
        kind=FaultKind.OFFSET_DRIFT,
        persistence=Persistence.PERMANENT,
        params={"offset": 0.1},
        rate_per_hour=3e-7,
    ),
    FaultDescriptor(
        name="sensor_gain_small",
        kind=FaultKind.GAIN_DRIFT,
        persistence=Persistence.PERMANENT,
        params={"gain": 1.03},
        rate_per_hour=2e-7,
    ),
]

AIRBAG_DURATION = simtime.ms(60)

#: Injection time of the prefix-heavy fork workload: 50 of 60 ms
#: (>= 80% of every run) is fault-free prefix shared by the whole
#: batch — the shape snapshot-fork execution amortizes.
FORK_INJECT_TIME = simtime.ms(50)


def airbag_campaign(seed: int = 7) -> Campaign:
    # Registry-backed so the same campaign can run on every executor
    # backend; the key resolves to exactly the CAPS callables above.
    return Campaign(
        duration=AIRBAG_DURATION,
        seed=seed,
        platform="airbag-normal",
    )


def airbag_space(
    time_bins: int = 2, padded: bool = False
) -> FaultSpace:
    """The CAPS fault space.

    ``padded=True`` adds the benign catalog, growing the space so that
    the one hazardous combination (both sensors stuck high) becomes a
    genuine needle in a haystack — the configuration the strategy
    comparison (E5) needs.
    """
    descriptors = [SRAM_SEU.with_rate(5e-7), STUCK_HIGH]
    if padded:
        descriptors += BENIGN_CATALOG
    probe = Simulator()
    return FaultSpace(
        airbag.build_normal_operation(probe),
        descriptors,
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=time_bins,
    )


class PrefixHeavyStrategy(Strategy):
    """Random fault draws at one fixed injection time.

    Every scenario injects at the same instant, so a whole batch
    shares one fault-free prefix and forms a single snapshot-fork
    group — the workload ``Campaign.run(fork=True)`` amortizes.  The
    fault *content* still varies per scenario (uniform over the space's
    injection pairs), so outcomes stay diverse enough to exercise the
    classifier.
    """

    def __init__(self, space: FaultSpace, time: int):
        super().__init__(space, faults_per_scenario=1)
        self.time = time

    def next_scenario(self, rng: random.Random) -> ErrorScenario:
        self.scenario_count += 1
        path, descriptor = self.space.pairs[
            rng.randrange(len(self.space.pairs))
        ]
        return ErrorScenario(
            name=f"prefix-{self.scenario_count}",
            injections=[
                PlannedInjection(
                    time=self.time, target_path=path, descriptor=descriptor
                )
            ],
        )


def timed_fork_campaign(
    runs: int,
    fork: bool,
    batch_size: int = 32,
    seed: int = 7,
):
    """One seeded prefix-heavy CAPS campaign; returns (result, wall).

    Serial backend either way; ``fork`` toggles snapshot-fork
    execution on the identical spec stream, so the pair isolates
    exactly what prefix sharing buys.
    """
    campaign = airbag_campaign(seed=seed)
    campaign.golden()
    strategy = PrefixHeavyStrategy(airbag_space(), FORK_INJECT_TIME)
    start = time.perf_counter()
    result = campaign.run(
        strategy, runs=runs, backend="serial", batch_size=batch_size,
        fork=fork,
    )
    return result, time.perf_counter() - start


#: Where the campaign-throughput trajectory lands, next to the suite.
CAMPAIGN_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_campaign.json"

CPUS = os.cpu_count() or 1

#: Whether the parallel backend is worth measuring on this host.  The
#: emitter *always* attempts it when this holds — including when
#: ``REPRO_FORCE_POOL=1`` pins the pool on a single-CPU host — and
#: records an explicit ``skipped`` entry otherwise, so a missing
#: parallel measurement is visible in the JSON instead of silent.
POOL_OK = CPUS >= 2 or os.environ.get("REPRO_FORCE_POOL") == "1"


def timed_campaign(
    backend: str,
    runs: int,
    workers: _t.Optional[int] = None,
    batch_size: int = 16,
    reuse_platform: bool = True,
    chunk_size: _t.Optional[int] = None,
    seed: int = 7,
):
    """One seeded CAPS campaign on *backend*; returns (result, wall).

    The golden run is primed outside the timed region on every variant
    so the comparison measures the loop, not setup.
    """
    from repro.core import RandomStrategy

    campaign = airbag_campaign(seed=seed)
    campaign.golden()
    strategy = RandomStrategy(airbag_space(), faults_per_scenario=2)
    start = time.perf_counter()
    result = campaign.run(
        strategy, runs=runs, backend=backend, workers=workers,
        batch_size=batch_size,
        reuse_platform=reuse_platform,
        chunk_size=chunk_size,
    )
    return result, time.perf_counter() - start


def campaign_bench_entry(label: str, result, wall_s: float, workers: int):
    """One backend measurement for ``BENCH_campaign.json``.

    ``result`` is a finished :class:`~repro.core.CampaignResult`; the
    per-run kernel counters come from the executor instrumentation, so
    throughput can be compared as *simulation work per second*, not
    just runs per second.
    """
    runs = result.runs
    totals = result.kernel_totals
    per_run = {
        key: (totals[key] / runs if runs else 0)
        for key in ("events", "process_steps", "delta_cycles", "wall_s")
    }
    return {
        "backend": label,
        "workers": workers,
        "runs": runs,
        "wall_s": round(wall_s, 4),
        "runs_per_s": round(runs / wall_s, 2) if wall_s else None,
        "per_run_kernel": {
            "events": round(per_run["events"], 1),
            "process_steps": round(per_run["process_steps"], 1),
            "delta_cycles": round(per_run["delta_cycles"], 1),
            "sim_wall_s": round(per_run["wall_s"], 6),
        },
        "outcomes": {
            outcome.name: count
            for outcome, count in result.outcome_histogram().items()
            if count
        },
        # Fault-tolerance accounting (see CampaignResult.report()):
        # degraded or resumed runs must be visible in the trajectory,
        # otherwise a regression that silently times runs out would
        # read as a throughput *improvement*.
        "robustness": {
            "completed": result.completed,
            "timed_out": result.timed_out,
            "terminally_failed": result.terminally_failed,
            "retried": result.retried,
            "resumed": result.resumed,
        },
    }


def skipped_entry(label: str, reason: str) -> dict:
    """A placeholder entry for a backend this host could not measure.

    An explicit ``{"backend": ..., "skipped": reason}`` row keeps the
    trajectory honest: downstream readers can tell "not measured here"
    apart from "someone dropped the measurement"."""
    return {"backend": label, "skipped": reason}


def emit_campaign_bench(entries: _t.Sequence[dict]) -> pathlib.Path:
    """Write ``BENCH_campaign.json`` so the runs/sec trajectory (and
    the per-backend speedup over serial) is tracked across PRs.

    Every measured non-serial entry gains ``speedup_vs_serial``
    relative to the ``"serial"`` entry of the same emission — unless
    the caller precomputed one (the ``fork`` entry measures a
    different, prefix-heavy workload, so its speedup is taken against
    the matching ``serial-prefix`` row, not the standard campaign)."""
    entries = [dict(e) for e in entries]
    serial = next(
        (
            e for e in entries
            if e["backend"] == "serial" and not e.get("skipped")
        ),
        None,
    )
    if serial and serial.get("runs_per_s"):
        for entry in entries:
            if entry is serial or entry.get("skipped"):
                continue
            if entry.get("runs_per_s") and "speedup_vs_serial" not in entry:
                entry["speedup_vs_serial"] = round(
                    entry["runs_per_s"] / serial["runs_per_s"], 2
                )
    payload: _t.Dict[str, _t.Any] = {"campaign": "fig3-caps-airbag",
                                     "entries": entries}
    parallel = [
        e for e in entries
        if e["backend"].startswith("parallel") and not e.get("skipped")
    ]
    if serial and parallel and serial["runs_per_s"]:
        best = max(e["runs_per_s"] or 0 for e in parallel)
        payload["parallel_speedup"] = round(best / serial["runs_per_s"], 2)
    CAMPAIGN_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return CAMPAIGN_BENCH_PATH


# -- distributed-backend workloads (E19, BENCH_distributed.json) ------------

DIST_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_distributed.json"


def timed_distributed_campaign(
    runs: int,
    workers: int = 4,
    batch_size: _t.Optional[int] = None,
    seed: int = 7,
):
    """One seeded CAPS campaign on a loopback LocalCluster; returns
    ``(result, wall)``.

    Cluster spawn and worker warm-up happen *outside* the timed region
    — a short priming campaign on the same executor brings every
    worker process up, imports paid, platform elaborated and cached —
    mirroring how the other emitters prime the golden run.  The row
    then measures the distributed loop itself (leases, result frames,
    steal-quantum scheduling), which is the part that must beat
    serial, not interpreter start-up.
    """
    from repro.core import RandomStrategy
    from repro.distributed import DistributedExecutor

    batch_size = batch_size or runs
    executor = DistributedExecutor("airbag-normal", workers=workers)
    try:
        warm_campaign = airbag_campaign(seed=seed + 1)
        warm_campaign.golden()
        warm_runs = workers * 4
        warm_campaign.run(
            RandomStrategy(airbag_space(), faults_per_scenario=2),
            runs=warm_runs, backend=executor, batch_size=warm_runs,
        )
        campaign = airbag_campaign(seed=seed)
        campaign.golden()
        strategy = RandomStrategy(airbag_space(), faults_per_scenario=2)
        start = time.perf_counter()
        result = campaign.run(
            strategy, runs=runs, backend=executor, batch_size=batch_size,
        )
        wall = time.perf_counter() - start
    finally:
        executor.close()
    return result, wall


def emit_distributed_bench(
    entries: _t.Sequence[dict], min_speedup: float = 2.0
) -> pathlib.Path:
    """Write ``BENCH_distributed.json``: serial vs loopback-cluster rows
    plus the speedup acceptance.

    The acceptance block records the best measured distributed speedup
    against *min_speedup*; ``"speedup": null`` (skipped row) means the
    emitting host could not measure it — visible, not silent — and the
    ``perf_smoke.py`` guard then skips rather than inventing a ratio.
    """
    entries = [dict(entry) for entry in entries]
    serial = next(
        (
            e for e in entries
            if e["backend"] == "serial" and not e.get("skipped")
        ),
        None,
    )
    if serial and serial.get("runs_per_s"):
        for entry in entries:
            if entry is serial or entry.get("skipped"):
                continue
            if entry.get("runs_per_s") and "speedup_vs_serial" not in entry:
                entry["speedup_vs_serial"] = round(
                    entry["runs_per_s"] / serial["runs_per_s"], 2
                )
    measured = [
        entry["speedup_vs_serial"] for entry in entries
        if entry["backend"].startswith("distributed")
        and not entry.get("skipped")
        and entry.get("speedup_vs_serial")
    ]
    payload = {
        "campaign": "distributed-caps-airbag",
        "entries": entries,
        "acceptance": {
            "min_speedup": min_speedup,
            "speedup": max(measured) if measured else None,
            "met": (max(measured) >= min_speedup) if measured else None,
        },
    }
    DIST_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return DIST_BENCH_PATH


# -- risk-engine workloads (E18, BENCH_risk.json) ---------------------------

RISK_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_risk.json"


def timed_risk_campaign(
    runs: int,
    fork: bool = False,
    backend: str = "serial",
    workers: _t.Optional[int] = None,
    batch_size: int = 64,
    seed: int = 7,
    sampler_seed: int = 11,
):
    """One seeded mission-sampled CAPS campaign; returns
    ``(report, result, campaign_wall_s, report_wall_s)``.

    The strategy draws correlated environment trajectories per run and
    re-derives the stressor spec per sample (the per-sample Fig. 2
    loop), with the injection time pinned to the prefix-heavy instant
    so ``fork=True`` amortizes the shared fault-free prefix exactly as
    in the plain fork workload.  The report fold is timed separately —
    it is pure post-processing and must not pollute the backend
    comparison.
    """
    from repro.mission import standard_passenger_car_profile
    from repro.risk import RiskReport, SampledScenarioStrategy, StressSampler

    campaign = airbag_campaign(seed=seed)
    campaign.golden()
    strategy = SampledScenarioStrategy(
        airbag_space(),
        StressSampler(standard_passenger_car_profile(), seed=sampler_seed),
        injection_time=FORK_INJECT_TIME,
    )
    start = time.perf_counter()
    result = campaign.run(
        strategy, runs=runs, backend=backend, workers=workers,
        batch_size=batch_size, fork=fork,
    )
    campaign_wall = time.perf_counter() - start
    start = time.perf_counter()
    report = RiskReport.from_campaign(result, strategy)
    report_wall = time.perf_counter() - start
    return report, result, campaign_wall, report_wall


def emit_risk_bench(
    entries: _t.Sequence[dict], report_sha: str
) -> pathlib.Path:
    """Write ``BENCH_risk.json``: per-backend rows plus the canonical
    report fingerprint.

    The sha pins the *content* side of the contract in the same file
    as the throughput numbers: every measured backend in the emission
    produced a byte-identical ``RiskReport.canonical()``, so a reader
    comparing trajectories across PRs can also see at a glance whether
    the sampled campaign itself changed."""
    entries = [dict(entry) for entry in entries]
    serial = next(
        (
            e for e in entries
            if e["backend"] == "serial" and not e.get("skipped")
        ),
        None,
    )
    if serial and serial.get("runs_per_s"):
        for entry in entries:
            if entry is serial or entry.get("skipped"):
                continue
            if entry.get("runs_per_s") and "speedup_vs_serial" not in entry:
                entry["speedup_vs_serial"] = round(
                    entry["runs_per_s"] / serial["runs_per_s"], 2
                )
    payload = {
        "campaign": "risk-engine-sampled-airbag",
        "entries": entries,
        "report_sha": report_sha,
    }
    RISK_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return RISK_BENCH_PATH


def adder_vectors(circuit) -> _t.Callable[[random.Random], dict]:
    """Random input vectors for an 8-bit adder-style circuit."""
    from repro.gate import GateSimulator

    def source(rng: random.Random) -> dict:
        inputs: dict = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], rng.randrange(256)))
        inputs.update(GateSimulator.pack(circuit.buses["b"], rng.randrange(256)))
        return inputs

    return source


# -- gate-level fault-campaign workloads (E17, BENCH_gate.json) -------------

GATE_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_gate.json"

#: The enumeration workloads of the vector-engine acceptance: every
#: (net, kind) site of the two headline circuits, all three fault
#: kinds, shared stimulus vectors.
GATE_CIRCUITS: _t.Dict[str, _t.Callable[[], _t.Any]] = {}


def _gate_circuits() -> _t.Dict[str, _t.Any]:
    from repro.gate import alu, registered_adder

    if not GATE_CIRCUITS:
        GATE_CIRCUITS["alu8"] = alu(8)
        GATE_CIRCUITS["registered_adder8"] = registered_adder(8)
    return GATE_CIRCUITS


def timed_gate_campaign(
    engine: str,
    circuit_name: str = "alu8",
    runs_per_site: int = 4,
    seed: int = 17,
):
    """One full fault-enumeration campaign; returns (profile, outcomes,
    sites, wall_s).

    The workload is the acceptance one: every net x (seu, stuck0,
    stuck1) site of the named circuit, ``runs_per_site`` shared
    vectors, golden-vs-faulty word comparison on the output bus.
    """
    from repro.gate import enumerate_sites, run_campaign
    from repro.gate.faults import FAULT_KINDS

    circuit = _gate_circuits()[circuit_name]
    sites = enumerate_sites(circuit, FAULT_KINDS)
    start = time.perf_counter()
    # vector_source=None: uniform random bits on *every* primary input
    # (including the ALU opcode lines, so the MUX tree gets exercised).
    profile, outcomes = run_campaign(
        circuit,
        "out",
        None,
        sites=sites,
        runs_per_site=runs_per_site,
        seed=seed,
        engine=engine,
    )
    return profile, outcomes, sites, time.perf_counter() - start


def gate_bench_entry(
    circuit_name: str,
    engine: str,
    profile,
    sites,
    runs_per_site: int,
    wall_s: float,
) -> dict:
    """One engine measurement for ``BENCH_gate.json``.

    ``runs`` counts golden-vs-faulty comparisons (sites x vectors) —
    the unit the scalar engine pays one full simulator run for."""
    runs = profile.total
    return {
        "circuit": circuit_name,
        "engine": engine,
        "sites": len(sites),
        "runs_per_site": runs_per_site,
        "runs": runs,
        "wall_s": round(wall_s, 4),
        "runs_per_s": round(runs / wall_s, 1) if wall_s else None,
        "masking_rate": round(profile.masking_rate, 4),
        "multi_bit_fraction": round(profile.multi_bit_fraction, 4),
        "profile_sha": hashlib.sha256(profile.canonical()).hexdigest()[:16],
    }


def emit_gate_bench(
    entries: _t.Sequence[dict], min_speedup: float = 20.0
) -> pathlib.Path:
    """Write ``BENCH_gate.json``: per-circuit scalar/vector rows plus
    the speedup-vs-scalar acceptance.

    Every vector entry gains ``speedup_vs_scalar`` against the scalar
    row of the same circuit; the acceptance block records the worst
    per-circuit speedup against *min_speedup* so the CI guard
    (``perf_smoke.py``) has a committed baseline ratio to compare to.
    """
    entries = [dict(entry) for entry in entries]
    scalar_by_circuit = {
        e["circuit"]: e for e in entries if e["engine"] == "scalar"
    }
    speedups = []
    for entry in entries:
        if entry["engine"] != "vector":
            continue
        scalar = scalar_by_circuit.get(entry["circuit"])
        if scalar and entry["wall_s"]:
            speedup = round(scalar["wall_s"] / entry["wall_s"], 1)
            entry["speedup_vs_scalar"] = speedup
            speedups.append(speedup)
    payload = {
        "campaign": "gate-fault-enumeration",
        "entries": entries,
        "acceptance": {
            "min_speedup": min_speedup,
            "worst_speedup": min(speedups) if speedups else None,
            "met": bool(speedups) and min(speedups) >= min_speedup,
        },
    }
    GATE_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return GATE_BENCH_PATH
