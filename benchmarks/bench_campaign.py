"""Campaign hot-path throughput — the ``BENCH_campaign.json`` emitter.

The paper names simulation speed as the limiting factor of
quantitative safety evaluation (Sec. 3.4); this suite tracks the
runs-per-second trajectory of the Fig. 3 CAPS campaign across PRs:

* ``serial`` — the default in-process loop, warm-platform reuse on
  (one elaborated platform, reset between runs);
* ``serial-fresh`` — the same campaign with ``reuse_platform=False``,
  isolating what warm reuse buys over per-run elaboration;
* ``parallel`` — the process-pool backend with chunked dispatch.  The
  emitter *always* attempts it when the host can make it meaningful
  (>= 2 CPUs, or ``REPRO_FORCE_POOL=1``) and otherwise records an
  explicit ``skipped: single-cpu`` entry instead of omitting the row.

Every non-serial entry carries ``speedup_vs_serial``; the CI
perf-smoke step (``perf_smoke.py``) compares a fresh serial
measurement against the committed JSON and fails on a >30%
regression.
"""

import os

import pytest

from _workloads import (
    CPUS,
    POOL_OK,
    campaign_bench_entry,
    emit_campaign_bench,
    skipped_entry,
    timed_campaign,
    timed_fork_campaign,
)

THROUGHPUT_RUNS = 60
FORK_RUNS = 128
FORK_BATCH = 64
SPEEDUP_RUNS = 160
SPEEDUP_WORKERS = 4
PARALLEL_WORKERS = min(4, max(2, CPUS))


def canonical_histograms(*results):
    return [r.outcome_histogram() for r in results]


def test_campaign_backend_throughput_json():
    """Emit BENCH_campaign.json: serial (warm), serial-fresh, parallel."""
    serial, serial_wall = timed_campaign("serial", runs=THROUGHPUT_RUNS)
    fresh, fresh_wall = timed_campaign(
        "serial", runs=THROUGHPUT_RUNS, reuse_platform=False
    )
    # Warm reuse must be invisible in results (the equivalence suite
    # pins byte-identity; the emitter re-checks the outcome histogram
    # so a drift can never land in the trajectory unnoticed).
    assert serial.outcome_histogram() == fresh.outcome_histogram()
    entries = [
        campaign_bench_entry("serial", serial, serial_wall, 1),
        campaign_bench_entry("serial-fresh", fresh, fresh_wall, 1),
    ]
    # Clean campaigns must account every run as completed — a silent
    # timeout would inflate runs/sec while degrading the result.
    assert entries[0]["robustness"]["completed"] == serial.runs
    if POOL_OK:
        parallel, parallel_wall = timed_campaign(
            "parallel", runs=THROUGHPUT_RUNS, workers=PARALLEL_WORKERS
        )
        assert parallel.outcome_histogram() == serial.outcome_histogram()
        entries.append(
            campaign_bench_entry(
                "parallel", parallel, parallel_wall, PARALLEL_WORKERS
            )
        )
    else:
        entries.append(skipped_entry("parallel", "single-cpu"))
    # Fork rows: the prefix-heavy workload (one shared injection time,
    # >= 80% fault-free prefix) with snapshot-fork off and on.  The
    # fork entry's speedup is precomputed against its own serial
    # baseline — the workloads differ, so the generic vs-"serial"
    # ratio would compare apples to oranges.
    prefix, prefix_wall = timed_fork_campaign(
        FORK_RUNS, fork=False, batch_size=FORK_BATCH
    )
    forked, forked_wall = timed_fork_campaign(
        FORK_RUNS, fork=True, batch_size=FORK_BATCH
    )
    assert forked.outcome_histogram() == prefix.outcome_histogram()
    prefix_entry = campaign_bench_entry(
        "serial-prefix", prefix, prefix_wall, 1
    )
    fork_entry = campaign_bench_entry("fork", forked, forked_wall, 1)
    fork_entry["speedup_vs_serial"] = round(
        fork_entry["runs_per_s"] / prefix_entry["runs_per_s"], 2
    )
    entries.extend([prefix_entry, fork_entry])
    path = emit_campaign_bench(entries)
    assert path.exists()


def test_campaign_fork_speedup_acceptance():
    """>= 3x runs/sec from snapshot-fork on a >= 80%-prefix workload,
    identical results run for run."""
    prefix, prefix_wall = timed_fork_campaign(
        FORK_RUNS, fork=False, batch_size=FORK_BATCH
    )
    forked, forked_wall = timed_fork_campaign(
        FORK_RUNS, fork=True, batch_size=FORK_BATCH
    )
    assert forked.outcome_histogram() == prefix.outcome_histogram()
    assert [r.matched_rules for r in forked.records] == [
        r.matched_rules for r in prefix.records
    ]
    prefix_rate = FORK_RUNS / prefix_wall
    forked_rate = FORK_RUNS / forked_wall
    assert forked_rate >= 3.0 * prefix_rate, (
        f"fork {forked_rate:.1f} runs/s vs per-run "
        f"{prefix_rate:.1f} runs/s"
    )


def test_campaign_warm_reuse_is_not_slower():
    """Warm reuse must never lose to per-run elaboration.

    The real speedup target lives in the committed JSON (and is
    enforced against regression by ``perf_smoke.py``); this guard only
    catches the sign being wrong — a reset protocol that got more
    expensive than elaboration itself.  The 0.8 factor absorbs CI
    timer noise."""
    fresh, fresh_wall = timed_campaign(
        "serial", runs=THROUGHPUT_RUNS, reuse_platform=False
    )
    warm, warm_wall = timed_campaign("serial", runs=THROUGHPUT_RUNS)
    assert warm.outcome_histogram() == fresh.outcome_histogram()
    assert warm_wall <= fresh_wall / 0.8, (
        f"warm {THROUGHPUT_RUNS / warm_wall:.1f} runs/s vs fresh "
        f"{THROUGHPUT_RUNS / fresh_wall:.1f} runs/s"
    )


@pytest.mark.skipif(
    CPUS < SPEEDUP_WORKERS,
    reason=f"speedup acceptance needs >= {SPEEDUP_WORKERS} CPUs",
)
def test_campaign_parallel_speedup_acceptance():
    """>= 2x runs/sec on 4 workers at >= 120 runs, identical results."""
    serial, serial_wall = timed_campaign("serial", runs=SPEEDUP_RUNS)
    parallel, parallel_wall = timed_campaign(
        "parallel", runs=SPEEDUP_RUNS, workers=SPEEDUP_WORKERS
    )
    assert parallel.outcome_histogram() == serial.outcome_histogram()
    assert [r.matched_rules for r in parallel.records] == [
        r.matched_rules for r in serial.records
    ]
    serial_rate = SPEEDUP_RUNS / serial_wall
    parallel_rate = SPEEDUP_RUNS / parallel_wall
    emit_campaign_bench([
        campaign_bench_entry("serial", serial, serial_wall, 1),
        campaign_bench_entry(
            "parallel", parallel, parallel_wall, SPEEDUP_WORKERS
        ),
    ])
    assert parallel_rate >= 2.0 * serial_rate, (
        f"parallel {parallel_rate:.1f} runs/s vs serial "
        f"{serial_rate:.1f} runs/s"
    )


@pytest.mark.skipif(not POOL_OK, reason="needs >= 2 CPUs or a forced pool")
def test_campaign_chunked_matches_per_run_dispatch():
    """Chunked dispatch changes cost, never content: same campaign,
    chunk_size auto vs 1, identical outcome sequence."""
    chunked, _ = timed_campaign(
        "parallel", runs=48, workers=2, chunk_size=None
    )
    per_run, _ = timed_campaign(
        "parallel", runs=48, workers=2, chunk_size=1
    )
    assert [r.outcome for r in chunked.records] == [
        r.outcome for r in per_run.records
    ]
    assert [r.matched_rules for r in chunked.records] == [
        r.matched_rules for r in per_run.records
    ]
