"""E20 — pricing static reach analysis and the pruning payoff.

Two claims to keep honest:

* **Analysis is cheap.** The structural reach analysis runs once per
  platform, before any campaign; its wall time must stay negligible
  next to even a handful of simulation runs.  The bench times
  :func:`repro.analyze.reach.analyze_platform` on every built-in.
* **Pruning buys hazard-finding efficiency.** On a dead-site-heavy
  platform (the CAPS airbag with six provisioned-but-unwired spare
  SRAM banks — two thirds of the SEU fault space is statically dead),
  a reachability-pruned campaign finds the *same* hazards while
  executing far fewer runs.  The metric is hazards found per 1k
  *executed* runs; the acceptance floor is a 1.2x improvement, well
  under the ~1.8x the 44%-dead two-fault workload predicts but enough
  to fail loudly if pruning ever stops pruning.

Soundness is not re-proven here (tests/analyze/test_reach_soundness.py
and test_prune_equivalence.py own that); the bench does assert the
pruned campaign found the identical hazard count, since a cheaper
campaign that misses hazards would be worse than useless.
"""
# vp-lint: disable-file=VP005 - benchmark: wall-clock timing is the measurement, not model behavior

import json
import pathlib
import time

from repro.analyze.reach import ReachabilityPruner, analyze_platform
from repro.core import Campaign, Outcome, RandomStrategy
from repro.core.scenario import FaultSpace
from repro.faults import SRAM_SEU
from repro.hw.memory import Memory
from repro.kernel import Simulator, simtime
from repro.platforms import airbag, registry

from _workloads import STUCK_HIGH

REACH_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_reach.json"

PLATFORMS = (
    "airbag-normal", "airbag-crash", "acc", "steering", "hostile-dut",
)
ANALYSIS_REPEATS = 3

ISLANDED_KEY = "airbag-islands-bench"
SPARES = 6
RUNS = 300
SEED = 7
#: Acceptance floor for hazards-per-1k-executed improvement.
EFFICIENCY_FLOOR = 1.2


def build_islanded(sim):
    platform = airbag.build_normal_operation(sim)
    for i in range(SPARES):
        # Unreferenced spare banks: statically-dead SEU sites that
        # dominate the memory side of the fault space.
        Memory(f"spare{i}", parent=platform, size=8)
    return platform


registry.register_platform(  # vp-lint: disable=VP009 - bench variant; one-shot runs never warm-reset
    ISLANDED_KEY,
    build_islanded,
    airbag.observe,
    airbag.normal_operation_classifier,
    description="CAPS airbag plus dead spare SRAM banks (E20 workload)",
    reach_surface=airbag.reach_surface,
    replace=True,
)


def timed_analysis(name):
    best = None
    for _ in range(ANALYSIS_REPEATS):
        start = time.perf_counter()
        report = analyze_platform(name)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return report, best


def islanded_strategy():
    space = FaultSpace(
        build_islanded(Simulator()),
        [SRAM_SEU.with_rate(5e-7), STUCK_HIGH],
        window_start=simtime.ms(5),
        window_end=simtime.ms(30),
        time_bins=2,
    )
    return RandomStrategy(space, faults_per_scenario=2)


def run_campaign(prune=None):
    campaign = Campaign(
        duration=simtime.ms(60), seed=SEED, platform=ISLANDED_KEY,
    )
    campaign.golden()
    start = time.perf_counter()
    result = campaign.run(islanded_strategy(), runs=RUNS, prune=prune)
    wall = time.perf_counter() - start
    return result, wall


def campaign_entry(label, result, wall):
    executed = result.runs - result.pruned
    hazards = result.count(Outcome.HAZARDOUS)
    return {
        "mode": label,
        "planned_runs": result.runs,
        "executed_runs": executed,
        "pruned_runs": result.pruned,
        "hazards": hazards,
        "hazards_per_1k_executed": round(
            1000.0 * hazards / executed, 3
        ) if executed else None,
        "wall_s": round(wall, 4),
    }


def test_reach_bench_json():
    analysis_rows = []
    for name in PLATFORMS:
        report, wall = timed_analysis(name)
        analysis_rows.append({
            "platform": name,
            "wall_s": round(wall, 5),
            "sites": len(report.sites),
            "graph_nodes": len(report.graph.nodes),
            "graph_edges": report.graph.edge_count,
            "surface_known": report.surface_known,
        })

    baseline, base_wall = run_campaign()
    pruner = ReachabilityPruner.for_platform(ISLANDED_KEY)
    assert pruner.dead, "bench workload must expose dead sites"
    pruned, pruned_wall = run_campaign(prune=pruner)

    base_entry = campaign_entry("unpruned", baseline, base_wall)
    pruned_entry = campaign_entry("pruned", pruned, pruned_wall)

    # Pruning must not change what was found — only what was paid.
    assert pruned_entry["hazards"] == base_entry["hazards"]
    assert pruned_entry["planned_runs"] == base_entry["planned_runs"]
    assert pruned_entry["pruned_runs"] > 0

    ratio = (
        pruned_entry["hazards_per_1k_executed"]
        / base_entry["hazards_per_1k_executed"]
    )
    payload = {
        "experiment": "reach_pruning",
        "analysis": analysis_rows,
        "pruning_workload": {
            "platform": ISLANDED_KEY,
            "spare_banks": SPARES,
            "dead_sites": sorted(pruner.dead),
            "runs": RUNS,
            "faults_per_scenario": 2,
            "seed": SEED,
        },
        "campaigns": [base_entry, pruned_entry],
        "efficiency_ratio": round(ratio, 3),
        "efficiency_floor": EFFICIENCY_FLOOR,
    }
    REACH_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert ratio >= EFFICIENCY_FLOOR, (
        f"pruned campaign found {pruned_entry['hazards_per_1k_executed']} "
        f"hazards/1k executed vs {base_entry['hazards_per_1k_executed']} "
        f"unpruned — ratio {ratio:.2f} under the {EFFICIENCY_FLOOR}x floor"
    )
