"""CI perf smoke: guard serial campaign throughput against regression.

Runs the Fig. 3 CAPS campaign serially at a reduced run count and
compares the measured runs/sec against the ``"serial"`` entry of the
*committed* ``BENCH_campaign.json``.  Exits non-zero when throughput
regressed by more than the tolerance (default 30%), so a PR that
quietly loses the warm-reuse / scheduler fast paths fails CI instead
of shipping.  Two further *ratio* guards ride along (ratios transfer
across hosts): the snapshot-fork speedup on the prefix-heavy workload
and the gate vector-engine speedup on the alu8 fault enumeration,
both against their committed JSON rows.

Environment knobs:

* ``REPRO_PERF_SMOKE_RUNS`` — campaign length (default 40; small
  enough for CI, large enough to amortize interpreter warm-up);
* ``REPRO_PERF_TOLERANCE`` — allowed fractional regression (default
  ``0.30``).  CI runners are noisy; the tolerance is a tripwire for
  real regressions (the hot path got O(n) slower), not a +-5% gate.

Usage::

    cd benchmarks && PYTHONPATH=../src python perf_smoke.py
"""

import json
import os
import subprocess
import sys

from _workloads import (
    CAMPAIGN_BENCH_PATH,
    DIST_BENCH_PATH,
    GATE_BENCH_PATH,
    POOL_OK,
    RISK_BENCH_PATH,
    timed_campaign,
    timed_distributed_campaign,
    timed_fork_campaign,
    timed_gate_campaign,
    timed_risk_campaign,
)


def committed_text(path) -> str:
    """The committed JSON, not the working-tree file.

    A bench run earlier in the same CI job may already have rewritten
    the JSON with this runner's own numbers — comparing against those
    would make the smoke test compare a measurement with itself.
    ``git show HEAD:`` pins the committed baseline; the working-tree
    file is only a fallback outside a git checkout.
    """
    try:
        return subprocess.run(
            ["git", "show", f"HEAD:benchmarks/{path.name}"],
            cwd=path.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return path.read_text()


def committed_baseline_text() -> str:
    return committed_text(CAMPAIGN_BENCH_PATH)


def committed_serial_rate() -> float:
    payload = json.loads(committed_baseline_text())
    for entry in payload["entries"]:
        if entry.get("backend") == "serial" and not entry.get("skipped"):
            rate = entry.get("runs_per_s")
            if rate:
                return float(rate)
    raise SystemExit(
        f"no measured serial entry in {CAMPAIGN_BENCH_PATH}; "
        f"regenerate it with bench_campaign.py"
    )


def committed_fork_speedup() -> float:
    """The committed ``fork`` row's speedup over its serial baseline.

    ``None``-safe by construction: a baseline without a fork row (or
    with the row skipped) fails loudly — the row is part of the bench
    contract once fork execution exists."""
    payload = json.loads(committed_baseline_text())
    for entry in payload["entries"]:
        if entry.get("backend") == "fork" and not entry.get("skipped"):
            speedup = entry.get("speedup_vs_serial")
            if speedup:
                return float(speedup)
    raise SystemExit(
        f"no measured fork entry in {CAMPAIGN_BENCH_PATH}; "
        f"regenerate it with bench_campaign.py"
    )


def committed_gate_speedup() -> float:
    """The committed worst-circuit vector-vs-scalar speedup.

    The acceptance block is part of the ``BENCH_gate.json`` contract;
    a baseline without it fails loudly rather than skipping the guard.
    """
    payload = json.loads(committed_text(GATE_BENCH_PATH))
    speedup = payload.get("acceptance", {}).get("worst_speedup")
    if speedup:
        return float(speedup)
    raise SystemExit(
        f"no acceptance speedup in {GATE_BENCH_PATH}; "
        f"regenerate it with bench_gate_vector.py"
    )


def committed_risk_speedup() -> float:
    """The committed risk-engine ``fork`` row's speedup over serial.

    Part of the ``BENCH_risk.json`` contract once the risk engine
    exists; a baseline without the row fails loudly."""
    payload = json.loads(committed_text(RISK_BENCH_PATH))
    for entry in payload["entries"]:
        if entry.get("backend") == "fork" and not entry.get("skipped"):
            speedup = entry.get("speedup_vs_serial")
            if speedup:
                return float(speedup)
    raise SystemExit(
        f"no measured fork entry in {RISK_BENCH_PATH}; "
        f"regenerate it with bench_risk_engine.py"
    )


def distributed_guard(tolerance: float, runs: int) -> int:
    """Guard the loopback-cluster speedup *ratio* over serial.

    A scheduling regression — steal quantum stuck at the full chunk,
    leases serialized behind one worker, frame churn on the hot path —
    collapses the measured ratio toward (or below) 1x and fails here.
    Explicitly skipped, not silent, when either side cannot measure:
    a single-CPU host, or a committed baseline whose distributed row
    is itself a ``skipped`` entry (the BENCH_risk convention)."""
    payload = json.loads(committed_text(DIST_BENCH_PATH))
    entry = next(
        (
            e for e in payload.get("entries", [])
            if e.get("backend") == "distributed"
        ),
        None,
    )
    if entry is None:
        raise SystemExit(
            f"no distributed entry in {DIST_BENCH_PATH}; "
            f"regenerate it with bench_distributed.py"
        )
    if entry.get("skipped"):
        print(
            f"perf-smoke: distributed speedup guard skipped "
            f"(committed baseline row skipped: {entry['skipped']})"
        )
        return 0
    if not POOL_OK:
        print(
            "perf-smoke: distributed speedup guard skipped (single-cpu "
            "host; set REPRO_FORCE_POOL=1 to force)"
        )
        return 0
    baseline = float(entry["speedup_vs_serial"])
    _, serial_wall = timed_campaign("serial", runs=runs, batch_size=runs)
    _, dist_wall = timed_distributed_campaign(runs, workers=4)
    speedup = serial_wall / dist_wall
    floor = baseline * (1.0 - tolerance)
    verdict = "ok" if speedup >= floor else "REGRESSION"
    print(
        f"perf-smoke: distributed speedup {speedup:.2f}x over {runs} "
        f"runs on a 4-worker loopback cluster (committed "
        f"{baseline:.2f}x, floor {floor:.2f}x at -{tolerance:.0%}): "
        f"{verdict}"
    )
    if speedup < floor:
        print(
            "distributed-backend speedup regressed beyond tolerance; "
            "if intentional, regenerate BENCH_distributed.json via "
            "bench_distributed.py and commit it with the change",
            file=sys.stderr,
        )
        return 1
    return 0


def risk_engine_guard(tolerance: float, runs: int) -> int:
    """Guard the sampled-campaign fork speedup *ratio*.

    The risk strategy adds per-sample environment drawing and stressor
    re-derivation to every planned run; if that planning work quietly
    became O(catalog) slower — or fork grouping stopped recognizing
    the pinned injection time — the measured ratio collapses toward
    1x and fails here, on any host."""
    baseline = committed_risk_speedup()
    _, _, serial_wall, _ = timed_risk_campaign(runs, fork=False)
    _, _, fork_wall, _ = timed_risk_campaign(runs, fork=True)
    speedup = serial_wall / fork_wall
    floor = baseline * (1.0 - tolerance)
    verdict = "ok" if speedup >= floor else "REGRESSION"
    print(
        f"perf-smoke: risk fork speedup {speedup:.2f}x over {runs} "
        f"sampled runs (committed {baseline:.2f}x, floor {floor:.2f}x "
        f"at -{tolerance:.0%}): {verdict}"
    )
    if speedup < floor:
        print(
            "risk-engine fork speedup regressed beyond tolerance; "
            "if intentional, regenerate BENCH_risk.json via "
            "bench_risk_engine.py and commit it with the change",
            file=sys.stderr,
        )
        return 1
    return 0


def gate_vector_guard(tolerance: float) -> int:
    """Guard the gate engine's speedup *ratio* — ratios transfer
    across hosts.  A vector path that quietly degenerated to per-site
    scalar execution measures ~1x and fails here."""
    baseline = committed_gate_speedup()
    # Warm-up absorbs numpy import and program-compile costs.
    timed_gate_campaign("vector", "alu8", runs_per_site=1)
    _, _, _, scalar_wall = timed_gate_campaign(
        "scalar", "alu8", runs_per_site=2
    )
    _, _, _, vector_wall = timed_gate_campaign(
        "vector", "alu8", runs_per_site=2
    )
    speedup = scalar_wall / vector_wall
    floor = baseline * (1.0 - tolerance)
    verdict = "ok" if speedup >= floor else "REGRESSION"
    print(
        f"perf-smoke: gate vector speedup {speedup:.1f}x on the alu8 "
        f"enumeration (committed {baseline:.1f}x, floor {floor:.1f}x "
        f"at -{tolerance:.0%}): {verdict}"
    )
    if speedup < floor:
        print(
            "gate vector-engine speedup regressed beyond tolerance; "
            "if intentional, regenerate BENCH_gate.json via "
            "bench_gate_vector.py and commit it with the change",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    runs = int(os.environ.get("REPRO_PERF_SMOKE_RUNS", "40"))
    tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))
    baseline = committed_serial_rate()

    # One untimed warm-up campaign absorbs import costs, ECC table
    # construction, and platform elaboration, then the measured
    # campaign sees the same steady state the committed number did.
    timed_campaign("serial", runs=min(runs, 10))
    result, wall = timed_campaign("serial", runs=runs)
    measured = result.runs / wall

    floor = baseline * (1.0 - tolerance)
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"perf-smoke: serial {measured:.1f} runs/s over {result.runs} runs "
        f"(committed baseline {baseline:.1f}, floor {floor:.1f} at "
        f"-{tolerance:.0%}): {verdict}"
    )
    if measured < floor:
        print(
            "serial campaign throughput regressed beyond tolerance; "
            "if intentional, regenerate BENCH_campaign.json via "
            "bench_campaign.py and commit it with the change",
            file=sys.stderr,
        )
        return 1

    # Snapshot-fork guard: the *speedup ratio* of the prefix-heavy
    # workload, not an absolute rate — ratios transfer across hosts,
    # so the same tolerance applies.  A fork path that silently fell
    # back to per-run execution measures ~1.0 and fails here.
    fork_baseline = committed_fork_speedup()
    prefix, prefix_wall = timed_fork_campaign(
        runs, fork=False, batch_size=runs
    )
    forked, forked_wall = timed_fork_campaign(
        runs, fork=True, batch_size=runs
    )
    fork_speedup = prefix_wall / forked_wall
    fork_floor = fork_baseline * (1.0 - tolerance)
    fork_verdict = "ok" if fork_speedup >= fork_floor else "REGRESSION"
    print(
        f"perf-smoke: fork speedup {fork_speedup:.2f}x over "
        f"{forked.runs} runs (committed {fork_baseline:.2f}x, floor "
        f"{fork_floor:.2f}x at -{tolerance:.0%}): {fork_verdict}"
    )
    if fork_speedup < fork_floor:
        print(
            "snapshot-fork speedup regressed beyond tolerance; "
            "if intentional, regenerate BENCH_campaign.json via "
            "bench_campaign.py and commit it with the change",
            file=sys.stderr,
        )
        return 1

    # Risk-engine guard: the sampled campaign's fork ratio — catches
    # per-sample planning work swamping execution.
    if risk_engine_guard(tolerance, runs=max(runs, 64)):
        return 1

    # Distributed-backend guard: the loopback-cluster speedup ratio.
    if distributed_guard(tolerance, runs=max(runs, 160)):
        return 1

    # Gate vector-engine guard: same ratio logic as fork.
    return gate_vector_guard(tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
