"""E17 — bit-parallel gate-level fault simulation: the
``BENCH_gate.json`` emitter.

ROADMAP item 2a: compile ``repro.gate`` netlists to vectorized numpy
bitwise ops so one sweep evaluates 64+ fault scenarios per machine
word.  This suite measures the classic parallel-pattern payoff on the
acceptance workload — full (net x kind) fault enumeration of the
8-bit ALU and the registered adder, all three fault kinds, shared
stimulus vectors — and re-checks the soundness side in the same
breath: the vector profile must be *byte-identical* to the scalar
ground truth before its throughput means anything.

Acceptance: vector >= 20x scalar on both circuits.  ``perf_smoke.py``
re-measures the ratio per push against the committed JSON.
"""

import pytest

from _workloads import (
    emit_gate_bench,
    gate_bench_entry,
    timed_gate_campaign,
)

RUNS_PER_SITE = 4
MIN_SPEEDUP = 20.0
CIRCUITS = ("alu8", "registered_adder8")


def measure(circuit_name, runs_per_site=RUNS_PER_SITE):
    scalar_profile, scalar_outcomes, sites, scalar_wall = (
        timed_gate_campaign("scalar", circuit_name, runs_per_site)
    )
    vector_profile, vector_outcomes, _, vector_wall = (
        timed_gate_campaign("vector", circuit_name, runs_per_site)
    )
    # Soundness before speed: a fast wrong engine must never emit a row.
    assert scalar_profile.canonical() == vector_profile.canonical()
    assert scalar_outcomes == vector_outcomes
    return (
        gate_bench_entry(
            circuit_name, "scalar", scalar_profile, sites,
            runs_per_site, scalar_wall,
        ),
        gate_bench_entry(
            circuit_name, "vector", vector_profile, sites,
            runs_per_site, vector_wall,
        ),
    )


def test_gate_vector_bench_json():
    """Emit BENCH_gate.json: scalar/vector rows for both circuits."""
    entries = []
    for circuit_name in CIRCUITS:
        entries.extend(measure(circuit_name))
    path = emit_gate_bench(entries, min_speedup=MIN_SPEEDUP)
    assert path.exists()


def test_gate_vector_speedup_acceptance():
    """The ISSUE 7 acceptance row: >= 20x fault-campaign throughput on
    the alu/registered_adder enumeration workload (best of 2 to shave
    interpreter warm-up noise; the committed JSON carries the same
    measurement)."""
    for circuit_name in CIRCUITS:
        best = 0.0
        for _ in range(2):
            scalar_entry, vector_entry = measure(circuit_name)
            best = max(
                best, scalar_entry["wall_s"] / vector_entry["wall_s"]
            )
        assert best >= MIN_SPEEDUP, (
            f"{circuit_name}: vector engine only {best:.1f}x over scalar "
            f"(acceptance {MIN_SPEEDUP}x)"
        )


@pytest.mark.parametrize("circuit_name", CIRCUITS)
def test_gate_campaign_throughput(benchmark, circuit_name):
    """Headline series: vector-engine comparisons per second."""
    def run():
        profile, _, _, _ = timed_gate_campaign("vector", circuit_name)
        return profile

    profile = benchmark(run)
    benchmark.extra_info["comparisons"] = profile.total
    assert profile.total > 0
