"""E10 — symbolic execution vs random search for protection bypass.

Regenerates the Sec. 3.4 claim: "For errors that are hard to
propagate, formal approaches such as symbolic execution might be
necessary to generate stimuli to bypass the protection mechanisms."

The guard program models the airbag firing path behind three stacked
plausibility checks (cross-channel band, rate limit, dual threshold)
on 12-bit ADC inputs.  Reaching the ``fire`` outcome requires a
~0.05%-probability coincidence under uniform random inputs:

* the symbolic engine enumerates the handful of feasible paths and
  solves for a witness directly;
* random search burns thousands of attempts, usually all of them.
"""

import random

import pytest

from repro.symbolic import SymbolicEngine, random_search


def guarded_firing_path(ctx):
    a = ctx.var("sensor_a")
    b = ctx.var("sensor_b")
    rate = ctx.var("rate")
    arm_code = ctx.var("arm_code")
    # Plausibility: channels agree within a band.
    if not ctx.branch((a - b) <= 40):
        return "reject_band"
    if not ctx.branch((b - a) <= 40):
        return "reject_band"
    # Rate limiter: jump since the last sample bounded.
    if not ctx.branch(rate <= 120):
        return "reject_rate"
    # Dual threshold.
    if not ctx.branch(a >= 3800):
        return "idle"
    if not ctx.branch(b >= 3800):
        return "idle"
    # Arming interlock: a 6-bit key.
    if not ctx.branch(arm_code.eq(0x2A)):
        return "reject_interlock"
    return "fire"


DOMAINS = {
    "sensor_a": (0, 4095),
    "sensor_b": (0, 4095),
    "rate": (0, 4095),
    "arm_code": (0, 63),
}


def test_symbolic_finds_bypass(benchmark):
    def solve():
        engine = SymbolicEngine(DOMAINS)
        witness = engine.find_input(guarded_firing_path, "fire")
        return engine, witness

    engine, witness = benchmark(solve)
    assert witness is not None
    assert witness["sensor_a"] >= 3800 and witness["sensor_b"] >= 3800
    assert abs(witness["sensor_a"] - witness["sensor_b"]) <= 40
    assert witness["arm_code"] == 0x2A
    benchmark.extra_info["paths_explored"] = engine.paths_explored
    benchmark.extra_info["witness"] = witness


def test_symbolic_enumerates_all_outcomes(benchmark):
    def explore():
        engine = SymbolicEngine(DOMAINS)
        return {p.outcome for p in engine.explore(guarded_firing_path)}

    outcomes = benchmark(explore)
    assert outcomes == {
        "reject_band", "reject_rate", "idle", "reject_interlock", "fire",
    }


def test_random_baseline(benchmark):
    def search():
        rng = random.Random(123)
        return random_search(
            guarded_firing_path, DOMAINS, "fire", rng, attempts=5000
        )

    witness, attempts = benchmark(search)
    benchmark.extra_info["attempts_used"] = attempts
    benchmark.extra_info["found"] = witness is not None
    # P(fire) under uniform inputs ~ (296/4096)^2-ish * band * key/64
    # ~= 5e-6: 5000 attempts almost never succeed.
    assert witness is None or attempts > 100


def test_bypass_cost_shape(benchmark):
    """Headline: symbolic path count vs random attempt count."""
    engine = SymbolicEngine(DOMAINS)
    witness = engine.find_input(guarded_firing_path, "fire")
    assert witness is not None
    symbolic_cost = engine.paths_explored

    found = 0
    attempts_total = 0
    for seed in range(5):
        rng = random.Random(seed)
        result, attempts = random_search(
            guarded_firing_path, DOMAINS, "fire", rng, attempts=5000
        )
        attempts_total += attempts
        if result is not None:
            found += 1
    benchmark(lambda: SymbolicEngine(DOMAINS).find_input(
        guarded_firing_path, "fire"
    ))
    benchmark.extra_info["symbolic_paths"] = symbolic_cost
    benchmark.extra_info["random_found"] = f"{found}/5 seeds"
    benchmark.extra_info["random_attempts_per_seed"] = attempts_total // 5
    # Shape: the symbolic cost (a handful of paths) is orders of
    # magnitude below the random budget, which mostly fails anyway.
    assert symbolic_cost * 100 < attempts_total
    assert found <= 2
