"""E3 — simulation speed across abstraction levels.

Regenerates the claim behind Sec. 2.3/3.4: raising the abstraction
level buys orders of magnitude of simulation speed, which is what
makes VP-scale stress testing feasible at all.  One fixed workload —
summing 256 bytes out of a memory — is executed at four levels:

1. **gate level** — a registered 8-bit adder netlist, clocked per add;
2. **ISS** — the vp16 core running the summation loop from memory;
3. **TLM-LT** — loosely-timed transactions against the memory model;
4. **TLM-LT + DMI** — direct memory interface, the fastest legal path.

A ``gate_vector`` row runs the same netlist on the bit-parallel
vector engine (E17) at one lane, pricing the engine swap alone; the
shape assertions compare only the four abstraction levels.

The benchmark table is the result: the same computation, descending
orders of magnitude of cost as abstraction rises.
"""
# vp-lint: disable-file=VP005 - benchmark: wall-clock timing is the measurement, not model behavior

import pytest

from repro.gate import GateSimulator, VectorGateSimulator, registered_adder
from repro.hw import Memory, Vp16Cpu, assemble
from repro.kernel import Module, Simulator
from repro.tlm import GenericPayload, InitiatorSocket, Router

DATA = bytes((7 * i + 3) & 0xFF for i in range(256))
EXPECTED = sum(DATA) & 0xFF


# -- level 1: gate ----------------------------------------------------------

def gate_level_sum() -> int:
    circuit = registered_adder(8)
    sim = GateSimulator(circuit.netlist)
    accumulator = 0
    for byte in DATA:
        inputs = {}
        inputs.update(GateSimulator.pack(circuit.buses["a"], accumulator))
        inputs.update(GateSimulator.pack(circuit.buses["b"], byte))
        sim.step(inputs)   # latch inputs
        sim.step(inputs)   # latch sum
        outputs = sim.evaluate(inputs)
        accumulator = GateSimulator.unpack(circuit.buses["out"], outputs)
    return accumulator


# -- level 1b: gate, bit-parallel vector engine -----------------------------

def gate_vector_sum() -> int:
    """The same serial summation on the vector engine, one lane.

    The sum is a dependent chain, so lanes cannot parallelize it —
    this row prices the *engine swap alone* at the same abstraction
    level (numpy sweeps vs per-gate Python dispatch).  The engine's
    real payoff, 64+ fault scenarios per sweep, is measured by
    ``bench_gate_vector.py`` / E17.
    """
    circuit = registered_adder(8)
    sim = VectorGateSimulator(circuit.netlist, lanes=1)
    accumulator = 0
    for byte in DATA:
        inputs = {}
        inputs.update(sim.pack(circuit.buses["a"], accumulator))
        inputs.update(sim.pack(circuit.buses["b"], byte))
        sim.step(inputs)   # latch inputs
        sim.step(inputs)   # latch sum
        outputs = sim.evaluate(inputs)
        accumulator = sim.unpack_lane(circuit.buses["out"], outputs)
    return accumulator


# -- level 2: ISS -----------------------------------------------------------

SUM_PROGRAM = """
        ldi  r1, 0x100     ; data base
        ldi  r2, 0         ; index
        ldi  r3, 256       ; count
        ldi  r4, 0         ; accumulator
    loop:
        add  r5, r1, r2
        ldb  r6, r5, 0
        add  r4, r4, r6
        addi r2, r2, 1
        bne  r2, r3, loop
        andi r4, r4, 0xff
        halt
"""


def iss_sum() -> int:
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096, read_latency=4, write_latency=4)
    router.map_target(0x0, 4096, mem.tsock)
    cpu = Vp16Cpu("cpu", parent=top, clock_period=10, quantum=100_000)
    cpu.isock.bind(router.tsock)
    program = assemble(SUM_PROGRAM)
    mem.load(0, program.image)
    mem.load(0x100, DATA)
    cpu.start(pc=0)
    sim.run()
    return cpu.regs[4]


# -- level 3: TLM loosely timed -----------------------------------------------

def tlm_lt_sum() -> int:
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096)
    router.map_target(0x0, 4096, mem.tsock)
    isock = InitiatorSocket(top, "isock")
    isock.bind(router.tsock)
    mem.load(0x100, DATA)
    accumulator = 0
    for i in range(256):
        payload = GenericPayload.read(0x100 + i, 1)
        isock.b_transport(payload, 0)
        accumulator = (accumulator + payload.data[0]) & 0xFF
    return accumulator


# -- level 4: TLM + DMI ----------------------------------------------------------

def tlm_dmi_sum() -> int:
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096)
    router.map_target(0x0, 4096, mem.tsock)
    isock = InitiatorSocket(top, "isock")
    isock.bind(router.tsock)
    mem.load(0x100, DATA)
    region = isock.get_dmi(GenericPayload.read(0x100, 1))
    accumulator = 0
    for i in range(256):
        accumulator = (
            accumulator + region.store[0x100 - region.start + i]
        ) & 0xFF
    return accumulator


LEVELS = {
    "gate": gate_level_sum,
    "gate_vector": gate_vector_sum,
    "iss": iss_sum,
    "tlm_lt": tlm_lt_sum,
    "tlm_dmi": tlm_dmi_sum,
}


@pytest.mark.parametrize("level", list(LEVELS))
def test_abstraction_level(benchmark, level):
    result = benchmark(LEVELS[level])
    assert result == EXPECTED


def test_speedup_shape(benchmark):
    """The headline comparison: measured in-process, asserted as shape."""
    import time

    def measure(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            assert fn() == EXPECTED
            best = min(best, time.perf_counter() - start)
        return best

    timings = {name: measure(fn) for name, fn in LEVELS.items()}
    benchmark(tlm_dmi_sum)  # headline series for the table
    speedups = {
        name: round(timings["gate"] / elapsed, 1)
        for name, elapsed in timings.items()
    }
    benchmark.extra_info["speedup_vs_gate"] = speedups
    # Paper shape: each abstraction step buys significant speed; TLM is
    # orders of magnitude above gate level.
    assert timings["gate"] > timings["iss"] > timings["tlm_lt"]
    assert timings["tlm_lt"] >= timings["tlm_dmi"]
    assert timings["gate"] / timings["tlm_lt"] > 10
