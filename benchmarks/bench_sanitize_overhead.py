"""E15 — pricing the delta-race sanitizer and order-seed probing.

The sanitizer contract (DESIGN.md, "Static analysis & sanitizers")
has two prices to keep honest:

* **disabled** — the default ``Simulator()`` carries only one
  ``is not None`` branch per staged write and per process step; the
  campaign perf smoke (``perf_smoke.py``) already trips if that ever
  becomes measurable.  This bench prices it directly anyway
  (``off`` vs a kernel built before arming anything is the same code
  path, so the entry is the baseline itself).
* **enabled** — instrumentation cost on a write-heavy kernel.  Opt-in
  diagnostics may cost real throughput, but the bench pins the factor
  so a refactor that makes it pathological (per-write allocation,
  quadratic window) fails loudly.

Also asserted: the sanitizer is *observational* — enabling it must
not change simulation content (same final signal values, same event
counts); order-seed shuffling is the one mode allowed to change
behavior, on racy platforms only.
"""
# vp-lint: disable-file=VP005 - benchmark: wall-clock timing is the measurement, not model behavior

import json
import pathlib
import time

from repro.analyze import SanitizeConfig
from repro.kernel import Module, Simulator

SANITIZE_BENCH_PATH = pathlib.Path(__file__).parent / "BENCH_sanitize.json"

WRITERS = 8
DURATION = 8_000
REPEATS = 3
#: Tripwire, not a target: the recorder touches one dict per write, so
#: anything beyond ~2.5x means the hot path grew something structural.
ENABLED_OVERHEAD_BUDGET = 1.5


class WriteStorm(Module):
    """Race-free write-heavy workload: one signal per writer, one
    write per writer per time unit."""

    def __init__(self, sim, writers=WRITERS):
        super().__init__("storm", sim=sim)
        self.lanes = [
            self.signal(f"lane{i}", 0) for i in range(writers)
        ]
        for i, lane in enumerate(self.lanes):
            self.process(self._drive(lane, i + 1), name=f"drive{i}")

    def _drive(self, lane, step):
        while True:
            lane.write(lane.read() + step)
            yield 1


def timed_run(**kernel_kwargs):
    sim = Simulator(**kernel_kwargs)
    storm = WriteStorm(sim)
    start = time.perf_counter()
    sim.run(until=DURATION)
    wall = time.perf_counter() - start
    finals = tuple(lane.read() for lane in storm.lanes)
    return sim, finals, wall


def best_of(**kernel_kwargs):
    best_wall = None
    sim = finals = None
    for _ in range(REPEATS):
        sim, finals, wall = timed_run(**kernel_kwargs)
        if best_wall is None or wall < best_wall:
            best_wall = wall
    writes = WRITERS * DURATION
    return sim, finals, writes / best_wall


def test_sanitize_overhead_json():
    _, base_finals, base_rate = best_of()
    sim_on, on_finals, on_rate = best_of(sanitize=True)
    _, order_finals, order_rate = best_of(order_seed=1)
    _, both_finals, both_rate = best_of(
        sanitize=SanitizeConfig(), order_seed=1
    )

    # Observational: the sanitizer changes nothing about the run.
    assert on_finals == base_finals
    assert sim_on.sanitizer.clean  # race-free workload stays clean
    # A race-free platform is order-insensitive by construction, so
    # even the shuffled queue converges to the same values.
    assert order_finals == base_finals
    assert both_finals == base_finals

    def entry(mode, rate):
        return {
            "mode": mode,
            "writes_per_s": round(rate, 1),
            "overhead_vs_off": round(base_rate / rate - 1.0, 4),
        }

    payload = {
        "experiment": "sanitize_overhead",
        "workload": {
            "platform": "write-storm",
            "writers": WRITERS,
            "duration": DURATION,
            "writes": WRITERS * DURATION,
        },
        "budget_enabled_overhead": ENABLED_OVERHEAD_BUDGET,
        "modes": [
            entry("off", base_rate),
            entry("sanitize", on_rate),
            entry("order_seed", order_rate),
            entry("sanitize+order_seed", both_rate),
        ],
    }
    SANITIZE_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    enabled_overhead = base_rate / on_rate - 1.0
    assert enabled_overhead <= ENABLED_OVERHEAD_BUDGET, (
        f"sanitizer costs {enabled_overhead:.1%} write throughput "
        f"(budget {ENABLED_OVERHEAD_BUDGET:.0%}): off {base_rate:.0f}/s "
        f"vs on {on_rate:.0f}/s"
    )
