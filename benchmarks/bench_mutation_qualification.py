"""E7 — mutation analysis: cost, score, and the schema optimisation.

Regenerates the Sec. 2.4 claims:

* the **mutation score separates testbenches that coverage cannot** —
  a coverage-chasing testbench and a checking testbench drive the same
  statements, yet their scores differ widely;
* mutant **schemata** amortise compilation: qualifying through one
  switchable schema beats regenerating/compiling mutants per run ([21]).

The DUT is the CAN receive-path validation model also used by the
``testbench_qualification`` example.
"""
# vp-lint: disable-file=VP005 - benchmark: wall-clock timing is the measurement, not model behavior

from repro.hw import ecc
from repro.mutation import (
    MutantSchema,
    generate_mutants,
    run_mutation_analysis,
)


def validate_frame(data, expected_counter):
    if len(data) != 4:
        return None, expected_counter
    body = data[:3]
    crc = data[3]
    if ecc.crc8(body) != crc:
        return None, expected_counter
    counter = body[0] & 15
    if counter != expected_counter:
        return None, (counter + 1) & 15
    speed = body[1] + body[2] * 256
    if speed > 10000:
        return None, (counter + 1) & 15
    return speed, (counter + 1) & 15


def make_frame(speed, counter):
    body = bytes([counter & 15, speed & 0xFF, (speed >> 8) & 0xFF])
    return body + bytes([ecc.crc8(body)])


def weak_testbench(dut) -> bool:
    dut(b"\x00\x01", 0)
    corrupted = bytearray(make_frame(1234, 0))
    corrupted[1] ^= 0x40
    dut(bytes(corrupted), 0)
    dut(make_frame(1234, 3), 0)
    dut(make_frame(10001, 0), 0)
    speed, _ = dut(make_frame(1234, 0), 0)
    return speed != 1234


def strong_testbench(dut) -> bool:
    for frame, counter, expected, expected_next in (
        (make_frame(1234, 0), 0, 1234, 1),
        (make_frame(0, 5), 5, 0, 6),
        (make_frame(10000, 15), 15, 10000, 0),
    ):
        speed, next_counter = dut(frame, counter)
        if speed != expected or next_counter != expected_next:
            return True
    corrupted = bytearray(make_frame(1234, 0))
    corrupted[1] ^= 0x40
    if dut(bytes(corrupted), 0)[0] is not None:
        return True
    if dut(make_frame(1234, 3), 0)[0] is not None:
        return True
    if dut(make_frame(10001, 0), 0)[0] is not None:
        return True
    if dut(b"\x00\x01", 0)[0] is not None:
        return True
    return False


def test_mutant_generation_cost(benchmark):
    mutants = benchmark(generate_mutants, validate_frame)
    assert len(mutants) > 40
    benchmark.extra_info["mutants"] = len(mutants)


def test_qualification_separates_testbenches(benchmark):
    weak = run_mutation_analysis(validate_frame, weak_testbench)
    strong = benchmark(
        run_mutation_analysis, validate_frame, strong_testbench
    )
    benchmark.extra_info["weak_score"] = round(weak.score, 3)
    benchmark.extra_info["strong_score"] = round(strong.score, 3)
    benchmark.extra_info["weak_survivors"] = len(weak.survivors)
    # Paper shape: the strong testbench's mutation score is clearly
    # higher even though both drive every statement of the DUT.
    assert strong.score > weak.score + 0.1
    assert weak.survivors


def test_schema_amortises_compilation(benchmark):
    schema = MutantSchema(validate_frame)  # one-time build

    def qualify_through_schema():
        return schema.qualify(strong_testbench)

    result = benchmark(qualify_through_schema)
    # Same verdicts, compilation paid once.
    direct = run_mutation_analysis(validate_frame, strong_testbench)
    assert result.score == direct.score
    benchmark.extra_info["score"] = round(result.score, 3)


def test_schema_speedup_shape(benchmark):
    import time

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    schema = MutantSchema(validate_frame)
    per_run_regeneration = timed(
        lambda: run_mutation_analysis(validate_frame, strong_testbench)
    )
    through_schema = timed(lambda: schema.qualify(strong_testbench))
    benchmark(lambda: schema.qualify(strong_testbench))
    speedup = per_run_regeneration / through_schema
    benchmark.extra_info["schema_speedup"] = round(speedup, 1)
    # Shape ([21]): schema execution beats regeneration-per-campaign.
    assert speedup > 1.5


# ---------------------------------------------------------------------------
# Binary mutation on the ISS (refs [22], [30]) — the XEMU-style flow
# ---------------------------------------------------------------------------

from repro.hw import Memory, Vp16Cpu, assemble  # noqa: E402
from repro.kernel import Module, Simulator  # noqa: E402
from repro.mutation import BinaryMutationEngine  # noqa: E402
from repro.tlm import Router  # noqa: E402

_SUM_PROGRAM = assemble(
    """
        ldi  r1, 0
        ldi  r2, 10
    loop:
        add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """
)
_SUM_EXPECTED = sum(range(1, 11))


def _run_binary(image):
    sim = Simulator()
    top = Module("top", sim=sim)
    router = Router("bus", parent=top, hop_latency=2)
    mem = Memory("mem", parent=top, size=4096, read_latency=2, write_latency=2)
    router.map_target(0x0, 4096, mem.tsock)
    cpu = Vp16Cpu("cpu", parent=top, clock_period=10, max_instructions=5_000)
    cpu.isock.bind(router.tsock)
    mem.load(0, image)
    cpu.start(pc=0)
    sim.run(until=10_000_000)
    return cpu


def _binary_testbench(image) -> bool:
    cpu = _run_binary(image)
    return (
        not cpu.halted
        or cpu.trap_cause is not None
        or cpu.regs[1] != _SUM_EXPECTED
    )


def test_binary_mutation_qualification(benchmark):
    """Whole-binary qualification on the ISS: each mutant boots a fresh
    platform — the cost profile of emulator-based mutation testing."""
    engine = BinaryMutationEngine(_SUM_PROGRAM.image, _binary_testbench)

    result = benchmark.pedantic(engine.qualify, rounds=1, iterations=1)
    benchmark.extra_info["mutants"] = result.total
    benchmark.extra_info["score"] = round(result.score, 3)
    # A result-checking testbench with an instruction budget kills
    # essentially everything (runaway mutants hit the budget trap).
    assert result.score > 0.9
